//! A counting [`GlobalAlloc`] wrapper over the system allocator.
//!
//! Two consumers install this as their `#[global_allocator]`:
//!
//! * the `bench` binary, so `bench perf` can report how many heap
//!   allocations each workload profile performs (a machine-independent
//!   companion to its wall-clock numbers);
//! * `crates/sim/tests/zero_alloc.rs`, which pins down that the
//!   disabled-recorder trace emit path performs **zero** allocations.
//!
//! The counters are process-global relaxed atomics: cheap enough to
//! leave on for every bench run, precise as long as readers bracket a
//! single-threaded region (which both consumers do). When the allocator
//! is *not* installed the counters simply stay at zero.
//!
//! This crate is the one deliberate exception to the workspace-wide
//! `#![forbid(unsafe_code)]`: implementing [`GlobalAlloc`] requires an
//! `unsafe impl`, so the unsafety is quarantined here behind a safe
//! counting API.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] while counting every
/// allocation. Install with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: triplea_alloc_counter::CountingAllocator =
///     triplea_alloc_counter::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: all methods delegate directly to `System`; the only extra
// work is relaxed counter increments, which allocate nothing and cannot
// violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is one allocator round-trip; count the newly
        // requested size so byte totals track traffic, not live bytes.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of the process-wide allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocator calls (`alloc` + `alloc_zeroed` + `realloc`) so far.
    pub allocations: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas since `earlier` (saturating, in case `earlier`
    /// was taken on a different counter epoch).
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Reads the current counters. Zero forever unless a
/// [`CountingAllocator`] is installed as the global allocator.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Runs `f` and returns its result plus the allocation delta it caused.
///
/// Only meaningful when the caller is the sole thread allocating and the
/// counting allocator is installed.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocSnapshot) {
    let before = snapshot();
    let out = f();
    (out, snapshot().since(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so counters stay
    // flat; the arithmetic is still checkable.
    #[test]
    fn since_subtracts_saturating() {
        let a = AllocSnapshot {
            allocations: 10,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocations: 4,
            bytes: 60,
        };
        assert_eq!(
            b.since(a),
            AllocSnapshot {
                allocations: 0,
                bytes: 0
            }
        );
        assert_eq!(
            a.since(b),
            AllocSnapshot {
                allocations: 6,
                bytes: 40
            }
        );
    }

    #[test]
    fn measure_returns_value() {
        let (v, delta) = measure(|| 41 + 1);
        assert_eq!(v, 42);
        let _ = delta;
    }
}
