//! Property tests: the synthetic generators' *marginals* converge to
//! the configured Table-1 parameters under arbitrary seeds — the
//! statistical contract the whole reproduction rests on (the paper's
//! mechanisms react to mix, skew, and arrival rate, so the generators
//! must actually deliver the mix, skew, and arrival rate they claim).
//!
//! Each property samples seeds from the whole u64 space; the vendored
//! proptest subset runs a deterministic case sweep, so failures
//! reproduce without a stored regression file.

use proptest::prelude::*;
use triplea_core::{ArrayConfig, IoOp};
use triplea_workloads::msr::{parse_msr, to_msr_csv, write_msr, TraceMapper};
use triplea_workloads::{analyze, Microbench, ProfileTrace, ScenarioTrace, WorkloadProfile};

/// The paper's 4×16 baseline — Table 1's hot-cluster counts are defined
/// against this shape, so convergence must be measured on it.
fn baseline() -> ArrayConfig {
    ArrayConfig::paper_baseline()
}

/// Profiles whose per-hot-cluster share clears the hot-cluster census
/// threshold (5 % on the 4×16 array) with margin; l-eigen's 11 hot
/// clusters sit *below* the census line by design (see `analysis.rs`),
/// so it cannot be used to test census convergence.
fn census_visible() -> Vec<WorkloadProfile> {
    WorkloadProfile::table1()
        .iter()
        .filter(|p| p.hot_clusters > 0 && p.hot_io_ratio / p.hot_clusters as f64 >= 0.065)
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Read/write mix: the measured read ratio of a synthesized trace
    /// tracks the profile's configured ratio for every profile and any
    /// seed (5σ band for n = 6000 Bernoulli draws).
    #[test]
    fn read_ratio_converges_to_table1(seed in 0u64..u64::MAX, pick in 0usize..13) {
        let cfg = baseline();
        let p = WorkloadProfile::table1()[pick];
        let trace = ProfileTrace::new(p).requests(6_000).build(&cfg, seed);
        let stats = analyze(&trace, &cfg.shape);
        prop_assert!(
            (stats.read_ratio - p.read_ratio).abs() < 0.033,
            "{}: measured {} vs configured {} (seed {seed})",
            p.name, stats.read_ratio, p.read_ratio
        );
    }

    /// Address skew: the hot-cluster census recovers both the number of
    /// hot clusters and the fraction of I/O they carry, for every
    /// census-visible profile and any seed.
    #[test]
    fn hot_skew_converges_to_table1(seed in 0u64..u64::MAX, pick in 0usize..10) {
        let profiles = census_visible();
        let p = profiles[pick % profiles.len()];
        let cfg = baseline();
        let trace = ProfileTrace::new(p).requests(6_000).build(&cfg, seed);
        let stats = analyze(&trace, &cfg.shape);
        prop_assert_eq!(
            stats.hot_clusters, p.hot_clusters as usize,
            "{}: census found {} hot clusters, Table 1 says {} (seed {})",
            p.name, stats.hot_clusters, p.hot_clusters, seed
        );
        prop_assert!(
            (stats.hot_io_ratio - p.hot_io_ratio).abs() < 0.04,
            "{}: measured hot share {} vs configured {} (seed {seed})",
            p.name, stats.hot_io_ratio, p.hot_io_ratio
        );
    }

    /// Arrival rate: with a configured inter-arrival gap the offered
    /// rate is exact — the last arrival of an n-request trace lands at
    /// (n-1)·gap for any seed and gap.
    #[test]
    fn arrival_rate_is_exactly_the_configured_gap(
        seed in 0u64..u64::MAX,
        gap_ns in 100u64..5_000,
        requests in 500usize..3_000,
    ) {
        let cfg = baseline();
        let trace = ProfileTrace::new(WorkloadProfile::table1()[0])
            .requests(requests)
            .gap_ns(gap_ns)
            .build(&cfg, seed);
        prop_assert_eq!(trace.len(), requests);
        let last = trace.requests().last().unwrap().at.as_nanos();
        prop_assert_eq!(last, (requests as u64 - 1) * gap_ns);
    }

    /// Randomness marginal at the boundary: a fully random read
    /// micro-benchmark measures as (almost) fully random, and its mix
    /// is pure reads — for any seed.
    #[test]
    fn random_read_microbench_is_random_reads(seed in 0u64..u64::MAX) {
        let cfg = baseline();
        let trace = Microbench::read().hot_clusters(4).requests(4_000).build(&cfg, seed);
        let stats = analyze(&trace, &cfg.shape);
        prop_assert_eq!(stats.read_ratio, 1.0);
        prop_assert!(stats.read_randomness > 0.9, "measured {}", stats.read_randomness);
        prop_assert!(trace.requests().iter().all(|r| r.op == IoOp::Read));
    }

    /// Scenario shapes keep the budget and the clock: any scenario
    /// emits exactly the requested number of requests, all arrivals in
    /// non-decreasing order inside the declared span — for arbitrary
    /// seeds and shape parameters.
    #[test]
    fn scenarios_hold_budget_and_span(
        seed in 0u64..u64::MAX,
        requests in 800usize..4_000,
        knob in 1u32..5,
    ) {
        let cfg = baseline();
        let p = WorkloadProfile::by_name("fin").unwrap();
        for s in [
            ScenarioTrace::diurnal(p, requests, 4_000, 500, knob),
            ScenarioTrace::flash_crowd(p, requests, 2_000, 250, knob),
            ScenarioTrace::hotspot_drift(p, requests, 1_500, knob),
        ] {
            let t = s.build(&cfg, seed);
            prop_assert_eq!(t.len(), requests, "{} budget (seed {})", s.name(), seed);
            let span = s.span_ns();
            let mut prev = 0u64;
            for r in t.requests() {
                let at = r.at.as_nanos();
                prop_assert!(at >= prev, "{}: arrivals must not regress", s.name());
                prop_assert!(at < span, "{}: arrival {at} outside span {span}", s.name());
                prev = at;
            }
        }
    }

    /// Diurnal rate contract: the peak phase's measured arrival rate
    /// exceeds the trough's by (close to) the configured gap ratio.
    #[test]
    fn diurnal_rate_follows_the_day_curve(seed in 0u64..u64::MAX) {
        let cfg = baseline();
        let p = WorkloadProfile::by_name("fin").unwrap();
        let s = ScenarioTrace::diurnal(p, 8_000, 6_000, 1_000, 1);
        let t = s.build(&cfg, seed);
        let starts = s.phase_starts_ns();
        let rate = |from: u64, to: u64| {
            t.requests()
                .iter()
                .filter(|r| r.at.as_nanos() >= from && r.at.as_nanos() < to)
                .count() as f64
                / (to - from) as f64
        };
        let trough = rate(starts[0], starts[1]);
        let peak = rate(starts[3], starts[4]);
        prop_assert!(peak > 4.0 * trough, "peak {peak} vs trough {trough} (seed {seed})");
    }

    /// MSR wire-format round trip is lossless for arbitrary synthetic
    /// traces, and re-mapping the parsed records keeps every address
    /// inside the LPN space for any stride.
    #[test]
    fn msr_roundtrip_and_mapping_stay_sound(
        seed in 0u64..u64::MAX,
        pick in 0usize..13,
        stride in 1u64..100_000,
    ) {
        let cfg = baseline();
        let p = WorkloadProfile::table1()[pick];
        let trace = ProfileTrace::new(p).requests(1_500).build(&cfg, seed);
        let page = cfg.shape.flash.page_size as u64;

        let csv = to_msr_csv(&trace, "host", page);
        let records = parse_msr(csv.as_bytes()).expect("serialized trace parses");
        prop_assert_eq!(records.len(), trace.len());

        let mut buf = Vec::new();
        write_msr(&mut buf, &records).expect("in-memory write");
        let reparsed = parse_msr(buf.as_slice()).expect("rewritten trace parses");
        prop_assert_eq!(&records, &reparsed, "round trip must be lossless");

        let mapped = TraceMapper::new(&cfg)
            .disk_stride_pages(stride)
            .map(&records);
        let total = cfg.shape.total_pages();
        prop_assert_eq!(mapped.len(), records.len());
        for r in mapped.requests() {
            prop_assert!(
                r.lpn.0 + r.pages as u64 <= total,
                "mapped request escapes the LPN space: lpn {} + {} pages > {total}",
                r.lpn.0, r.pages
            );
        }
    }
}
