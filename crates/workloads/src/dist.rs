//! Sampling distributions for workload synthesis: Zipfian slot
//! popularity and ON/OFF bursty arrivals.

use triplea_sim::SplitMix64;

/// A Zipf(θ) sampler over `{0, …, n−1}` using Gray & Cody's bounded
/// rejection method (the standard generator from the TPC benchmarks):
/// slot 0 is the most popular, with popularity ∝ 1/(rank+1)^θ.
///
/// Real storage traces concentrate accesses this way; uniform hot
/// regions are the `θ = 0` special case.
///
/// # Example
///
/// ```
/// use triplea_workloads::Zipfian;
/// use triplea_sim::SplitMix64;
///
/// let z = Zipfian::new(1_000, 0.99);
/// let mut rng = SplitMix64::new(7);
/// let s = z.sample(&mut rng);
/// assert!(s < 1_000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct sum for small n; integral approximation for large n keeps
    // construction O(1)-ish without changing sampled shape noticeably.
    if n <= 10_000 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        // ∫_{10000}^{n} x^-θ dx
        let tail = if (theta - 1.0).abs() < 1e-9 {
            (n as f64 / 10_000.0).ln()
        } else {
            ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta)
        };
        head + tail
    }
}

impl Zipfian {
    /// Creates a sampler over `n` slots with skew `theta` (0 = uniform;
    /// 0.99 is the classic YCSB default; larger = more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or ≥ 2.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty domain");
        assert!((0.0..2.0).contains(&theta), "theta must be in [0, 2)");
        let zeta_n = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = if n == 1 {
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n)
        };
        Zipfian {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta2,
        }
    }

    /// Draws one slot; slot 0 is the hottest.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.n == 1 || self.theta == 0.0 {
            return rng.next_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.zeta2 <= self.zeta_n {
            return 1;
        }
        let s = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        s.min(self.n - 1)
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }
}

/// ON/OFF bursty arrival shaping: requests arrive back-to-back at
/// `gap_ns` during an ON window, then pause for an OFF window — the
/// checkpoint-burst pattern of the paper's §1 burst-buffer use case.
///
/// # Example
///
/// ```
/// use triplea_workloads::BurstShape;
///
/// let b = BurstShape::new(1_000_000, 4_000_000); // 1 ms on, 4 ms off
/// // The i-th request's arrival time at a 1 µs gap:
/// let t0 = b.arrival_ns(0, 1_000);
/// let t1000 = b.arrival_ns(1_000, 1_000);
/// assert!(t1000 - t0 > 4_000_000, "second burst starts after the pause");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstShape {
    on_ns: u64,
    off_ns: u64,
}

impl BurstShape {
    /// Creates a shape with `on_ns` of back-to-back arrivals followed by
    /// `off_ns` of silence.
    ///
    /// # Panics
    ///
    /// Panics if `on_ns == 0`.
    pub fn new(on_ns: u64, off_ns: u64) -> Self {
        assert!(on_ns > 0, "burst ON window must be positive");
        BurstShape { on_ns, off_ns }
    }

    /// Arrival time of the `i`-th request given a within-burst gap.
    pub fn arrival_ns(&self, i: u64, gap_ns: u64) -> u64 {
        let per_burst = (self.on_ns / gap_ns.max(1)).max(1);
        let burst = i / per_burst;
        let within = i % per_burst;
        burst * (self.on_ns + self.off_ns) + within * gap_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_theta0_is_uniform() {
        let z = Zipfian::new(8, 0.0);
        let mut rng = SplitMix64::new(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_concentrates_on_low_slots() {
        let z = Zipfian::new(1_000, 0.99);
        let mut rng = SplitMix64::new(2);
        let mut head = 0u32;
        const N: u32 = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Zipf(0.99): the top 10% of slots receive well over half the
        // accesses (uniform would give 10%).
        assert!(
            head as f64 / N as f64 > 0.5,
            "head share {}",
            head as f64 / N as f64
        );
    }

    #[test]
    fn zipf_samples_stay_in_domain() {
        for theta in [0.0, 0.5, 0.99, 1.5] {
            let z = Zipfian::new(37, theta);
            let mut rng = SplitMix64::new(3);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 37, "theta {theta}");
            }
        }
    }

    #[test]
    fn zipf_higher_theta_is_more_skewed() {
        let mut rng = SplitMix64::new(4);
        let share = |theta: f64, rng: &mut SplitMix64| {
            let z = Zipfian::new(1_000, theta);
            let mut zero = 0u32;
            for _ in 0..50_000 {
                if z.sample(rng) == 0 {
                    zero += 1;
                }
            }
            zero
        };
        let low = share(0.5, &mut rng);
        let high = share(1.2, &mut rng);
        assert!(high > low * 2, "low {low}, high {high}");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_bad_theta() {
        Zipfian::new(10, 2.5);
    }

    #[test]
    fn bursts_pack_then_pause() {
        let b = BurstShape::new(1_000, 9_000); // 10 reqs per burst at gap 100
        assert_eq!(b.arrival_ns(0, 100), 0);
        assert_eq!(b.arrival_ns(9, 100), 900);
        assert_eq!(b.arrival_ns(10, 100), 10_000, "next burst after pause");
        assert_eq!(b.arrival_ns(25, 100), 2 * 10_000 + 500);
    }

    #[test]
    fn burst_with_huge_gap_still_progresses() {
        let b = BurstShape::new(1_000, 1_000);
        // gap larger than the ON window: one request per burst
        assert_eq!(b.arrival_ns(0, 5_000), 0);
        assert_eq!(b.arrival_ns(1, 5_000), 2_000);
    }
}
