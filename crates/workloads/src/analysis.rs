//! Trace analysis: recovers Table-1 style characteristics from a trace.

use std::collections::HashMap;

use triplea_core::{IoOp, Trace};
use triplea_ftl::ArrayShape;

/// Measured characteristics of a trace against an array shape — the
/// columns of the paper's Table 1, recomputed from data.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Fraction of reads.
    pub read_ratio: f64,
    /// Clusters receiving at least `max(5 %, 2× fair share)` of all I/O.
    /// (The paper's Figure 1 uses a flat 10 %, but its own Table 1
    /// counts clusters below that — e.g. hm's five hot clusters carry
    /// 8.7 % each — so the census must scale with the array size.)
    pub hot_clusters: usize,
    /// Fraction of I/O heading to those hot clusters.
    pub hot_io_ratio: f64,
    /// Fraction of reads that do *not* continue the preceding access in
    /// their cluster (randomness estimate).
    pub read_randomness: f64,
    /// Same for writes.
    pub write_randomness: f64,
}

/// Analyzes a trace against `shape` using the default data layout.
pub fn analyze(trace: &Trace, shape: &ArrayShape) -> TraceStats {
    let per_cluster = shape.pages_per_cluster();
    let mut per_cluster_io: HashMap<u64, u64> = HashMap::new();
    let mut last_in_cluster: HashMap<u64, u64> = HashMap::new();
    let mut reads = 0usize;
    let mut seq = [0u64; 2]; // [read, write]
    let mut counted = [0u64; 2];

    for r in trace.requests() {
        let cluster = r.lpn.0 / per_cluster;
        *per_cluster_io.entry(cluster).or_default() += 1;
        let idx = match r.op {
            IoOp::Read => {
                reads += 1;
                0
            }
            IoOp::Write => 1,
        };
        if let Some(&last_end) = last_in_cluster.get(&cluster) {
            counted[idx] += 1;
            if r.lpn.0 == last_end {
                seq[idx] += 1;
            }
        }
        last_in_cluster.insert(cluster, r.lpn.0 + r.pages as u64);
    }

    let total = trace.len() as u64;
    let n_clusters = shape.topology.total_clusters().max(1) as f64;
    let threshold = (2.0 / n_clusters).max(0.05);
    let (hot_clusters, hot_io) = if total == 0 {
        (0, 0.0)
    } else {
        let hot: Vec<u64> = per_cluster_io
            .values()
            .copied()
            .filter(|&c| c as f64 / total as f64 >= threshold)
            .collect();
        let hot_sum: u64 = hot.iter().sum();
        (hot.len(), hot_sum as f64 / total as f64)
    };

    let rand_of = |i: usize| {
        if counted[i] == 0 {
            0.0
        } else {
            1.0 - seq[i] as f64 / counted[i] as f64
        }
    };

    TraceStats {
        requests: trace.len(),
        read_ratio: if trace.is_empty() {
            0.0
        } else {
            reads as f64 / trace.len() as f64
        },
        hot_clusters,
        hot_io_ratio: hot_io,
        read_randomness: rand_of(0),
        write_randomness: rand_of(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triplea_core::TraceRequest;
    use triplea_ftl::LogicalPage;
    use triplea_sim::SimTime;

    fn shape() -> ArrayShape {
        ArrayShape::small_test()
    }

    fn req(i: u64, op: IoOp, lpn: u64) -> TraceRequest {
        TraceRequest::new(SimTime::from_us(i), op, LogicalPage(lpn), 1)
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let s = analyze(&Trace::default(), &shape());
        assert_eq!(s.requests, 0);
        assert_eq!(s.hot_clusters, 0);
        assert_eq!(s.read_ratio, 0.0);
    }

    #[test]
    fn fully_sequential_reads_have_zero_randomness() {
        let t: Trace = (0..100).map(|i| req(i, IoOp::Read, i)).collect();
        let s = analyze(&t, &shape());
        assert!(s.read_randomness < 1e-9);
        assert_eq!(s.read_ratio, 1.0);
    }

    #[test]
    fn scattered_reads_have_high_randomness() {
        let t: Trace = (0..100)
            .map(|i| req(i, IoOp::Read, (i * 37) % 999))
            .collect();
        let s = analyze(&t, &shape());
        assert!(s.read_randomness > 0.9, "got {}", s.read_randomness);
    }

    #[test]
    fn hot_cluster_census_matches_definition() {
        let per = shape().pages_per_cluster();
        // 60% of IO to cluster 0, 40% spread over clusters 1..8 (~5.7% each)
        let mut v = Vec::new();
        for i in 0..60 {
            v.push(req(i, IoOp::Read, i % 16));
        }
        for i in 0..40 {
            v.push(req(60 + i, IoOp::Read, per * (1 + i % 7)));
        }
        let s = analyze(&Trace::new(v), &shape());
        assert_eq!(s.hot_clusters, 1);
        assert!((s.hot_io_ratio - 0.6).abs() < 1e-9);
    }

    #[test]
    fn mixed_ops_tracked_separately() {
        let mut v = Vec::new();
        for i in 0..50 {
            v.push(req(i, IoOp::Read, i)); // sequential reads
        }
        for i in 0..50 {
            v.push(req(50 + i, IoOp::Write, (i * 997) % 5_000)); // random writes
        }
        let s = analyze(&Trace::new(v), &shape());
        assert!((s.read_ratio - 0.5).abs() < 1e-9);
        assert!(s.write_randomness > 0.8);
    }
}
