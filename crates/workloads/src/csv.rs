//! Plain-text trace interchange: load and save traces as CSV.
//!
//! The paper replays block traces from SNIA IOTTA and UMass; this module
//! is the ingestion point for replaying *real* traces through the array
//! once you have them (see [`crate::msr`] for the MSR-Cambridge/SNIA
//! block-trace format). The native format is one record per line:
//!
//! ```text
//! # comment lines and an optional header are ignored
//! time_ns,op,lpn,pages
//! 0,R,1024,1
//! 1500,W,2048,8
//! ```
//!
//! `op` accepts `R`/`W` (case-insensitive) or `read`/`write`.
//!
//! Malformed input never panics: truncated lines, unknown ops, and
//! out-of-range addresses all come back as typed [`CsvError`] variants
//! carrying the offending line number.

use std::io::{BufRead, BufReader, Read, Write};

use triplea_core::{IoOp, Trace, TraceRequest};
use triplea_ftl::LogicalPage;
use triplea_sim::SimTime;

/// Errors produced while parsing a CSV trace.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse; carries the 1-based line number and a
    /// description.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A record has too few (truncated mid-line) or too many fields.
    Truncated {
        /// 1-based line number of the offending record.
        line: usize,
        /// Fields the format requires.
        expected: usize,
        /// Fields actually present.
        got: usize,
    },
    /// A numeric field falls outside its permitted range (zero-page
    /// request, address past the end of the LPN space, or an
    /// offset+size that would overflow the address arithmetic).
    OutOfRange {
        /// 1-based line number of the offending record.
        line: usize,
        /// Which field violated its range.
        field: &'static str,
        /// The offending value.
        value: u64,
        /// Exclusive upper bound the value must stay under.
        limit: u64,
    },
    /// A timestamp went backwards in a format whose records must be
    /// time-sorted (the MSR/SNIA block-trace formats).
    NonMonotonic {
        /// 1-based line number of the offending record.
        line: usize,
        /// The regressing timestamp.
        at: u64,
        /// The preceding record's timestamp.
        prev: u64,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "trace i/o error: {e}"),
            CsvError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            CsvError::Truncated {
                line,
                expected,
                got,
            } => write!(
                f,
                "trace parse error at line {line}: expected {expected} fields, got {got}"
            ),
            CsvError::OutOfRange {
                line,
                field,
                value,
                limit,
            } => write!(
                f,
                "trace parse error at line {line}: {field} {value} out of range (limit {limit})"
            ),
            CsvError::NonMonotonic { line, at, prev } => write!(
                f,
                "trace parse error at line {line}: timestamp {at} precedes {prev} \
                 (records must be time-sorted)"
            ),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl CsvError {
    /// The 1-based line number the error anchors to (`None` for I/O
    /// failures).
    pub fn line(&self) -> Option<usize> {
        match self {
            CsvError::Io(_) => None,
            CsvError::Parse { line, .. }
            | CsvError::Truncated { line, .. }
            | CsvError::OutOfRange { line, .. }
            | CsvError::NonMonotonic { line, .. } => Some(*line),
        }
    }
}

pub(crate) fn parse_op(s: &str, line: usize) -> Result<IoOp, CsvError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "r" | "read" => Ok(IoOp::Read),
        "w" | "write" => Ok(IoOp::Write),
        other => Err(CsvError::Parse {
            line,
            message: format!("unknown op {other:?} (expected R/W/read/write)"),
        }),
    }
}

pub(crate) fn parse_u64(s: &str, what: &str, line: usize) -> Result<u64, CsvError> {
    s.trim().parse().map_err(|_| CsvError::Parse {
        line,
        message: format!("invalid {what}: {s:?}"),
    })
}

/// Parses a CSV trace from any reader. Records are sorted by time (as
/// [`Trace::new`] guarantees); blank lines, `#` comments, and a
/// `time_ns,...` header are skipped.
///
/// Addresses are only checked for arithmetic sanity (`lpn + pages` must
/// not overflow); use [`parse_trace_bounded`] to additionally reject
/// records that fall outside a concrete array's LPN space.
///
/// # Errors
///
/// [`CsvError::Io`] for read failures; [`CsvError::Truncated`],
/// [`CsvError::OutOfRange`], or [`CsvError::Parse`] (each with the
/// offending line number) for malformed records.
///
/// # Example
///
/// ```
/// use triplea_workloads::csv::parse_trace;
///
/// let text = "time_ns,op,lpn,pages\n0,R,10,1\n500,W,20,4\n";
/// let trace = parse_trace(text.as_bytes())?;
/// assert_eq!(trace.len(), 2);
/// # Ok::<(), triplea_workloads::csv::CsvError>(())
/// ```
pub fn parse_trace<R: Read>(reader: R) -> Result<Trace, CsvError> {
    parse_trace_bounded(reader, u64::MAX)
}

/// [`parse_trace`] against a concrete LPN space: any record whose pages
/// extend past `lpn_limit` is rejected with [`CsvError::OutOfRange`]
/// instead of sailing through to panic (or silently alias) inside the
/// simulator.
///
/// # Errors
///
/// Everything [`parse_trace`] returns, plus [`CsvError::OutOfRange`]
/// for records past `lpn_limit`.
///
/// # Example
///
/// ```
/// use triplea_workloads::csv::{parse_trace_bounded, CsvError};
///
/// let text = "0,R,1000,8\n";
/// assert!(parse_trace_bounded(text.as_bytes(), 2_048).is_ok());
/// assert!(matches!(
///     parse_trace_bounded(text.as_bytes(), 1_004),
///     Err(CsvError::OutOfRange { line: 1, .. })
/// ));
/// ```
pub fn parse_trace_bounded<R: Read>(reader: R, lpn_limit: u64) -> Result<Trace, CsvError> {
    let mut out = Vec::new();
    let mut seen_record = false;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // A header may follow leading comments/blank lines, not just sit
        // on line 1.
        if !seen_record && line.to_ascii_lowercase().starts_with("time") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(CsvError::Truncated {
                line: lineno,
                expected: 4,
                got: fields.len(),
            });
        }
        let at = parse_u64(fields[0], "time_ns", lineno)?;
        let op = parse_op(fields[1], lineno)?;
        let lpn = parse_u64(fields[2], "lpn", lineno)?;
        let pages = parse_u64(fields[3], "pages", lineno)?;
        if pages == 0 || pages > u32::MAX as u64 {
            return Err(CsvError::OutOfRange {
                line: lineno,
                field: "pages",
                value: pages,
                limit: u32::MAX as u64,
            });
        }
        // `lpn + pages` must stay representable *and* inside the LPN
        // space: downstream address arithmetic assumes it.
        match lpn.checked_add(pages) {
            Some(end) if end <= lpn_limit => {}
            _ => {
                return Err(CsvError::OutOfRange {
                    line: lineno,
                    field: "lpn",
                    value: lpn,
                    limit: lpn_limit,
                })
            }
        }
        seen_record = true;
        out.push(TraceRequest::new(
            SimTime::from_nanos(at),
            op,
            LogicalPage(lpn),
            pages as u32,
        ));
    }
    Ok(Trace::new(out))
}

/// Writes a trace as CSV (with header), the inverse of [`parse_trace`].
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> std::io::Result<()> {
    writeln!(writer, "time_ns,op,lpn,pages")?;
    for r in trace.requests() {
        writeln!(
            writer,
            "{},{},{},{}",
            r.at.as_nanos(),
            match r.op {
                IoOp::Read => "R",
                IoOp::Write => "W",
            },
            r.lpn.0,
            r.pages
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Microbench;
    use triplea_core::ArrayConfig;

    #[test]
    fn parses_basic_records() {
        let text = "0,R,10,1\n500,w,20,4\n1000,READ,30,2\n";
        let t = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests()[0].op, IoOp::Read);
        assert_eq!(t.requests()[1].op, IoOp::Write);
        assert_eq!(t.requests()[1].pages, 4);
    }

    #[test]
    fn skips_header_comments_and_blank_lines() {
        let text = "time_ns,op,lpn,pages\n# a comment\n\n0,R,1,1\n";
        let t = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn header_after_leading_comments_is_still_a_header() {
        let text = "# exported trace\n\ntime_ns,op,lpn,pages\n0,R,1,1\n";
        let t = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sorts_by_time() {
        let text = "900,R,1,1\n100,R,2,1\n";
        let t = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(t.requests()[0].lpn.0, 2);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "0,R,1,1\nnot,a,valid\n";
        match parse_trace(text.as_bytes()) {
            Err(e @ CsvError::Truncated { line, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(e.line(), Some(2));
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
        let text = "0,X,1,1\n";
        assert!(matches!(
            parse_trace(text.as_bytes()),
            Err(CsvError::Parse { line: 1, .. })
        ));
        let text = "0,R,1,0\n";
        assert!(matches!(
            parse_trace(text.as_bytes()),
            Err(CsvError::OutOfRange {
                line: 1,
                field: "pages",
                ..
            })
        ));
    }

    #[test]
    fn truncated_and_overlong_lines_are_typed() {
        for (text, got) in [("0,R,1\n", 3), ("0,R,1,1,extra\n", 5), ("0\n", 1)] {
            match parse_trace(text.as_bytes()) {
                Err(CsvError::Truncated {
                    line: 1,
                    expected: 4,
                    got: g,
                }) => assert_eq!(g, got, "{text:?}"),
                other => panic!("{text:?}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn address_overflow_is_an_error_not_a_panic() {
        // lpn + pages would overflow u64 — the latent panic this parser
        // used to forward into debug-mode address arithmetic downstream.
        let text = format!("0,R,{},16\n", u64::MAX - 4);
        assert!(matches!(
            parse_trace(text.as_bytes()),
            Err(CsvError::OutOfRange {
                line: 1,
                field: "lpn",
                ..
            })
        ));
    }

    #[test]
    fn bounded_parse_rejects_records_past_the_lpn_space() {
        let cfg = ArrayConfig::small_test();
        let total = cfg.shape.total_pages();
        let inside = format!("0,R,{},1\n", total - 1);
        assert_eq!(
            parse_trace_bounded(inside.as_bytes(), total).unwrap().len(),
            1
        );
        let outside = format!("0,R,{total},1\n");
        match parse_trace_bounded(outside.as_bytes(), total) {
            Err(CsvError::OutOfRange {
                field: "lpn",
                value,
                limit,
                ..
            }) => {
                assert_eq!(value, total);
                assert_eq!(limit, total);
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        // Straddling the boundary is just as dead.
        let straddle = format!("0,W,{},8\n", total - 4);
        assert!(parse_trace_bounded(straddle.as_bytes(), total).is_err());
    }

    #[test]
    fn roundtrips_generated_traces() {
        let cfg = ArrayConfig::small_test();
        let original = Microbench::read().requests(200).build(&cfg, 1);
        let mut buf = Vec::new();
        write_trace(&mut buf, &original).unwrap();
        let parsed = parse_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed.requests(), original.requests());
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Parse {
            line: 7,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = CsvError::Truncated {
            line: 3,
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("line 3"), "{e}");
        let e = CsvError::OutOfRange {
            line: 9,
            field: "lpn",
            value: 100,
            limit: 50,
        };
        assert!(e.to_string().contains("lpn 100"), "{e}");
        let e = CsvError::NonMonotonic {
            line: 4,
            at: 10,
            prev: 20,
        };
        assert!(e.to_string().contains("precedes"), "{e}");
        assert_eq!(e.line(), Some(4));
    }
}
