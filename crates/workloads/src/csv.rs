//! Plain-text trace interchange: load and save traces as CSV.
//!
//! The paper replays block traces from SNIA IOTTA and UMass; this module
//! is the ingestion point for replaying *real* traces through the array
//! once you have them. The format is one record per line:
//!
//! ```text
//! # comment lines and an optional header are ignored
//! time_ns,op,lpn,pages
//! 0,R,1024,1
//! 1500,W,2048,8
//! ```
//!
//! `op` accepts `R`/`W` (case-insensitive) or `read`/`write`.

use std::io::{BufRead, BufReader, Read, Write};

use triplea_core::{IoOp, Trace, TraceRequest};
use triplea_ftl::LogicalPage;
use triplea_sim::SimTime;

/// Errors produced while parsing a CSV trace.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse; carries the 1-based line number and a
    /// description.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "trace i/o error: {e}"),
            CsvError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn parse_op(s: &str, line: usize) -> Result<IoOp, CsvError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "r" | "read" => Ok(IoOp::Read),
        "w" | "write" => Ok(IoOp::Write),
        other => Err(CsvError::Parse {
            line,
            message: format!("unknown op {other:?} (expected R/W/read/write)"),
        }),
    }
}

fn parse_u64(s: &str, what: &str, line: usize) -> Result<u64, CsvError> {
    s.trim().parse().map_err(|_| CsvError::Parse {
        line,
        message: format!("invalid {what}: {s:?}"),
    })
}

/// Parses a CSV trace from any reader. Records are sorted by time (as
/// [`Trace::new`] guarantees); blank lines, `#` comments, and a
/// `time_ns,...` header are skipped.
///
/// # Errors
///
/// [`CsvError::Io`] for read failures, [`CsvError::Parse`] (with the
/// offending line number) for malformed records.
///
/// # Example
///
/// ```
/// use triplea_workloads::csv::parse_trace;
///
/// let text = "time_ns,op,lpn,pages\n0,R,10,1\n500,W,20,4\n";
/// let trace = parse_trace(text.as_bytes())?;
/// assert_eq!(trace.len(), 2);
/// # Ok::<(), triplea_workloads::csv::CsvError>(())
/// ```
pub fn parse_trace<R: Read>(reader: R) -> Result<Trace, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if idx == 0 && line.to_ascii_lowercase().starts_with("time") {
            continue; // header
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(CsvError::Parse {
                line: lineno,
                message: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let at = parse_u64(fields[0], "time_ns", lineno)?;
        let op = parse_op(fields[1], lineno)?;
        let lpn = parse_u64(fields[2], "lpn", lineno)?;
        let pages = parse_u64(fields[3], "pages", lineno)?;
        if pages == 0 || pages > u32::MAX as u64 {
            return Err(CsvError::Parse {
                line: lineno,
                message: format!("pages out of range: {pages}"),
            });
        }
        out.push(TraceRequest {
            at: SimTime::from_nanos(at),
            op,
            lpn: LogicalPage(lpn),
            pages: pages as u32,
        });
    }
    Ok(Trace::new(out))
}

/// Writes a trace as CSV (with header), the inverse of [`parse_trace`].
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> std::io::Result<()> {
    writeln!(writer, "time_ns,op,lpn,pages")?;
    for r in trace.requests() {
        writeln!(
            writer,
            "{},{},{},{}",
            r.at.as_nanos(),
            match r.op {
                IoOp::Read => "R",
                IoOp::Write => "W",
            },
            r.lpn.0,
            r.pages
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Microbench;
    use triplea_core::ArrayConfig;

    #[test]
    fn parses_basic_records() {
        let text = "0,R,10,1\n500,w,20,4\n1000,READ,30,2\n";
        let t = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests()[0].op, IoOp::Read);
        assert_eq!(t.requests()[1].op, IoOp::Write);
        assert_eq!(t.requests()[1].pages, 4);
    }

    #[test]
    fn skips_header_comments_and_blank_lines() {
        let text = "time_ns,op,lpn,pages\n# a comment\n\n0,R,1,1\n";
        let t = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sorts_by_time() {
        let text = "900,R,1,1\n100,R,2,1\n";
        let t = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(t.requests()[0].lpn.0, 2);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "0,R,1,1\nnot,a,valid\n";
        match parse_trace(text.as_bytes()) {
            Err(CsvError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let text = "0,X,1,1\n";
        assert!(matches!(
            parse_trace(text.as_bytes()),
            Err(CsvError::Parse { line: 1, .. })
        ));
        let text = "0,R,1,0\n";
        assert!(parse_trace(text.as_bytes()).is_err(), "zero pages rejected");
    }

    #[test]
    fn roundtrips_generated_traces() {
        let cfg = ArrayConfig::small_test();
        let original = Microbench::read().requests(200).build(&cfg, 1);
        let mut buf = Vec::new();
        write_trace(&mut buf, &original).unwrap();
        let parsed = parse_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed.requests(), original.requests());
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Parse {
            line: 7,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
