//! The paper's random-I/O micro-benchmarks (§5.2).

use triplea_core::{ArrayConfig, IoOp, Trace};

use crate::dist::BurstShape;
use crate::generator::{synthesize, HotPlacement, SynthSpec};

/// Builder for the `read` / `write` micro-benchmarks: purely random
/// 4 KB requests, optionally concentrated on a configurable number of
/// hot clusters — the knob behind the paper's sensitivity studies
/// (Figures 12–16).
///
/// # Example
///
/// ```
/// use triplea_core::ArrayConfig;
/// use triplea_workloads::Microbench;
///
/// let cfg = ArrayConfig::small_test();
/// let trace = Microbench::read()
///     .hot_clusters(4)
///     .requests(2_000)
///     .gap_ns(1_500)
///     .build(&cfg, 1);
/// assert_eq!(trace.len(), 2_000);
/// ```
#[derive(Clone, Debug)]
pub struct Microbench {
    op: IoOp,
    hot_clusters: u32,
    hot_io_ratio: f64,
    placement: HotPlacement,
    requests: usize,
    gap_ns: u64,
    pages: u32,
    region_pages: u64,
    zipf_theta: f64,
    burst: Option<BurstShape>,
}

impl Microbench {
    fn new(op: IoOp) -> Self {
        Microbench {
            op,
            hot_clusters: 1,
            hot_io_ratio: 1.0,
            placement: HotPlacement::Spread,
            requests: 10_000,
            gap_ns: 1_400,
            pages: 1,
            region_pages: 2_048,
            zipf_theta: 0.0,
            burst: None,
        }
    }

    /// The `read` micro-benchmark: 100 % random reads.
    pub fn read() -> Self {
        Microbench::new(IoOp::Read)
    }

    /// The `write` micro-benchmark: 100 % random writes.
    pub fn write() -> Self {
        Microbench::new(IoOp::Write)
    }

    /// Number of hot clusters pressure concentrates on (0 ⇒ uniform).
    pub fn hot_clusters(mut self, n: u32) -> Self {
        self.hot_clusters = n;
        if n == 0 {
            self.hot_io_ratio = 0.0;
        }
        self
    }

    /// Fraction of I/O heading to the hot clusters (default 1.0).
    pub fn hot_io_ratio(mut self, f: f64) -> Self {
        self.hot_io_ratio = f.clamp(0.0, 1.0);
        self
    }

    /// Places all hot clusters under a single switch.
    pub fn same_switch(mut self) -> Self {
        self.placement = HotPlacement::SameSwitch;
        self
    }

    /// Number of requests.
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Inter-arrival gap in nanoseconds.
    pub fn gap_ns(mut self, ns: u64) -> Self {
        self.gap_ns = ns;
        self
    }

    /// Pages per request (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn pages(mut self, n: u32) -> Self {
        assert!(
            n >= 1 && n.is_power_of_two(),
            "pages must be a power of two"
        );
        self.pages = n;
        self
    }

    /// Hot-region size per hot cluster, in pages.
    pub fn region_pages(mut self, n: u64) -> Self {
        self.region_pages = n;
        self
    }

    /// Zipfian skew of slot popularity *within* each hot region
    /// (0 = uniform, the default; 0.99 = classic YCSB skew).
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative or ≥ 2.
    pub fn zipf(mut self, theta: f64) -> Self {
        assert!((0.0..2.0).contains(&theta), "theta must be in [0, 2)");
        self.zipf_theta = theta;
        self
    }

    /// ON/OFF bursty arrivals instead of a steady stream: requests pack
    /// into `on_ns` windows separated by `off_ns` of silence (the §1
    /// checkpoint-burst pattern).
    pub fn bursty(mut self, on_ns: u64, off_ns: u64) -> Self {
        self.burst = Some(BurstShape::new(on_ns, off_ns));
        self
    }

    /// Generates the trace, deterministically for a given `seed`.
    pub fn build(&self, cfg: &ArrayConfig, seed: u64) -> Trace {
        synthesize(
            cfg,
            seed,
            &SynthSpec {
                read_ratio: if self.op == IoOp::Read { 1.0 } else { 0.0 },
                read_randomness: 1.0,
                write_randomness: 1.0,
                hot_clusters: self.hot_clusters,
                hot_io_ratio: self.hot_io_ratio,
                placement: self.placement,
                requests: self.requests,
                gap_ns: self.gap_ns,
                pages: self.pages,
                hot_region_pages: self.region_pages,
                zipf_theta: self.zipf_theta,
                burst: self.burst,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    fn cfg() -> ArrayConfig {
        ArrayConfig::small_test()
    }

    #[test]
    fn read_bench_is_all_reads() {
        let t = Microbench::read().requests(1_000).build(&cfg(), 2);
        assert!((t.read_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_bench_is_all_writes() {
        let t = Microbench::write().requests(1_000).build(&cfg(), 2);
        assert_eq!(t.read_ratio(), 0.0);
    }

    #[test]
    fn hot_clusters_receive_all_io() {
        let c = cfg();
        let t = Microbench::read()
            .hot_clusters(2)
            .requests(5_000)
            .build(&c, 3);
        let stats = analyze(&t, &c.shape);
        assert_eq!(stats.hot_clusters, 2);
        assert!((stats.hot_io_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_hot_clusters_is_uniform() {
        let c = cfg();
        let t = Microbench::read()
            .hot_clusters(0)
            .requests(8_000)
            .build(&c, 4);
        let stats = analyze(&t, &c.shape);
        // 8 clusters, uniform 12.5% each: none reaches 2x the fair share.
        assert!(stats.hot_clusters <= c.shape.topology.total_clusters() as usize);
        let max = t
            .requests()
            .iter()
            .map(|r| r.lpn.0 / c.shape.pages_per_cluster())
            .fold(std::collections::HashMap::<u64, u64>::new(), |mut m, g| {
                *m.entry(g).or_default() += 1;
                m
            })
            .into_values()
            .max()
            .unwrap();
        assert!(
            (max as f64) < 8_000.0 * 0.25,
            "uniform traffic too skewed: {max}"
        );
    }

    #[test]
    fn same_switch_keeps_hot_on_switch_zero() {
        let c = cfg();
        let t = Microbench::read()
            .hot_clusters(3)
            .same_switch()
            .requests(4_000)
            .build(&c, 5);
        let cps = c.shape.topology.clusters_per_switch as u64;
        let per_cluster = c.shape.pages_per_cluster();
        for r in t.requests() {
            let g = r.lpn.0 / per_cluster;
            assert!(g / cps == 0, "request escaped switch 0");
        }
    }

    #[test]
    fn zipf_skews_hot_slot_popularity() {
        let c = cfg();
        let uniform = Microbench::read()
            .hot_clusters(1)
            .region_pages(1_024)
            .requests(20_000)
            .build(&c, 8);
        let skewed = Microbench::read()
            .hot_clusters(1)
            .region_pages(1_024)
            .zipf(0.99)
            .requests(20_000)
            .build(&c, 8);
        let top_share = |t: &triplea_core::Trace| {
            let mut counts = std::collections::HashMap::<u64, u64>::new();
            for r in t.requests() {
                *counts.entry(r.lpn.0).or_default() += 1;
            }
            let mut v: Vec<u64> = counts.into_values().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.iter().take(10).sum::<u64>() as f64 / t.len() as f64
        };
        assert!(
            top_share(&skewed) > top_share(&uniform) * 3.0,
            "zipf should concentrate accesses: {} vs {}",
            top_share(&skewed),
            top_share(&uniform)
        );
    }

    #[test]
    fn bursty_arrivals_have_gaps() {
        let c = cfg();
        let t = Microbench::read()
            .bursty(100_000, 900_000)
            .gap_ns(1_000)
            .requests(500)
            .build(&c, 9);
        let times: Vec<u64> = t.requests().iter().map(|r| r.at.as_nanos()).collect();
        let max_gap = times.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_gap >= 900_000, "no OFF window found, max gap {max_gap}");
    }

    #[test]
    fn region_bounds_reuse() {
        let c = cfg();
        let t = Microbench::read()
            .hot_clusters(1)
            .region_pages(64)
            .requests(4_000)
            .build(&c, 6);
        let distinct: std::collections::HashSet<u64> =
            t.requests().iter().map(|r| r.lpn.0).collect();
        assert!(
            distinct.len() <= 64,
            "region not honoured: {}",
            distinct.len()
        );
    }
}
