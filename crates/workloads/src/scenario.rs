//! Non-stationary traffic scenarios: multi-phase shapes that *change*
//! mid-run and force the autonomic layer to chase them.
//!
//! Every Table-1 stream the rest of this crate produces is stationary —
//! its marginals hold from the first request to the last, so a single
//! early migration round settles the array. Real storage frontends are
//! not like that: load breathes over the day, flash crowds slam one
//! tenant's data, and the hot working set *moves*. [`ScenarioTrace`]
//! models a run as a sequence of [`Phase`]s, each a homogeneous stretch
//! with its own arrival gap, mix, skew, and — crucially — its own *hot
//! cluster set*, sharing one RNG stream and per-cluster sequential
//! cursors so the whole trace is a deterministic function of
//! `(config, seed)`.
//!
//! Three canonical shapes ship as constructors:
//!
//! * [`ScenarioTrace::diurnal`] — arrival gap follows a day curve
//!   (trough → peak → trough) over N cycles;
//! * [`ScenarioTrace::flash_crowd`] — calm traffic interrupted by
//!   short, violent bursts that concentrate nearly all I/O on a single
//!   (rotating) cluster;
//! * [`ScenarioTrace::hotspot_drift`] — the profile's hot clusters
//!   rotate to a disjoint set every phase, so layout decisions made for
//!   phase *k* are wrong by phase *k+1*.
//!
//! The `bench scenario` catalog snapshots each shape as a golden
//! regression artifact; see `crates/bench/src/experiments/scenario.rs`.
//!
//! # Example
//!
//! ```
//! use triplea_core::ArrayConfig;
//! use triplea_workloads::{ScenarioTrace, WorkloadProfile};
//!
//! let cfg = ArrayConfig::small_test();
//! let profile = WorkloadProfile::by_name("fin").unwrap();
//! let scenario = ScenarioTrace::hotspot_drift(profile, 4_000, 1_500, 4);
//! let trace = scenario.build(&cfg, 7);
//! assert_eq!(trace.len(), 4_000);
//! assert_eq!(scenario.phases().len(), 4);
//! ```

use triplea_core::{ArrayConfig, TenantId, Trace};
use triplea_pcie::ClusterId;
use triplea_sim::SplitMix64;
use triplea_ftl::StripedLayout;

use crate::dist::BurstShape;
use crate::generator::{emit_phase, PhaseParams};
use crate::profile::WorkloadProfile;

/// One homogeneous stretch of a scenario: a request budget, an arrival
/// law, Table-1 style marginals, and a rotation of the hot cluster set.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Shape tag, for diagnostics and artifact labels.
    pub label: &'static str,
    /// Requests emitted during this phase.
    pub requests: usize,
    /// Within-phase inter-arrival gap in nanoseconds.
    pub gap_ns: u64,
    /// Fraction of requests that are reads.
    pub read_ratio: f64,
    /// Fraction of reads that are random.
    pub read_randomness: f64,
    /// Fraction of writes that are random.
    pub write_randomness: f64,
    /// Hot clusters this phase concentrates on (0 ⇒ uniform).
    pub hot_clusters: u32,
    /// Fraction of I/O heading to the hot set.
    pub hot_io_ratio: f64,
    /// Rotation of the hot set: the hot clusters are the `hot_clusters`
    /// consecutive global indices starting at `hot_rotation` (mod array
    /// size). Distinct rotations ⇒ the hot spot has *moved*.
    pub hot_rotation: u32,
    /// Zipf skew of slot popularity inside hot regions (0 = uniform).
    pub zipf_theta: f64,
    /// Optional ON/OFF arrival shaping within the phase.
    pub burst: Option<BurstShape>,
    /// Tenant the phase's requests are submitted as
    /// ([`TenantId::DEFAULT`] on untenanted arrays); see
    /// [`ScenarioTrace::bind_tenant`].
    pub tenant: TenantId,
}

impl Phase {
    /// A phase reproducing `profile`'s Table-1 marginals at `gap_ns`.
    pub fn from_profile(profile: &WorkloadProfile, requests: usize, gap_ns: u64) -> Self {
        Phase {
            label: "profile",
            requests,
            gap_ns,
            read_ratio: profile.read_ratio,
            read_randomness: profile.read_randomness,
            write_randomness: profile.write_randomness,
            hot_clusters: profile.hot_clusters,
            hot_io_ratio: profile.hot_io_ratio,
            hot_rotation: 0,
            zipf_theta: 0.0,
            burst: None,
            tenant: TenantId::DEFAULT,
        }
    }

    /// Simulated duration of the phase: the arrival slot after its last
    /// request (so consecutive phases never interleave arrivals).
    pub fn span_ns(&self) -> u64 {
        match &self.burst {
            Some(b) => b.arrival_ns(self.requests as u64, self.gap_ns),
            None => self.requests as u64 * self.gap_ns,
        }
    }
}

/// A multi-phase, non-stationary trace builder; see the module docs.
#[derive(Clone, Debug)]
pub struct ScenarioTrace {
    name: &'static str,
    phases: Vec<Phase>,
    pages: u32,
    hot_region_pages: u64,
}

/// Steps per diurnal cycle (3-hour buckets of a day curve).
const DIURNAL_STEPS: usize = 8;
/// Triangular day curve: 0 = trough (longest gap), 3 = peak (shortest).
const DIURNAL_WEIGHTS: [u64; DIURNAL_STEPS] = [0, 1, 2, 3, 3, 2, 1, 0];

impl ScenarioTrace {
    /// Assembles a scenario from explicit phases — the escape hatch for
    /// shapes the canned constructors don't cover.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn from_phases(name: &'static str, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a scenario needs at least one phase");
        ScenarioTrace {
            name,
            phases,
            pages: 1,
            hot_region_pages: 2_048,
        }
    }

    /// Diurnal load: `cycles` day curves, each of eight
    /// equal-request phases whose gap interpolates from `trough_gap_ns`
    /// (nighttime, longest) down to `peak_gap_ns` (midday, shortest)
    /// and back. The mix and skew are `profile`'s throughout — only the
    /// offered load breathes.
    ///
    /// # Panics
    ///
    /// Panics if `peak_gap_ns` is zero or exceeds `trough_gap_ns`.
    pub fn diurnal(
        profile: WorkloadProfile,
        requests: usize,
        trough_gap_ns: u64,
        peak_gap_ns: u64,
        cycles: u32,
    ) -> Self {
        assert!(
            peak_gap_ns >= 1 && peak_gap_ns <= trough_gap_ns,
            "diurnal needs 1 <= peak gap <= trough gap"
        );
        let cycles = cycles.max(1) as usize;
        let n = cycles * DIURNAL_STEPS;
        let per = requests / n;
        let mut phases = Vec::with_capacity(n);
        for c in 0..cycles {
            for (s, &w) in DIURNAL_WEIGHTS.iter().enumerate() {
                let gap = trough_gap_ns - (trough_gap_ns - peak_gap_ns) * w / 3;
                let mut p = Phase::from_profile(&profile, per, gap);
                p.label = if w == 3 { "peak" } else if w == 0 { "trough" } else { "shoulder" };
                // Remainder lands on the final phase.
                if c == cycles - 1 && s == DIURNAL_STEPS - 1 {
                    p.requests = requests - per * (n - 1);
                }
                phases.push(p);
            }
        }
        ScenarioTrace::from_phases("diurnal", phases)
    }

    /// Flash crowds: calm stretches of `profile` traffic at
    /// `base_gap_ns`, punctured by `crowds` violent bursts — 97 % of
    /// burst I/O lands Zipf-skewed on a *single* cluster at
    /// `crowd_gap_ns`, and every crowd targets a different cluster.
    /// Requests split evenly between calm and crowd phases.
    ///
    /// # Panics
    ///
    /// Panics if `crowd_gap_ns` is zero.
    pub fn flash_crowd(
        profile: WorkloadProfile,
        requests: usize,
        base_gap_ns: u64,
        crowd_gap_ns: u64,
        crowds: u32,
    ) -> Self {
        assert!(crowd_gap_ns >= 1, "crowd gap must be positive");
        let crowds = crowds.max(1) as usize;
        let n = crowds * 2;
        let per = requests / n;
        let mut phases = Vec::with_capacity(n);
        for c in 0..crowds {
            let mut calm = Phase::from_profile(&profile, per, base_gap_ns);
            calm.label = "calm";
            phases.push(calm);
            let crowd_requests = if c == crowds - 1 {
                requests - per * (n - 1)
            } else {
                per
            };
            phases.push(Phase {
                label: "crowd",
                requests: crowd_requests,
                gap_ns: crowd_gap_ns,
                read_ratio: profile.read_ratio,
                read_randomness: 1.0,
                write_randomness: 1.0,
                hot_clusters: 1,
                hot_io_ratio: 0.97,
                // Each crowd slams a different cluster; the +1 offset
                // steps off the profile's own resting hot set.
                hot_rotation: profile.hot_clusters + c as u32,
                zipf_theta: 0.99,
                burst: None,
                tenant: TenantId::DEFAULT,
            });
        }
        ScenarioTrace::from_phases("flash_crowd", phases)
    }

    /// Hot-spot drift: `n_phases` equal stretches of `profile` traffic
    /// in which the hot cluster set rotates to a *disjoint* set of
    /// clusters each phase — the migrations the autonomic layer made
    /// for phase `k` are exactly wrong for phase `k+1`.
    ///
    /// # Panics
    ///
    /// Panics if `gap_ns` is zero.
    pub fn hotspot_drift(
        profile: WorkloadProfile,
        requests: usize,
        gap_ns: u64,
        n_phases: u32,
    ) -> Self {
        assert!(gap_ns >= 1, "drift gap must be positive");
        let n = n_phases.max(1) as usize;
        let per = requests / n;
        let stride = profile.hot_clusters.max(1);
        let mut phases = Vec::with_capacity(n);
        for k in 0..n {
            let mut p = Phase::from_profile(
                &profile,
                if k == n - 1 { requests - per * (n - 1) } else { per },
                gap_ns,
            );
            p.label = "drift";
            p.hot_rotation = k as u32 * stride;
            phases.push(p);
        }
        ScenarioTrace::from_phases("hotspot_drift", phases)
    }

    /// Pages per request (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn pages(mut self, n: u32) -> Self {
        assert!(
            n >= 1 && n.is_power_of_two(),
            "pages must be a power of two"
        );
        self.pages = n;
        self
    }

    /// Pages in each hot cluster's hot region (smaller ⇒ more reuse).
    pub fn hot_region_pages(mut self, n: u64) -> Self {
        self.hot_region_pages = n.max(self.pages as u64);
        self
    }

    /// Stamps every phase as `tenant`'s traffic, so the whole shape can
    /// be blended into a multi-tenant run (e.g. a diurnal batch stream
    /// plus a flash-crowd interactive stream) via
    /// `SimulationBuilder::bind_tenant` or plain trace concatenation.
    pub fn bind_tenant(mut self, tenant: TenantId) -> Self {
        for p in &mut self.phases {
            p.tenant = tenant;
        }
        self
    }

    /// The shape's name (`diurnal`, `flash_crowd`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The phase schedule.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total simulated span of the arrival schedule: the sum of phase
    /// spans. Fault storms use this to aim power cuts and module deaths
    /// at specific scenario fractions.
    pub fn span_ns(&self) -> u64 {
        self.phases.iter().map(Phase::span_ns).sum()
    }

    /// Start time of each phase (same length as [`Self::phases`]) — the
    /// boundaries recovery tests aim power cuts at.
    pub fn phase_starts_ns(&self) -> Vec<u64> {
        let mut t = 0u64;
        self.phases
            .iter()
            .map(|p| {
                let start = t;
                t += p.span_ns();
                start
            })
            .collect()
    }

    /// Generates the trace, deterministically for a given `seed`.
    pub fn build(&self, cfg: &ArrayConfig, seed: u64) -> Trace {
        let layout = StripedLayout::new(cfg.shape);
        let topo = cfg.shape.topology;
        let total = topo.total_clusters();
        let mut rng = SplitMix64::new(seed ^ 0x5CE0_A210_D21F_7001);
        let mut cursors = vec![0u64; total as usize];
        let mut out = Vec::with_capacity(self.phases.iter().map(|p| p.requests).sum());
        let mut base_ns = 0u64;
        for phase in &self.phases {
            let hot = rotated_hot_ids(total, topo.clusters_per_switch, phase);
            let cold: Vec<ClusterId> = topo
                .iter_clusters()
                .filter(|c| !hot.contains(c))
                .collect();
            emit_phase(
                cfg,
                &layout,
                &mut rng,
                &mut cursors,
                &mut out,
                &PhaseParams {
                    read_ratio: phase.read_ratio,
                    read_randomness: phase.read_randomness,
                    write_randomness: phase.write_randomness,
                    hot: &hot,
                    cold: &cold,
                    hot_io_ratio: phase.hot_io_ratio,
                    requests: phase.requests,
                    gap_ns: phase.gap_ns,
                    pages: self.pages,
                    hot_region_pages: self.hot_region_pages,
                    zipf_theta: phase.zipf_theta,
                    burst: phase.burst,
                    base_ns,
                    tenant: phase.tenant,
                },
            );
            base_ns += phase.span_ns();
        }
        Trace::new(out)
    }
}

/// The phase's hot set: `hot_clusters` consecutive global indices
/// starting at `hot_rotation`, wrapped modulo the array size (never the
/// whole array — at least one cluster stays cold so migration has a
/// target).
fn rotated_hot_ids(total: u32, clusters_per_switch: u32, phase: &Phase) -> Vec<ClusterId> {
    let n = phase.hot_clusters.min(total.saturating_sub(1));
    (0..n)
        .map(|i| {
            let g = (phase.hot_rotation + i) % total;
            ClusterId {
                switch: g / clusters_per_switch,
                index: g % clusters_per_switch,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use triplea_core::Topology;

    fn wide() -> ArrayConfig {
        let mut c = ArrayConfig::small_test();
        c.shape.topology = Topology {
            switches: 4,
            clusters_per_switch: 16,
        };
        c
    }

    fn profile(name: &str) -> WorkloadProfile {
        WorkloadProfile::by_name(name).unwrap()
    }

    #[test]
    fn request_budget_is_exact_despite_uneven_splits() {
        for requests in [1_000usize, 1_009, 4_321] {
            let d = ScenarioTrace::diurnal(profile("fin"), requests, 4_000, 500, 2);
            assert_eq!(d.build(&wide(), 1).len(), requests, "diurnal {requests}");
            let f = ScenarioTrace::flash_crowd(profile("fin"), requests, 2_000, 250, 3);
            assert_eq!(f.build(&wide(), 1).len(), requests, "crowd {requests}");
            let h = ScenarioTrace::hotspot_drift(profile("fin"), requests, 1_500, 5);
            assert_eq!(h.build(&wide(), 1).len(), requests, "drift {requests}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = ScenarioTrace::hotspot_drift(profile("usr"), 2_000, 1_500, 4);
        let cfg = wide();
        let a = s.build(&cfg, 42);
        let b = s.build(&cfg, 42);
        assert_eq!(a.requests(), b.requests());
        let c = s.build(&cfg, 43);
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn diurnal_gap_breathes_between_trough_and_peak() {
        let s = ScenarioTrace::diurnal(profile("web"), 8_000, 8_000, 1_000, 1);
        assert_eq!(s.phases().len(), DIURNAL_STEPS);
        let gaps: Vec<u64> = s.phases().iter().map(|p| p.gap_ns).collect();
        assert_eq!(*gaps.first().unwrap(), 8_000, "starts at the trough");
        assert_eq!(gaps[3], 1_000, "reaches the peak");
        assert!(gaps[..4].windows(2).all(|w| w[1] <= w[0]), "ramps down");
        assert!(gaps[4..].windows(2).all(|w| w[1] >= w[0]), "ramps back up");
        // The built trace's arrival rate actually varies: the peak
        // phase packs more arrivals per unit time than the trough.
        let t = s.build(&wide(), 3);
        let starts = s.phase_starts_ns();
        let in_window = |from: u64, to: u64| {
            t.requests()
                .iter()
                .filter(|r| r.at.as_nanos() >= from && r.at.as_nanos() < to)
                .count() as f64
                / (to - from) as f64
        };
        let trough_rate = in_window(starts[0], starts[1]);
        let peak_rate = in_window(starts[3], starts[4]);
        assert!(
            peak_rate > 4.0 * trough_rate,
            "peak {peak_rate} vs trough {trough_rate}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_on_one_rotating_cluster() {
        let cfg = wide();
        let s = ScenarioTrace::flash_crowd(profile("cfs"), 12_000, 2_000, 200, 2);
        let t = s.build(&cfg, 9);
        let per_cluster = cfg.shape.pages_per_cluster();
        let starts = s.phase_starts_ns();
        // Phase 1 and phase 3 are the crowds.
        let crowd_target = |phase_idx: usize| {
            let from = starts[phase_idx];
            let to = starts.get(phase_idx + 1).copied().unwrap_or(u64::MAX);
            let mut counts = std::collections::HashMap::<u64, usize>::new();
            let mut n = 0usize;
            for r in t.requests() {
                let at = r.at.as_nanos();
                if at >= from && at < to {
                    *counts.entry(r.lpn.0 / per_cluster).or_default() += 1;
                    n += 1;
                }
            }
            let (&winner, &hits) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
            assert!(
                hits as f64 / n as f64 > 0.9,
                "crowd phase {phase_idx} not concentrated: {hits}/{n}"
            );
            winner
        };
        assert_ne!(
            crowd_target(1),
            crowd_target(3),
            "each crowd must slam a different cluster"
        );
    }

    #[test]
    fn hotspot_drift_moves_the_hot_set_each_phase() {
        let cfg = wide();
        let s = ScenarioTrace::hotspot_drift(profile("mds"), 16_000, 1_000, 4);
        let t = s.build(&cfg, 5);
        let per_cluster = cfg.shape.pages_per_cluster();
        let starts = s.phase_starts_ns();
        let hot_set = |k: usize| {
            let from = starts[k];
            let to = starts.get(k + 1).copied().unwrap_or(u64::MAX);
            let mut counts = std::collections::HashMap::<u64, usize>::new();
            let mut n = 0usize;
            for r in t.requests() {
                let at = r.at.as_nanos();
                if at >= from && at < to {
                    *counts.entry(r.lpn.0 / per_cluster).or_default() += 1;
                    n += 1;
                }
            }
            let threshold = n / 16; // > 2x the 1/64 fair share
            counts
                .into_iter()
                .filter(|&(_, c)| c > threshold)
                .map(|(g, _)| g)
                .collect::<std::collections::HashSet<u64>>()
        };
        let first = hot_set(0);
        let second = hot_set(1);
        assert!(!first.is_empty() && !second.is_empty());
        assert!(
            first.is_disjoint(&second),
            "consecutive drift phases must not share hot clusters: {first:?} vs {second:?}"
        );
    }

    #[test]
    fn marginals_survive_phasing() {
        // The non-stationary machinery must not distort the per-phase
        // Table-1 marginals: aggregate read ratio tracks the profile.
        let p = profile("mds");
        let cfg = wide();
        let t = ScenarioTrace::hotspot_drift(p, 20_000, 1_000, 4).build(&cfg, 11);
        let stats = analyze(&t, &cfg.shape);
        assert!(
            (stats.read_ratio - p.read_ratio).abs() < 0.02,
            "read ratio {} vs profile {}",
            stats.read_ratio,
            p.read_ratio
        );
    }

    #[test]
    fn span_and_phase_starts_are_consistent() {
        let s = ScenarioTrace::flash_crowd(profile("fin"), 4_000, 2_000, 250, 2);
        let starts = s.phase_starts_ns();
        assert_eq!(starts.len(), s.phases().len());
        assert_eq!(starts[0], 0);
        let span: u64 = s.phases().iter().map(Phase::span_ns).sum();
        assert_eq!(s.span_ns(), span);
        // Every arrival lands inside the span.
        let t = s.build(&wide(), 1);
        assert!(t.requests().iter().all(|r| r.at.as_nanos() < span));
    }

    #[test]
    fn addresses_stay_in_range() {
        let cfg = wide();
        let t = ScenarioTrace::flash_crowd(profile("proj"), 8_000, 1_000, 150, 3)
            .pages(4)
            .build(&cfg, 13);
        let total = cfg.shape.total_pages();
        for r in t.requests() {
            assert!(r.lpn.0 + r.pages as u64 <= total);
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_scenarios_are_rejected() {
        ScenarioTrace::from_phases("empty", Vec::new());
    }

    #[test]
    fn bound_scenario_stamps_every_request_with_its_tenant() {
        let cfg = wide();
        let s = ScenarioTrace::flash_crowd(profile("fin"), 2_000, 2_000, 250, 2)
            .bind_tenant(TenantId(3));
        assert!(s.phases().iter().all(|p| p.tenant == TenantId(3)));
        let t = s.build(&cfg, 7);
        assert!(t.requests().iter().all(|r| r.tenant == TenantId(3)));
        // Default-constructed shapes stay on the anonymous tenant, so
        // untenanted arrays replay them unchanged.
        let plain = ScenarioTrace::flash_crowd(profile("fin"), 2_000, 2_000, 250, 2).build(&cfg, 7);
        assert!(plain.requests().iter().all(|r| r.tenant == TenantId::DEFAULT));
        // Binding only re-stamps ownership; the arrival schedule and
        // address stream are untouched.
        assert_eq!(plain.len(), t.len());
        for (a, b) in plain.requests().iter().zip(t.requests()) {
            assert_eq!((a.at, a.op, a.lpn, a.pages), (b.at, b.op, b.lpn, b.pages));
        }
    }
}
