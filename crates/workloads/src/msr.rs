//! MSR-Cambridge / SNIA IOTTA block-trace ingestion.
//!
//! The traces the paper replays (SNIA's enterprise set, summarised in
//! its Table 1) ship in the MSR-Cambridge CSV schema — seven fields per
//! record:
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,hm,0,Read,383496192,32768,413
//! ```
//!
//! `Timestamp` is a Windows filetime (100 ns ticks since 1601),
//! `Offset`/`Size` are bytes, `ResponseTime` is in 100 ns ticks. This
//! module parses that schema losslessly ([`parse_msr`] /
//! [`write_msr`]), and [`TraceMapper`] deterministically re-bases the
//! records onto a concrete array: byte offsets become page-aligned LPNs
//! inside the array's address space (per-disk striping keeps distinct
//! source disks in distinct regions) and timestamps are linearly
//! rescaled so any trace replays in a chosen simulated span.
//!
//! Malformed input never panics — truncated records, unknown op types,
//! byte ranges that overflow, and timestamps running backwards all come
//! back as typed [`CsvError`] variants.

use std::io::{BufRead, BufReader, Read, Write};

use triplea_core::{ArrayConfig, IoOp, Trace, TraceRequest};
use triplea_ftl::LogicalPage;
use triplea_sim::SimTime;

use crate::csv::{parse_u64, CsvError};

/// One record of an MSR-Cambridge-format block trace, preserved
/// losslessly (parse → [`write_msr`] → parse is the identity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsrRecord {
    /// Windows filetime: 100 ns ticks since 1601-01-01.
    pub timestamp: u64,
    /// Source host name (e.g. `hm`, `proj`).
    pub hostname: String,
    /// Disk number within the host.
    pub disk: u32,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset of the access on the source disk.
    pub offset: u64,
    /// Length of the access in bytes (> 0).
    pub size: u64,
    /// Recorded device response time, in 100 ns ticks.
    pub response: u64,
}

fn parse_msr_op(s: &str, line: usize) -> Result<IoOp, CsvError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "read" | "r" => Ok(IoOp::Read),
        "write" | "w" => Ok(IoOp::Write),
        other => Err(CsvError::Parse {
            line,
            message: format!("unknown MSR op {other:?} (expected Read/Write)"),
        }),
    }
}

/// Parses an MSR-Cambridge CSV block trace.
///
/// Blank lines, `#` comments, and a leading `Timestamp,...` header are
/// skipped. Records must be time-sorted, exactly as SNIA publishes
/// them; a regressing timestamp is a corrupt download and comes back as
/// [`CsvError::NonMonotonic`] rather than silently reordering I/O.
///
/// # Errors
///
/// [`CsvError::Io`] for read failures; [`CsvError::Truncated`],
/// [`CsvError::Parse`], [`CsvError::OutOfRange`] (zero-byte access or
/// `offset + size` overflowing), or [`CsvError::NonMonotonic`] for
/// malformed records, each carrying the 1-based line number.
///
/// # Example
///
/// ```
/// use triplea_workloads::msr::parse_msr;
///
/// let text = "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n\
///             128166372003061629,hm,0,Read,383496192,32768,413\n\
///             128166372003964527,hm,0,Write,2011652096,4096,1214\n";
/// let records = parse_msr(text.as_bytes())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].size, 32768);
/// # Ok::<(), triplea_workloads::csv::CsvError>(())
/// ```
pub fn parse_msr<R: Read>(reader: R) -> Result<Vec<MsrRecord>, CsvError> {
    let mut out: Vec<MsrRecord> = Vec::new();
    let mut seen_record = false;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !seen_record && line.to_ascii_lowercase().starts_with("timestamp") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(CsvError::Truncated {
                line: lineno,
                expected: 7,
                got: fields.len(),
            });
        }
        let timestamp = parse_u64(fields[0], "timestamp", lineno)?;
        let disk = parse_u64(fields[2], "disk number", lineno)?;
        if disk > u32::MAX as u64 {
            return Err(CsvError::OutOfRange {
                line: lineno,
                field: "disk number",
                value: disk,
                limit: u32::MAX as u64,
            });
        }
        let op = parse_msr_op(fields[3], lineno)?;
        let offset = parse_u64(fields[4], "offset", lineno)?;
        let size = parse_u64(fields[5], "size", lineno)?;
        let response = parse_u64(fields[6], "response time", lineno)?;
        if size == 0 || offset.checked_add(size).is_none() {
            return Err(CsvError::OutOfRange {
                line: lineno,
                field: "size",
                value: size,
                limit: u64::MAX - offset,
            });
        }
        if let Some(prev) = out.last() {
            if timestamp < prev.timestamp {
                return Err(CsvError::NonMonotonic {
                    line: lineno,
                    at: timestamp,
                    prev: prev.timestamp,
                });
            }
        }
        seen_record = true;
        out.push(MsrRecord {
            timestamp,
            hostname: fields[1].trim().to_string(),
            disk: disk as u32,
            op,
            offset,
            size,
            response,
        });
    }
    Ok(out)
}

/// Writes records back out in the MSR-Cambridge schema (with header),
/// the lossless inverse of [`parse_msr`].
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_msr<W: Write>(mut writer: W, records: &[MsrRecord]) -> std::io::Result<()> {
    writeln!(
        writer,
        "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"
    )?;
    for r in records {
        writeln!(
            writer,
            "{},{},{},{},{},{},{}",
            r.timestamp,
            r.hostname,
            r.disk,
            match r.op {
                IoOp::Read => "Read",
                IoOp::Write => "Write",
            },
            r.offset,
            r.size,
            r.response
        )?;
    }
    Ok(())
}

/// Deterministically re-bases MSR records onto a concrete array.
///
/// * **Addresses** — byte offsets divide down to pages; each distinct
///   source disk gets its own stride-offset region of the LPN space, so
///   a multi-disk trace exercises multiple clusters instead of aliasing
///   onto one; everything wraps modulo the array size, keeping every
///   mapped request inside the address space by construction.
/// * **Time** — the trace's own span (first to last timestamp) is
///   linearly rescaled into `target_span_ns` with pure integer (u128)
///   arithmetic: the same records and knobs produce bit-identical
///   traces on every host, which is what lets trace-replay scenarios be
///   golden-snapshotted.
///
/// # Example
///
/// ```
/// use triplea_core::ArrayConfig;
/// use triplea_workloads::msr::{parse_msr, TraceMapper};
///
/// let text = "128166372003061629,hm,0,Read,383496192,32768,413\n\
///             128166372013061629,hm,0,Write,2011652096,4096,1214\n";
/// let records = parse_msr(text.as_bytes())?;
/// let cfg = ArrayConfig::small_test();
/// let trace = TraceMapper::new(&cfg).target_span_ns(1_000_000).map(&records);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.requests()[1].at.as_nanos(), 1_000_000);
/// # Ok::<(), triplea_workloads::csv::CsvError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TraceMapper {
    page_bytes: u64,
    total_pages: u64,
    target_span_ns: Option<u64>,
    max_request_pages: u32,
    disk_stride_pages: u64,
}

impl TraceMapper {
    /// A mapper for `cfg`'s page size and LPN space. Defaults: natural
    /// timestamps (100 ns ticks × 100), requests clamped to 64 pages,
    /// disks striped 1/16 of the array apart.
    pub fn new(cfg: &ArrayConfig) -> Self {
        let total = cfg.shape.total_pages();
        TraceMapper {
            page_bytes: cfg.shape.flash.page_size as u64,
            total_pages: total,
            target_span_ns: None,
            max_request_pages: 64,
            disk_stride_pages: (total / 16).max(1),
        }
    }

    /// Rescales the trace's span to exactly `ns` of simulated time
    /// (first record at 0, last at `ns`).
    pub fn target_span_ns(mut self, ns: u64) -> Self {
        self.target_span_ns = Some(ns);
        self
    }

    /// Clamps mapped request sizes to `pages` (large enterprise
    /// transfers otherwise monopolise an ONFi bus for milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn max_request_pages(mut self, pages: u32) -> Self {
        assert!(pages >= 1, "request clamp must be at least one page");
        self.max_request_pages = pages;
        self
    }

    /// Sets the LPN stride between consecutive source disks' regions.
    pub fn disk_stride_pages(mut self, pages: u64) -> Self {
        self.disk_stride_pages = pages.max(1);
        self
    }

    /// Maps records onto the array. Empty input maps to an empty trace.
    pub fn map(&self, records: &[MsrRecord]) -> Trace {
        let Some(first) = records.first() else {
            return Trace::default();
        };
        let t0 = first.timestamp;
        let span_ticks = records.last().map(|r| r.timestamp - t0).unwrap_or(0);
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            let pages = r
                .size
                .div_ceil(self.page_bytes)
                .clamp(1, self.max_request_pages as u64)
                .min(self.total_pages) as u32;
            // Stride per source disk, then wrap so lpn + pages always
            // fits the array.
            let raw = (r.offset / self.page_bytes)
                .wrapping_add(r.disk as u64 * self.disk_stride_pages);
            let lpn = raw % (self.total_pages - pages as u64 + 1);
            let rel_ticks = r.timestamp - t0;
            let at_ns = match self.target_span_ns {
                Some(target) if span_ticks > 0 => {
                    (rel_ticks as u128 * target as u128 / span_ticks as u128) as u64
                }
                Some(_) => 0,
                // Natural replay: one filetime tick is 100 ns.
                None => rel_ticks.saturating_mul(100),
            };
            out.push(TraceRequest::new(
                SimTime::from_nanos(at_ns),
                r.op,
                LogicalPage(lpn),
                pages,
            ));
        }
        Trace::new(out)
    }
}

/// Serialises a synthetic [`Trace`] into the MSR-Cambridge schema — the
/// bridge that lets the scenario catalog exercise the *real* ingestion
/// path (serialise → [`parse_msr`] → [`TraceMapper::map`]) without
/// shipping multi-gigabyte SNIA downloads.
///
/// Timestamps become filetime ticks (ns ÷ 100, offset to a plausible
/// 2008 epoch like the published traces), LPNs become byte offsets, and
/// the response column carries zero (unknown until simulated).
pub fn to_msr_csv(trace: &Trace, hostname: &str, page_bytes: u64) -> String {
    use std::fmt::Write as _;
    /// First timestamp of the published MSR-Cambridge captures (2008).
    const MSR_EPOCH_TICKS: u64 = 128_166_372_000_000_000;
    let mut out = String::with_capacity(trace.len() * 48 + 64);
    out.push_str("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n");
    for r in trace.requests() {
        let _ = writeln!(
            out,
            "{},{},0,{},{},{},0",
            MSR_EPOCH_TICKS + r.at.as_nanos() / 100,
            hostname,
            match r.op {
                IoOp::Read => "Read",
                IoOp::Write => "Write",
            },
            r.lpn.0 * page_bytes,
            r.pages as u64 * page_bytes,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use triplea_core::ArrayConfig;

    const SAMPLE: &str = "\
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,hm,0,Read,383496192,32768,413
128166372003564792,hm,0,Write,2011652096,4096,1214
128166372004316395,hm,1,Read,383528960,65536,212
128166372005643253,hm,1,Write,2011656192,8192,327
";

    #[test]
    fn parses_the_published_schema() {
        let r = parse_msr(SAMPLE.as_bytes()).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].op, IoOp::Read);
        assert_eq!(r[0].offset, 383_496_192);
        assert_eq!(r[1].op, IoOp::Write);
        assert_eq!(r[2].disk, 1);
        assert_eq!(r[3].response, 327);
        assert_eq!(r[0].hostname, "hm");
    }

    #[test]
    fn roundtrip_is_lossless() {
        let records = parse_msr(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_msr(&mut buf, &records).unwrap();
        let again = parse_msr(buf.as_slice()).unwrap();
        assert_eq!(records, again);
    }

    #[test]
    fn truncated_records_are_typed_errors() {
        let text = "128166372003061629,hm,0,Read,383496192,32768\n";
        assert!(matches!(
            parse_msr(text.as_bytes()),
            Err(CsvError::Truncated {
                line: 1,
                expected: 7,
                got: 6,
            })
        ));
    }

    #[test]
    fn regressing_timestamps_are_typed_errors() {
        let text = "\
128166372003061629,hm,0,Read,0,4096,0
128166372003061628,hm,0,Read,4096,4096,0
";
        match parse_msr(text.as_bytes()) {
            Err(CsvError::NonMonotonic { line, at, prev }) => {
                assert_eq!(line, 2);
                assert!(at < prev);
            }
            other => panic!("expected NonMonotonic, got {other:?}"),
        }
    }

    #[test]
    fn zero_size_and_overflowing_ranges_are_typed_errors() {
        let zero = "128166372003061629,hm,0,Read,0,0,0\n";
        assert!(matches!(
            parse_msr(zero.as_bytes()),
            Err(CsvError::OutOfRange { field: "size", .. })
        ));
        let overflow = format!("1,hm,0,Read,{},4096,0\n", u64::MAX - 2);
        assert!(matches!(
            parse_msr(overflow.as_bytes()),
            Err(CsvError::OutOfRange { field: "size", .. })
        ));
    }

    #[test]
    fn unknown_op_is_a_parse_error() {
        let text = "1,hm,0,Trim,0,4096,0\n";
        assert!(matches!(
            parse_msr(text.as_bytes()),
            Err(CsvError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn mapper_stays_inside_the_lpn_space() {
        let cfg = ArrayConfig::small_test();
        let records = parse_msr(SAMPLE.as_bytes()).unwrap();
        let trace = TraceMapper::new(&cfg).map(&records);
        let total = cfg.shape.total_pages();
        for r in trace.requests() {
            assert!(r.lpn.0 + r.pages as u64 <= total, "lpn {} escapes", r.lpn.0);
            assert!(r.pages >= 1);
        }
    }

    #[test]
    fn mapper_rescales_time_deterministically() {
        let cfg = ArrayConfig::small_test();
        let records = parse_msr(SAMPLE.as_bytes()).unwrap();
        let a = TraceMapper::new(&cfg).target_span_ns(10_000_000).map(&records);
        let b = TraceMapper::new(&cfg).target_span_ns(10_000_000).map(&records);
        assert_eq!(a.requests(), b.requests());
        assert_eq!(a.requests()[0].at.as_nanos(), 0);
        assert_eq!(a.requests().last().unwrap().at.as_nanos(), 10_000_000);
        // Interior points keep their relative order and proportions.
        let natural = TraceMapper::new(&cfg).map(&records);
        assert_eq!(
            natural.requests()[1].at.as_nanos(),
            (records[1].timestamp - records[0].timestamp) * 100
        );
    }

    #[test]
    fn mapper_separates_disks_and_clamps_large_requests() {
        let cfg = ArrayConfig::small_test();
        let text = "\
1,hm,0,Read,0,4096,0
1,hm,1,Read,0,4096,0
2,hm,0,Write,0,10485760,0
";
        let records = parse_msr(text.as_bytes()).unwrap();
        let trace = TraceMapper::new(&cfg).max_request_pages(16).map(&records);
        let rs = trace.requests();
        assert_ne!(rs[0].lpn, rs[1].lpn, "disks 0 and 1 must not alias");
        assert_eq!(rs[2].pages, 16, "10 MB transfer clamps to 16 pages");
    }

    #[test]
    fn synthetic_bridge_roundtrips_through_the_real_parser() {
        let cfg = ArrayConfig::small_test();
        let original = crate::Microbench::read().requests(64).build(&cfg, 3);
        let csv = to_msr_csv(&original, "synth", cfg.shape.flash.page_size as u64);
        let records = parse_msr(csv.as_bytes()).unwrap();
        assert_eq!(records.len(), 64);
        let mapped = TraceMapper::new(&cfg).map(&records);
        assert_eq!(mapped.len(), 64);
        for r in mapped.requests() {
            assert!(r.lpn.0 + r.pages as u64 <= cfg.shape.total_pages());
        }
    }

    #[test]
    fn empty_input_maps_to_empty_trace() {
        let cfg = ArrayConfig::small_test();
        assert!(parse_msr("".as_bytes()).unwrap().is_empty());
        assert!(TraceMapper::new(&cfg).map(&[]).is_empty());
    }
}
