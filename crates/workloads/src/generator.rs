//! Synthetic trace generation from workload profiles.

use triplea_core::{ArrayConfig, IoOp, TenantId, Trace, TraceRequest};
use triplea_ftl::{LogicalPage, StripedLayout};
use triplea_pcie::ClusterId;
use triplea_sim::{SimTime, SplitMix64};

use crate::profile::WorkloadProfile;

/// Where a trace's hot clusters sit in the topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotPlacement {
    /// Hot clusters round-robin across switches (the common case).
    Spread,
    /// All hot clusters under one switch — the paper's `websql` layout,
    /// which limits migration targets (§6.1).
    SameSwitch,
}

/// Builder for a synthetic trace that reproduces a [`WorkloadProfile`]'s
/// Table-1 marginals on a given array shape.
///
/// # Example
///
/// ```
/// use triplea_core::ArrayConfig;
/// use triplea_workloads::{ProfileTrace, WorkloadProfile};
///
/// let cfg = ArrayConfig::small_test();
/// let trace = ProfileTrace::new(WorkloadProfile::by_name("websql").unwrap())
///     .requests(1_000)
///     .gap_ns(2_000)
///     .build(&cfg, 42);
/// assert_eq!(trace.len(), 1_000);
/// ```
#[derive(Clone, Debug)]
pub struct ProfileTrace {
    profile: WorkloadProfile,
    requests: usize,
    gap_ns: u64,
    pages: u32,
    hot_region_pages: u64,
}

impl ProfileTrace {
    /// Starts a builder for `profile` with defaults: 20 000 requests,
    /// 1 µs inter-arrival gap, 4 KB (1-page) requests, 2048-page hot
    /// regions.
    pub fn new(profile: WorkloadProfile) -> Self {
        ProfileTrace {
            profile,
            requests: 20_000,
            gap_ns: 1_000,
            pages: 1,
            hot_region_pages: 2_048,
        }
    }

    /// Number of requests to generate.
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Fixed inter-arrival gap in nanoseconds (controls offered load).
    pub fn gap_ns(mut self, ns: u64) -> Self {
        self.gap_ns = ns;
        self
    }

    /// Pages per request (power of two; the paper's payloads are 4 KB,
    /// i.e. one page).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn pages(mut self, n: u32) -> Self {
        assert!(
            n >= 1 && n.is_power_of_two(),
            "pages must be a power of two"
        );
        self.pages = n;
        self
    }

    /// Pages in each hot cluster's hot region (smaller ⇒ more reuse).
    pub fn hot_region_pages(mut self, n: u64) -> Self {
        self.hot_region_pages = n.max(self.pages as u64);
        self
    }

    /// Generates the trace, deterministically for a given `seed`.
    pub fn build(&self, cfg: &ArrayConfig, seed: u64) -> Trace {
        let placement = if self.profile.hot_on_same_switch {
            HotPlacement::SameSwitch
        } else {
            HotPlacement::Spread
        };
        synthesize(
            cfg,
            seed,
            &SynthSpec {
                read_ratio: self.profile.read_ratio,
                read_randomness: self.profile.read_randomness,
                write_randomness: self.profile.write_randomness,
                hot_clusters: self.profile.hot_clusters,
                hot_io_ratio: self.profile.hot_io_ratio,
                placement,
                requests: self.requests,
                gap_ns: self.gap_ns,
                pages: self.pages,
                hot_region_pages: self.hot_region_pages,
                zipf_theta: 0.0,
                burst: None,
            },
        )
    }
}

/// Everything the synthesizer needs; shared by [`ProfileTrace`] and
/// [`crate::Microbench`].
pub(crate) struct SynthSpec {
    pub read_ratio: f64,
    pub read_randomness: f64,
    pub write_randomness: f64,
    pub hot_clusters: u32,
    pub hot_io_ratio: f64,
    pub placement: HotPlacement,
    pub requests: usize,
    pub gap_ns: u64,
    pub pages: u32,
    pub hot_region_pages: u64,
    /// Zipf skew of slot popularity within hot regions (0 = uniform).
    pub zipf_theta: f64,
    /// Optional ON/OFF arrival shaping.
    pub burst: Option<crate::dist::BurstShape>,
}

/// Picks the hot cluster IDs for a spec on a topology.
pub(crate) fn hot_cluster_ids(
    cfg: &ArrayConfig,
    n_hot: u32,
    placement: HotPlacement,
) -> Vec<ClusterId> {
    let topo = cfg.shape.topology;
    let n = n_hot
        .min(topo.total_clusters().saturating_sub(1))
        .max(if n_hot > 0 { 1 } else { 0 });
    match placement {
        HotPlacement::SameSwitch => (0..n.min(topo.clusters_per_switch))
            .map(|i| ClusterId {
                switch: 0,
                index: i,
            })
            .collect(),
        HotPlacement::Spread => (0..n)
            .map(|i| ClusterId {
                switch: i % topo.switches,
                index: (i / topo.switches) % topo.clusters_per_switch,
            })
            .collect(),
    }
}

/// One homogeneous stretch of traffic, as consumed by [`emit_phase`] —
/// the shared inner loop behind both the stationary [`synthesize`] path
/// and the multi-phase [`crate::ScenarioTrace`] shapes.
pub(crate) struct PhaseParams<'a> {
    pub read_ratio: f64,
    pub read_randomness: f64,
    pub write_randomness: f64,
    pub hot: &'a [ClusterId],
    pub cold: &'a [ClusterId],
    pub hot_io_ratio: f64,
    pub requests: usize,
    pub gap_ns: u64,
    pub pages: u32,
    pub hot_region_pages: u64,
    pub zipf_theta: f64,
    pub burst: Option<crate::dist::BurstShape>,
    /// Simulated time the phase starts at (arrivals are relative to it).
    pub base_ns: u64,
    /// Tenant the phase's requests are submitted as
    /// ([`TenantId::DEFAULT`] on untenanted arrays).
    pub tenant: TenantId,
}

/// Emits one phase's requests into `out`, advancing `rng` and the
/// per-cluster sequential `cursors` (which persist across phases so
/// sequential streams keep running through shape changes).
pub(crate) fn emit_phase(
    cfg: &ArrayConfig,
    layout: &StripedLayout,
    rng: &mut SplitMix64,
    cursors: &mut [u64],
    out: &mut Vec<TraceRequest>,
    p: &PhaseParams<'_>,
) {
    let topo = cfg.shape.topology;
    let per_cluster = cfg.shape.pages_per_cluster();
    let hot_region = p.hot_region_pages.max(p.pages as u64).min(per_cluster);
    let zipf = (p.zipf_theta > 0.0)
        .then(|| crate::dist::Zipfian::new(hot_region / p.pages as u64, p.zipf_theta));
    for i in 0..p.requests {
        let is_read = rng.chance(p.read_ratio);
        let go_hot = !p.hot.is_empty() && rng.chance(p.hot_io_ratio);
        let cluster = if go_hot || p.cold.is_empty() {
            p.hot[rng.next_below(p.hot.len() as u64) as usize]
        } else {
            p.cold[rng.next_below(p.cold.len() as u64) as usize]
        };
        let base = layout.region_start(cluster).0;
        // Hot traffic concentrates in a small region (reuse); cold
        // traffic roams the whole cluster.
        let region = if go_hot { hot_region } else { per_cluster };
        let slots = region / p.pages as u64;

        let randomness = if is_read {
            p.read_randomness
        } else {
            p.write_randomness
        };
        let slot = if rng.chance(randomness) {
            match (&zipf, go_hot) {
                (Some(z), true) => z.sample(rng).min(slots - 1),
                _ => rng.next_below(slots),
            }
        } else {
            let g = topo.global_index(cluster) as usize;
            let s = cursors[g] % slots;
            cursors[g] += 1;
            s
        };
        let at_ns = p.base_ns
            + match &p.burst {
                Some(b) => b.arrival_ns(i as u64, p.gap_ns),
                None => i as u64 * p.gap_ns,
            };
        out.push(TraceRequest::for_tenant(
            p.tenant,
            SimTime::from_nanos(at_ns),
            if is_read { IoOp::Read } else { IoOp::Write },
            LogicalPage(base + slot * p.pages as u64),
            p.pages,
        ));
    }
}

pub(crate) fn synthesize(cfg: &ArrayConfig, seed: u64, spec: &SynthSpec) -> Trace {
    let layout = StripedLayout::new(cfg.shape);
    let topo = cfg.shape.topology;
    let mut rng = SplitMix64::new(seed ^ 0xA11F_1A5F);

    let hot = hot_cluster_ids(cfg, spec.hot_clusters, spec.placement);
    let cold: Vec<ClusterId> = topo.iter_clusters().filter(|c| !hot.contains(c)).collect();
    let mut cursors = vec![0u64; topo.total_clusters() as usize];

    let mut out = Vec::with_capacity(spec.requests);
    emit_phase(
        cfg,
        &layout,
        &mut rng,
        &mut cursors,
        &mut out,
        &PhaseParams {
            read_ratio: spec.read_ratio,
            read_randomness: spec.read_randomness,
            write_randomness: spec.write_randomness,
            hot: &hot,
            cold: &cold,
            hot_io_ratio: spec.hot_io_ratio,
            requests: spec.requests,
            gap_ns: spec.gap_ns,
            pages: spec.pages,
            hot_region_pages: spec.hot_region_pages,
            zipf_theta: spec.zipf_theta,
            burst: spec.burst,
            base_ns: 0,
            tenant: TenantId::DEFAULT,
        },
    );
    Trace::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    fn cfg() -> ArrayConfig {
        ArrayConfig::small_test()
    }

    /// Small flash geometry on the paper's 4x16 topology: Table-1 hot
    /// percentages assume 64 clusters.
    fn wide() -> ArrayConfig {
        let mut c = ArrayConfig::small_test();
        c.shape.topology = triplea_core::Topology {
            switches: 4,
            clusters_per_switch: 16,
        };
        c
    }

    #[test]
    fn builds_requested_count_and_ops() {
        let t = ProfileTrace::new(WorkloadProfile::by_name("web").unwrap())
            .requests(500)
            .build(&cfg(), 1);
        assert_eq!(t.len(), 500);
        assert!((t.read_ratio() - 1.0).abs() < 1e-12, "web is 100% reads");
    }

    #[test]
    fn read_ratio_approximates_profile() {
        let p = WorkloadProfile::by_name("mds").unwrap(); // 25.9% reads
        let t = ProfileTrace::new(p).requests(20_000).build(&cfg(), 3);
        assert!(
            (t.read_ratio() - p.read_ratio).abs() < 0.02,
            "got {}",
            t.read_ratio()
        );
    }

    #[test]
    fn hot_io_concentrates_on_hot_clusters() {
        let p = WorkloadProfile::by_name("g-eigen").unwrap(); // 70.6% hot
        let c = wide();
        let t = ProfileTrace::new(p).requests(20_000).build(&c, 5);
        let stats = analyze(&t, &c.shape);
        assert!(stats.hot_clusters >= 1, "no hot clusters induced");
        assert!(
            (stats.hot_io_ratio - p.hot_io_ratio).abs() < 0.15,
            "hot io ratio {} vs profile {}",
            stats.hot_io_ratio,
            p.hot_io_ratio
        );
    }

    #[test]
    fn uniform_profile_stays_uniform() {
        let p = WorkloadProfile::by_name("cfs").unwrap();
        let c = wide();
        let t = ProfileTrace::new(p).requests(20_000).build(&c, 9);
        let stats = analyze(&t, &c.shape);
        assert_eq!(stats.hot_clusters, 0, "cfs must induce no hot clusters");
    }

    #[test]
    fn same_switch_placement_for_websql() {
        let c = cfg();
        let ids = hot_cluster_ids(&c, 4, HotPlacement::SameSwitch);
        assert!(ids.iter().all(|id| id.switch == 0));
        assert_eq!(ids.len(), 4);
        let spread = hot_cluster_ids(&c, 4, HotPlacement::Spread);
        let switches: std::collections::HashSet<u32> = spread.iter().map(|id| id.switch).collect();
        assert!(switches.len() > 1, "spread placement uses many switches");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = WorkloadProfile::by_name("fin").unwrap();
        let a = ProfileTrace::new(p).requests(1_000).build(&cfg(), 77);
        let b = ProfileTrace::new(p).requests(1_000).build(&cfg(), 77);
        assert_eq!(a.requests(), b.requests());
        let c = ProfileTrace::new(p).requests(1_000).build(&cfg(), 78);
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn addresses_stay_in_range_and_aligned() {
        let p = WorkloadProfile::by_name("usr").unwrap();
        let c = cfg();
        let t = ProfileTrace::new(p).requests(5_000).pages(4).build(&c, 11);
        let total = c.shape.total_pages();
        for r in t.requests() {
            assert!(r.lpn.0 + r.pages as u64 <= total);
            assert_eq!(r.lpn.0 % r.pages as u64, 0, "requests are size-aligned");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn pages_must_be_power_of_two() {
        ProfileTrace::new(WorkloadProfile::by_name("web").unwrap()).pages(3);
    }

    #[test]
    fn sequential_profile_produces_sequential_runs() {
        // g-eigen: 17.1% random => long sequential runs.
        let p = WorkloadProfile::by_name("g-eigen").unwrap();
        let c = cfg();
        let t = ProfileTrace::new(p).requests(10_000).build(&c, 13);
        let stats = analyze(&t, &c.shape);
        assert!(
            stats.read_randomness < 0.5,
            "expected mostly-sequential reads, got randomness {}",
            stats.read_randomness
        );
    }
}
