//! The paper's Table 1, as data.

/// Characteristics of one workload, mirroring the columns of the paper's
/// Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Trace name as used in the paper.
    pub name: &'static str,
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_ratio: f64,
    /// Fraction of reads that are random (vs sequential), in `[0, 1]`.
    pub read_randomness: f64,
    /// Fraction of writes that are random, in `[0, 1]`.
    pub write_randomness: f64,
    /// Number of hot clusters the trace induces on the 4×16 baseline.
    pub hot_clusters: u32,
    /// Fraction of I/O heading to the hot clusters, in `[0, 1]`.
    pub hot_io_ratio: f64,
    /// Whether the hot clusters share one PCI-E switch (websql's layout,
    /// §6.1) or spread across switches.
    pub hot_on_same_switch: bool,
}

impl WorkloadProfile {
    /// All thirteen profiles of Table 1, in the paper's order.
    pub fn table1() -> &'static [WorkloadProfile] {
        &TABLE1
    }

    /// The eleven enterprise profiles (Table 2 rows).
    pub fn enterprise() -> &'static [WorkloadProfile] {
        &TABLE1[..11]
    }

    /// Looks a profile up by its paper name.
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        TABLE1.iter().find(|p| p.name == name).copied()
    }

    /// `true` when the profile induces no hot clusters (cfs, web) — the
    /// cases where the paper observes no Triple-A gain.
    pub fn is_uniform(&self) -> bool {
        self.hot_clusters == 0
    }
}

const fn p(
    name: &'static str,
    read: f64,
    rrand: f64,
    wrand: f64,
    hot: u32,
    hot_io: f64,
    same_switch: bool,
) -> WorkloadProfile {
    WorkloadProfile {
        name,
        read_ratio: read,
        read_randomness: rrand,
        write_randomness: wrand,
        hot_clusters: hot,
        hot_io_ratio: hot_io,
        hot_on_same_switch: same_switch,
    }
}

/// Table 1 of the paper, verbatim (ratios as fractions).
static TABLE1: [WorkloadProfile; 13] = [
    p("cfs", 0.765, 0.941, 0.738, 0, 0.0, false),
    p("fin", 0.502, 0.904, 0.991, 5, 0.557, false),
    p("hm", 0.551, 0.933, 0.992, 5, 0.437, false),
    p("mds", 0.259, 0.802, 0.948, 4, 0.541, false),
    p("msnfs", 0.528, 0.909, 0.849, 4, 0.288, false),
    p("prn", 0.971, 0.948, 0.466, 2, 0.509, false),
    p("proj", 0.291, 0.807, 0.085, 6, 0.613, false),
    p("prxy", 0.611, 0.973, 0.594, 3, 0.393, false),
    p("usr", 0.289, 0.903, 0.969, 5, 0.401, false),
    p("web", 1.0, 0.95, 0.0, 0, 0.0, false),
    p("websql", 0.543, 0.739, 0.676, 4, 0.506, true),
    p("g-eigen", 1.0, 0.171, 0.0, 6, 0.706, false),
    p("l-eigen", 1.0, 0.171, 0.0, 11, 0.481, false),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_profiles() {
        assert_eq!(WorkloadProfile::table1().len(), 13);
        assert_eq!(WorkloadProfile::enterprise().len(), 11);
    }

    #[test]
    fn lookup_by_name() {
        let g = WorkloadProfile::by_name("g-eigen").unwrap();
        assert_eq!(g.read_ratio, 1.0);
        assert_eq!(g.hot_clusters, 6);
        assert!(WorkloadProfile::by_name("nope").is_none());
    }

    #[test]
    fn ratios_are_fractions() {
        for p in WorkloadProfile::table1() {
            assert!((0.0..=1.0).contains(&p.read_ratio), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.read_randomness), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.write_randomness), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.hot_io_ratio), "{}", p.name);
        }
    }

    #[test]
    fn uniform_profiles_have_no_hot_io() {
        for p in WorkloadProfile::table1() {
            if p.is_uniform() {
                assert_eq!(p.hot_io_ratio, 0.0, "{}", p.name);
            } else {
                assert!(p.hot_io_ratio > 0.0, "{}", p.name);
            }
        }
    }

    #[test]
    fn websql_is_the_same_switch_case() {
        for p in WorkloadProfile::table1() {
            assert_eq!(p.hot_on_same_switch, p.name == "websql", "{}", p.name);
        }
    }
}
