//! Workload generation for the Triple-A reproduction (paper §5.2).
//!
//! The paper evaluates on enterprise traces from SNIA/UMass and an HPC
//! Eigensolver trace from NERSC's Carver cluster — none of which ship
//! with this repository. Instead, [`WorkloadProfile`] captures exactly
//! the characteristics the paper's **Table 1** reports for each trace
//! (read ratio, read/write randomness, number of hot clusters, fraction
//! of I/O heading to them), and [`ProfileTrace`] synthesises traces that
//! reproduce those marginals on any array shape. Triple-A's mechanisms
//! react only to those marginals — spatial skew, mix, and randomness —
//! so the synthetic traces exercise the same contention behaviour.
//!
//! [`Microbench`] builds the paper's random-read/random-write
//! micro-benchmarks used for the sensitivity studies (§6.4–6.5).
//!
//! # Example
//!
//! ```
//! use triplea_core::{Array, ArrayConfig, ManagementMode};
//! use triplea_workloads::{Microbench, WorkloadProfile};
//!
//! let cfg = ArrayConfig::small_test();
//! let trace = Microbench::read().hot_clusters(2).requests(500).build(&cfg, 7);
//! let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
//! assert_eq!(report.completed(), 500);
//!
//! // All thirteen Table-1 profiles are available by name:
//! let websql = WorkloadProfile::by_name("websql").unwrap();
//! assert!(websql.hot_clusters > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod csv;
mod dist;
mod generator;
mod micro;
pub mod msr;
mod profile;
mod scenario;

pub use analysis::{analyze, TraceStats};
pub use csv::CsvError;
pub use dist::{BurstShape, Zipfian};
pub use generator::{HotPlacement, ProfileTrace};
pub use micro::Microbench;
pub use msr::{MsrRecord, TraceMapper};
pub use profile::WorkloadProfile;
pub use scenario::{Phase, ScenarioTrace};
