//! State and bookkeeping of the autonomic management module (paper §4).
//!
//! The detection *formulas* live in [`crate::config::ArrayConfig`]
//! (Eqs. 1 and 3) and the cold-cluster test (Eq. 2) in
//! [`AutonomicState::pick_cold_sibling`]; the event-loop integration is
//! in [`crate::array`].

use triplea_sim::{FxHashMap, FxHashSet};

use triplea_pcie::{ClusterId, Topology};
use triplea_sim::trace::{TraceEventKind, TracePort, TraceScope};
use triplea_sim::{Nanos, SimTime, SplitMix64};

use crate::config::AutonomicParams;

/// Activity counters of the autonomic management module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct AutonomicStats {
    /// Eq. 1 hot-cluster detections.
    pub hot_detections: u64,
    /// Inter-cluster migrations started.
    pub migrations_started: u64,
    /// Inter-cluster migrations fully programmed at the target.
    pub migrations_completed: u64,
    /// Pages moved across clusters.
    pub pages_migrated: u64,
    /// Laggard detections (Eq. 3 or queue examination, debounced).
    pub laggard_detections: u64,
    /// Pages reshaped to adjacent FIMMs within a cluster.
    pub pages_reshaped: u64,
    /// Stalled writes redirected to adjacent FIMMs.
    pub write_redirects: u64,
    /// "All FIMMs are laggards" escalations to inter-cluster migration.
    pub escalations: u64,
    /// Hot detections that found no cold sibling (migration skipped).
    pub no_cold_target: u64,
}

impl std::fmt::Display for AutonomicStats {
    /// A one-line summary; `"idle"` when the manager never acted.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == AutonomicStats::default() {
            return write!(f, "idle");
        }
        write!(
            f,
            "{} hot detections, {}/{} migrations ({} pages), \
             {} laggards ({} pages reshaped), {} write redirects, \
             {} escalations, {} no-cold-target",
            self.hot_detections,
            self.migrations_completed,
            self.migrations_started,
            self.pages_migrated,
            self.laggard_detections,
            self.pages_reshaped,
            self.write_redirects,
            self.escalations,
            self.no_cold_target
        )
    }
}

/// Mutable state of the autonomic manager during a run.
///
/// Iteration-order audit (these maps use the deterministic-but-
/// arbitrary-order [`FxHashMap`]/[`FxHashSet`]): all three collections
/// are accessed strictly by key — `insert`/`remove`/`get`/`len` — and
/// never iterated, so no simulated decision can depend on hasher
/// internals. Candidate scans (`pick_cold_sibling`) walk the topology's
/// ordered sibling list, not a map.
#[derive(Clone, Debug)]
pub struct AutonomicState {
    params: AutonomicParams,
    /// Pages currently being migrated/reshaped (suppress duplicates).
    inflight: FxHashSet<u64>,
    /// Per-(cluster, fimm) last laggard detection, for debouncing.
    last_laggard: FxHashMap<(u32, u32), SimTime>,
    /// Per-cluster last escalation, for debouncing.
    last_escalation: FxHashMap<u32, SimTime>,
    rng: SplitMix64,
    /// Counters reported at the end of the run.
    pub stats: AutonomicStats,
    trace: TracePort,
}

impl AutonomicState {
    /// Creates a quiescent manager.
    pub fn new(params: AutonomicParams, seed: u64) -> Self {
        AutonomicState {
            params,
            inflight: FxHashSet::default(),
            last_laggard: FxHashMap::default(),
            last_escalation: FxHashMap::default(),
            rng: SplitMix64::new(seed),
            stats: AutonomicStats::default(),
            trace: TracePort::off(),
        }
    }

    /// Connects the manager to an event recorder; accepted laggard and
    /// escalation detections are reported through `port`, scoped to the
    /// cluster they fired on.
    pub fn attach_trace(&mut self, port: TracePort) {
        self.trace = port;
    }

    /// The tunables in force.
    pub fn params(&self) -> &AutonomicParams {
        &self.params
    }

    /// Eq. 2 cold-cluster selection: among `src`'s same-switch siblings,
    /// pick the one with the lowest recent bus utilization, provided it
    /// is below the threshold. `bus_util` maps a global cluster index to
    /// its windowed utilization; `wear_of` maps it to total erase count
    /// (§6.7: the central module knows every cluster's erase counts, so
    /// equally-cold candidates break ties toward the least-worn cluster
    /// — global wear-levelling folded into migration). Remaining ties
    /// break pseudo-randomly but deterministically.
    pub fn pick_cold_sibling<F, G>(
        &mut self,
        topology: &Topology,
        src: ClusterId,
        bus_util: F,
        wear_of: G,
    ) -> Option<ClusterId>
    where
        F: Fn(u32) -> f64,
        G: Fn(u32) -> u64,
    {
        // A sibling qualifies when its bus is below the absolute Eq. 2
        // threshold, or — under high aggregate load, where nothing is
        // absolutely cold — when it carries less than half the source's
        // load (migrating there still halves the hot bus's pressure).
        let src_util = bus_util(topology.global_index(src));
        let mut candidates: Vec<(f64, ClusterId)> = topology
            .siblings(src)
            .map(|sib| (bus_util(topology.global_index(sib)), sib))
            .filter(|(u, _)| *u < self.params.cold_bus_threshold || *u < src_util * 0.5)
            .collect();
        if candidates.is_empty() {
            self.stats.no_cold_target += 1;
            return None;
        }
        let min = candidates
            .iter()
            .map(|(u, _)| *u)
            .fold(f64::INFINITY, f64::min);
        // Keep every sibling within epsilon of the minimum...
        candidates.retain(|(u, _)| *u <= min + 1e-12);
        if self.params.wear_aware && candidates.len() > 1 {
            // ...prefer the least-worn among them (§6.7)...
            let min_wear = candidates
                .iter()
                .map(|(_, id)| wear_of(topology.global_index(*id)))
                .min()
                .unwrap_or(0);
            candidates.retain(|(_, id)| wear_of(topology.global_index(*id)) == min_wear);
        }
        // ...and spread the rest uniformly.
        let idx = self.rng.next_below(candidates.len() as u64) as usize;
        Some(candidates[idx].1)
    }

    /// Marks pages as being relocated; returns only the pages that were
    /// not already in flight.
    pub fn claim_pages(&mut self, lpns: impl IntoIterator<Item = u64>) -> Vec<u64> {
        lpns.into_iter()
            .filter(|&l| self.inflight.insert(l))
            .collect()
    }

    /// Releases pages after their relocation completes.
    pub fn release_pages<'a>(&mut self, lpns: impl IntoIterator<Item = &'a u64>) {
        for l in lpns {
            self.inflight.remove(l);
        }
    }

    /// Number of pages currently in flight.
    pub fn inflight_pages(&self) -> usize {
        self.inflight.len()
    }

    /// Drops every in-flight claim: the management module's DRAM state is
    /// volatile and does not survive a power cut. Durable rollback of the
    /// half-built clones themselves is the FTL journal's job; this only
    /// clears the engine-side bookkeeping so remounted traffic can claim
    /// the pages again.
    pub fn forget_inflight(&mut self) {
        self.inflight.clear();
    }

    /// Debounced laggard registration: returns `true` (and counts a
    /// detection) unless the same FIMM was flagged within the cooldown.
    pub fn register_laggard(&mut self, cluster: u32, fimm: u32, now: SimTime) -> bool {
        self.register_laggard_with_cooldown(cluster, fimm, now, self.params.laggard_cooldown_ns)
    }

    /// [`AutonomicState::register_laggard`] under an explicit debounce
    /// window. The SLA-aware path shrinks the window when the stalled
    /// tenant carries a tight p99 target (an interactive tenant's
    /// laggard is re-examined sooner) and stretches it when only batch
    /// traffic is hurt; untenanted arrays always pass the configured
    /// `laggard_cooldown_ns`, making this identical to
    /// [`AutonomicState::register_laggard`].
    pub fn register_laggard_with_cooldown(
        &mut self,
        cluster: u32,
        fimm: u32,
        now: SimTime,
        cooldown_ns: Nanos,
    ) -> bool {
        let key = (cluster, fimm);
        if let Some(&last) = self.last_laggard.get(&key) {
            if now.saturating_since(last) < cooldown_ns {
                return false;
            }
        }
        self.last_laggard.insert(key, now);
        self.stats.laggard_detections += 1;
        self.trace
            .with_scope(TraceScope::fimm(cluster, fimm))
            .emit(|| TraceEventKind::LaggardDetected);
        true
    }

    /// Debounced "all FIMMs are laggards" escalation: at most one per
    /// cluster per cooldown window. Relocation programs make *every*
    /// FIMM look briefly backlogged, so un-debounced escalation feeds on
    /// its own repair traffic.
    pub fn register_escalation(&mut self, cluster: u32, now: SimTime) -> bool {
        self.register_escalation_with_cooldown(cluster, now, self.params.escalation_cooldown_ns)
    }

    /// [`AutonomicState::register_escalation`] under an explicit
    /// debounce window — the SLA-aware counterpart, exactly as for
    /// [`AutonomicState::register_laggard_with_cooldown`].
    pub fn register_escalation_with_cooldown(
        &mut self,
        cluster: u32,
        now: SimTime,
        cooldown_ns: Nanos,
    ) -> bool {
        if let Some(&last) = self.last_escalation.get(&cluster) {
            if now.saturating_since(last) < cooldown_ns {
                return false;
            }
        }
        self.last_escalation.insert(cluster, now);
        self.stats.escalations += 1;
        self.trace
            .with_scope(TraceScope::cluster(cluster))
            .emit(|| TraceEventKind::Escalation);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> AutonomicState {
        AutonomicState::new(AutonomicParams::default(), 7)
    }

    #[test]
    fn cold_pick_prefers_lowest_utilization() {
        let mut s = state();
        let topo = Topology {
            switches: 1,
            clusters_per_switch: 4,
        };
        let src = ClusterId {
            switch: 0,
            index: 0,
        };
        let utils = [0.9, 0.08, 0.02, 0.05];
        let got = s
            .pick_cold_sibling(&topo, src, |g| utils[g as usize], |_| 0)
            .unwrap();
        assert_eq!(
            got,
            ClusterId {
                switch: 0,
                index: 2
            }
        );
    }

    #[test]
    fn cold_pick_rejects_busy_siblings() {
        let mut s = state();
        let topo = Topology {
            switches: 1,
            clusters_per_switch: 3,
        };
        let src = ClusterId {
            switch: 0,
            index: 0,
        };
        assert!(s.pick_cold_sibling(&topo, src, |_| 0.5, |_| 0).is_none());
        assert_eq!(s.stats.no_cold_target, 1);
    }

    #[test]
    fn cold_pick_never_leaves_switch() {
        let mut s = state();
        let topo = Topology {
            switches: 2,
            clusters_per_switch: 2,
        };
        let src = ClusterId {
            switch: 1,
            index: 0,
        };
        let got = s.pick_cold_sibling(&topo, src, |_| 0.0, |_| 0).unwrap();
        assert_eq!(got.switch, 1);
        assert_ne!(got, src);
    }

    #[test]
    fn claim_release_inflight() {
        let mut s = state();
        let claimed = s.claim_pages([1, 2, 3]);
        assert_eq!(claimed, vec![1, 2, 3]);
        let again = s.claim_pages([2, 3, 4]);
        assert_eq!(again, vec![4], "already-inflight pages filtered");
        assert_eq!(s.inflight_pages(), 4);
        s.release_pages(&claimed);
        assert_eq!(s.inflight_pages(), 1);
    }

    #[test]
    fn laggard_debounce() {
        let mut s = state();
        assert!(s.register_laggard(0, 1, SimTime::from_us(10)));
        assert!(!s.register_laggard(0, 1, SimTime::from_us(100)), "cooldown");
        assert!(
            s.register_laggard(0, 2, SimTime::from_us(100)),
            "other fimm"
        );
        assert!(s.register_laggard(0, 1, SimTime::from_us(400)));
        assert_eq!(s.stats.laggard_detections, 3);
    }

    #[test]
    fn explicit_cooldowns_scale_the_debounce() {
        let mut s = state();
        // Default laggard cooldown is 200us; a 50us window re-arms at
        // 70us where the default would still debounce.
        assert!(s.register_laggard_with_cooldown(0, 1, SimTime::from_us(10), 50_000));
        assert!(!s.register_laggard_with_cooldown(0, 1, SimTime::from_us(40), 50_000));
        assert!(s.register_laggard_with_cooldown(0, 1, SimTime::from_us(70), 50_000));
        assert!(s.register_escalation_with_cooldown(0, SimTime::from_us(10), 100_000));
        assert!(!s.register_escalation_with_cooldown(0, SimTime::from_us(100), 100_000));
        assert!(s.register_escalation_with_cooldown(0, SimTime::from_us(120), 100_000));
    }

    #[test]
    fn escalation_debounce_per_cluster() {
        let mut s = state();
        assert!(s.register_escalation(0, SimTime::from_us(10)));
        assert!(!s.register_escalation(0, SimTime::from_us(200)), "cooldown");
        assert!(
            s.register_escalation(1, SimTime::from_us(200)),
            "other cluster"
        );
        assert!(s.register_escalation(0, SimTime::from_ms(1)));
        assert_eq!(s.stats.escalations, 3);
    }

    #[test]
    fn cold_pick_spreads_over_equal_siblings() {
        let mut s = state();
        let topo = Topology {
            switches: 1,
            clusters_per_switch: 8,
        };
        let src = ClusterId {
            switch: 0,
            index: 0,
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(s.pick_cold_sibling(&topo, src, |_| 0.0, |_| 0).unwrap());
        }
        assert!(
            seen.len() >= 4,
            "equal-cold siblings should share load, got {seen:?}"
        );
    }

    #[test]
    fn cold_pick_prefers_least_worn_among_equals() {
        let mut s = state();
        let topo = Topology {
            switches: 1,
            clusters_per_switch: 4,
        };
        let src = ClusterId {
            switch: 0,
            index: 0,
        };
        // All equally cold; cluster 2 is the least worn.
        let wear = [100u64, 50, 5, 50];
        for _ in 0..8 {
            let got = s
                .pick_cold_sibling(&topo, src, |_| 0.0, |g| wear[g as usize])
                .unwrap();
            assert_eq!(
                got,
                ClusterId {
                    switch: 0,
                    index: 2
                }
            );
        }
    }

    #[test]
    fn cold_pick_deterministic_for_seed() {
        let topo = Topology {
            switches: 1,
            clusters_per_switch: 8,
        };
        let src = ClusterId {
            switch: 0,
            index: 0,
        };
        let mut a = AutonomicState::new(AutonomicParams::default(), 99);
        let mut b = AutonomicState::new(AutonomicParams::default(), 99);
        for _ in 0..16 {
            assert_eq!(
                a.pick_cold_sibling(&topo, src, |_| 0.0, |_| 0),
                b.pick_cold_sibling(&topo, src, |_| 0.0, |_| 0)
            );
        }
    }
}
