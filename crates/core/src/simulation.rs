//! The typed front door to the simulator.
//!
//! [`Simulation::builder()`] assembles a validated run: a
//! cross-field-checked [`ArrayConfig`] (rejected with a typed
//! [`ConfigError`] rather than a mid-run panic), a
//! [`ManagementMode`], optionally an event recorder ([`TraceConfig`]),
//! and — on tenant-enabled arrays — per-tenant workload bindings
//! ([`SimulationBuilder::bind_tenant`]) in place of one anonymous
//! trace. Running returns either a plain [`RunReport`] or a typed
//! [`VerifiedRun`] carrying the report, the harvested trace, and the
//! FTL integrity audit.
//!
//! # Example
//!
//! ```
//! use triplea_core::{IoOp, ManagementMode, Simulation, Trace, TraceRequest};
//! use triplea_ftl::LogicalPage;
//! use triplea_sim::trace::TraceConfig;
//! use triplea_sim::SimTime;
//!
//! let sim = Simulation::builder()
//!     .small_test()
//!     .mode(ManagementMode::Autonomic)
//!     .with_recorder(TraceConfig::all())
//!     .build()
//!     .expect("valid configuration");
//! let trace = Trace::new(vec![TraceRequest::new(SimTime::ZERO, IoOp::Read, LogicalPage(0), 1)]);
//! let run = sim.run_verified(&trace);
//! assert_eq!(run.report.completed(), 1);
//! assert!(run.integrity.is_ok());
//! let events = &run.trace.expect("recorder attached").events;
//! assert!(!events.is_empty());
//! ```

use triplea_sim::trace::TraceConfig;

use crate::array::{Array, VerifiedRun};
use crate::config::{ArrayConfig, ArrayConfigBuilder, ConfigError, ManagementMode};
use crate::metrics::RunReport;
use crate::request::Trace;
use crate::tenant::TenantId;

/// A fully assembled, validated simulation, ready to replay a
/// [`Trace`]. Built by [`SimulationBuilder`]; see the module docs.
#[derive(Debug)]
pub struct Simulation {
    array: Array,
    /// The blended per-tenant workload, when the builder bound any.
    bound: Option<Trace>,
}

impl Simulation {
    /// Starts a builder seeded with the paper-baseline configuration in
    /// [`ManagementMode::Autonomic`], no recorder, and no tenant
    /// bindings.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder {
            config: ArrayConfig::builder(),
            mode: ManagementMode::Autonomic,
            trace: None,
            bindings: Vec::new(),
        }
    }

    /// The validated configuration in force.
    pub fn config(&self) -> &ArrayConfig {
        self.array.config()
    }

    /// The management mode in force.
    pub fn mode(&self) -> ManagementMode {
        self.array.mode()
    }

    /// The blended trace assembled from the builder's
    /// [`bind_tenant`](SimulationBuilder::bind_tenant) calls: every
    /// bound stream re-stamped with its owner and merged in submission
    /// order. `None` when nothing was bound.
    pub fn bound_trace(&self) -> Option<&Trace> {
        self.bound.as_ref()
    }

    /// Replays the bound per-tenant workload to completion. Replays an
    /// empty trace when the builder bound nothing.
    pub fn run_bound(self) -> RunReport {
        let trace = self.bound.unwrap_or_default();
        self.array.run(&trace)
    }

    /// [`Simulation::run_bound`], returning the typed [`VerifiedRun`].
    pub fn run_bound_verified(self) -> VerifiedRun {
        let trace = self.bound.unwrap_or_default();
        self.array.run_verified(&trace)
    }

    /// Replays `trace` to completion. See [`Array::run`].
    pub fn run(self, trace: &Trace) -> RunReport {
        self.array.run(trace)
    }

    /// Replays `trace` and returns the typed [`VerifiedRun`]: report,
    /// harvested trace (when a recorder was attached), and the FTL
    /// metadata integrity audit. See [`Array::run_verified`].
    pub fn run_verified(self, trace: &Trace) -> VerifiedRun {
        self.array.run_verified(trace)
    }
}

/// Builder for [`Simulation`]; the only construction path that
/// validates the configuration before any hardware is assembled.
#[derive(Clone, Debug)]
pub struct SimulationBuilder {
    config: ArrayConfigBuilder,
    mode: ManagementMode,
    trace: Option<TraceConfig>,
    /// Per-tenant workload streams, blended at build time.
    bindings: Vec<(TenantId, Trace)>,
}

impl SimulationBuilder {
    /// Replaces the configuration with `cfg` (still validated at
    /// [`SimulationBuilder::build`] time).
    pub fn config(mut self, cfg: ArrayConfig) -> Self {
        self.config = ArrayConfigBuilder::from_base(cfg);
        self
    }

    /// Re-seeds the configuration from the small CI-friendly base
    /// ([`ArrayConfig::small_test`]).
    pub fn small_test(mut self) -> Self {
        self.config = ArrayConfig::small_builder();
        self
    }

    /// Applies typed configuration edits through the
    /// [`ArrayConfigBuilder`].
    pub fn configure(mut self, f: impl FnOnce(ArrayConfigBuilder) -> ArrayConfigBuilder) -> Self {
        self.config = f(self.config);
        self
    }

    /// Sets the management mode.
    pub fn mode(mut self, mode: ManagementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs the array on `n` worker threads via the conservative
    /// sharded executor (one shard per PCI-E switch domain plus a root
    /// shard). Results are deterministic and identical for every `n`;
    /// configurations the partition cannot express (faults, tenants,
    /// hot spares, a mapping cache, one switch) silently fall back to
    /// the serial engine. `n = 0` is rejected at
    /// [`build`](SimulationBuilder::build) time with
    /// [`ConfigError::ZeroWorkers`].
    pub fn workers(mut self, n: u32) -> Self {
        self.config = self.config.workers(n);
        self
    }

    /// Attaches an event recorder to the built array; the run's
    /// [`VerifiedRun::trace`] will then carry the harvested events and
    /// metrics. See [`Array::with_recorder`].
    pub fn with_recorder(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Promotes this builder into a [`FederationBuilder`](crate::FederationBuilder)
    /// over `arrays` member arrays, carrying the configuration, mode,
    /// and recorder accumulated so far. The default volume stripes
    /// (unreplicated) across all members; override with
    /// [`FederationBuilder::volume`](crate::FederationBuilder::volume).
    ///
    /// Tenant bindings do not carry over — a federation replays one
    /// volume-level trace (whose requests may still be tenant-stamped).
    pub fn with_federation(self, arrays: u32) -> crate::FederationBuilder {
        crate::FederationBuilder {
            base: self.config,
            mode: self.mode,
            trace: self.trace,
            arrays,
            volume: crate::VolumeSpec::striped(arrays),
            policy: crate::LaggardPolicy::default(),
            fault_overrides: Vec::new(),
        }
    }

    /// Binds `trace` to `tenant`: every request in the stream is
    /// re-stamped as owned by that tenant, and at
    /// [`build`](SimulationBuilder::build) time all bound streams are
    /// merged into one submission-ordered workload, replayed with
    /// [`Simulation::run_bound`]. Streams tied at the same timestamp
    /// keep binding order (the merge sort is stable), so blends are
    /// deterministic. Binding the same tenant twice concatenates the
    /// streams.
    pub fn bind_tenant(mut self, tenant: TenantId, trace: Trace) -> Self {
        self.bindings.push((tenant, trace));
        self
    }

    /// Validates the configuration and assembles the array.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the cross-field validation
    /// finds — including [`ConfigError::UnboundTenant`] when a
    /// [`bind_tenant`](SimulationBuilder::bind_tenant) call names a
    /// tenant outside the configured table; nothing is constructed on
    /// failure.
    pub fn build(self) -> Result<Simulation, ConfigError> {
        let cfg = self.config.build()?;
        let tenants = cfg.tenants.len();
        for (tenant, _) in &self.bindings {
            if tenant.index() >= tenants {
                return Err(ConfigError::UnboundTenant {
                    tenant: tenant.0,
                    tenants,
                });
            }
        }
        let bound = if self.bindings.is_empty() {
            None
        } else {
            let requests = self
                .bindings
                .into_iter()
                .flat_map(|(tenant, trace)| {
                    trace
                        .into_requests()
                        .into_iter()
                        .map(move |r| r.owned_by(tenant))
                })
                .collect::<Vec<_>>();
            Some(Trace::new(requests))
        };
        let mut array = Array::new(cfg, self.mode);
        if let Some(tc) = self.trace {
            array = array.with_recorder(tc);
        }
        Ok(Simulation { array, bound })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoOp, TraceRequest};
    use triplea_ftl::LogicalPage;
    use triplea_sim::SimTime;

    fn one_read() -> Trace {
        Trace::new(vec![TraceRequest::new(
            SimTime::ZERO,
            IoOp::Read,
            LogicalPage(0),
            1,
        )])
    }

    #[test]
    fn builder_defaults_to_autonomic_baseline() {
        let sim = Simulation::builder().build().expect("baseline valid");
        assert_eq!(sim.mode(), ManagementMode::Autonomic);
        assert_eq!(sim.config(), &ArrayConfig::paper_baseline());
    }

    #[test]
    fn builder_rejects_invalid_configuration() {
        let err = Simulation::builder()
            .configure(|c| c.fimms_per_cluster(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ZeroDimension { .. }));
    }

    #[test]
    fn untraced_run_has_no_trace_and_clean_integrity() {
        let run = Simulation::builder()
            .small_test()
            .mode(ManagementMode::NonAutonomic)
            .build()
            .unwrap()
            .run_verified(&one_read());
        assert_eq!(run.report.completed(), 1);
        assert!(run.trace.is_none());
        assert!(run.integrity.is_ok());
    }

    #[test]
    fn traced_run_harvests_lifecycle_events_and_metrics() {
        let run = Simulation::builder()
            .small_test()
            .with_recorder(TraceConfig::all())
            .build()
            .unwrap()
            .run_verified(&one_read());
        let trace = run.trace.expect("recorder attached");
        let kinds: Vec<&str> = trace.events.iter().map(|e| e.kind.name()).collect();
        assert!(kinds.contains(&"submit"), "{kinds:?}");
        assert!(kinds.contains(&"dispatch"));
        assert!(kinds.contains(&"bus_acquire"));
        assert!(kinds.contains(&"flash_start"));
        assert!(kinds.contains(&"link_tx"));
        assert!(kinds.contains(&"complete"));
        assert!(trace.metrics.get("array.latency").is_some());
        assert!(trace
            .metrics
            .get("cluster.0.fimm.0.queue_depth")
            .is_some());
    }

    #[test]
    fn recorder_does_not_perturb_the_simulation() {
        let trace = (0..400)
            .map(|i| {
                TraceRequest::new(SimTime::from_nanos(i * 900), IoOp::Read, LogicalPage(i % 512), 1)
            })
            .collect();
        let plain = Simulation::builder()
            .small_test()
            .build()
            .unwrap()
            .run_verified(&trace);
        let traced = Simulation::builder()
            .small_test()
            .with_recorder(TraceConfig::all())
            .build()
            .unwrap()
            .run_verified(&trace);
        assert_eq!(plain.report, traced.report, "tracing must be zero-impact");
    }

    #[test]
    fn bound_workloads_blend_and_attribute_per_tenant() {
        use crate::tenant::TenantSpec;
        let stream = |n: u64, offset: u64| -> Trace {
            (0..n)
                .map(|i| {
                    TraceRequest::new(
                        SimTime::from_nanos(offset + i * 700),
                        IoOp::Read,
                        LogicalPage(i % 256),
                        1,
                    )
                })
                .collect()
        };
        let sim = Simulation::builder()
            .small_test()
            .configure(|c| c.with_tenants([TenantSpec::interactive(), TenantSpec::batch()]))
            .bind_tenant(TenantId(0), stream(120, 0))
            .bind_tenant(TenantId(1), stream(80, 350))
            .build()
            .unwrap();
        let blended = sim.bound_trace().expect("bindings present");
        assert_eq!(blended.len(), 200);
        assert!(blended.requests().windows(2).all(|w| w[0].at <= w[1].at));
        let report = sim.run_bound();
        assert_eq!(report.completed(), 200);
        let ts = report.tenant_stats();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].completed, 120);
        assert_eq!(ts[1].completed, 80);
    }

    #[test]
    fn binding_an_undeclared_tenant_is_a_config_error() {
        use crate::tenant::TenantSpec;
        let err = Simulation::builder()
            .small_test()
            .configure(|c| c.with_tenants([TenantSpec::interactive()]))
            .bind_tenant(TenantId(3), one_read())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnboundTenant {
                tenant: 3,
                tenants: 1
            }
        );
        assert!(err.to_string().contains("tenant.3"), "{err}");
    }

    #[test]
    fn worker_counts_agree_and_zero_is_rejected() {
        let trace: Trace = (0..300)
            .map(|i| {
                TraceRequest::new(
                    SimTime::from_nanos(i * 800),
                    IoOp::Read,
                    LogicalPage((i * 131) % 4096),
                    1,
                )
            })
            .collect();
        let serial = Simulation::builder()
            .small_test()
            .build()
            .unwrap()
            .run_verified(&trace);
        let one = Simulation::builder()
            .small_test()
            .workers(1)
            .build()
            .unwrap()
            .run_verified(&trace);
        let eight = Simulation::builder()
            .small_test()
            .workers(8)
            .build()
            .unwrap()
            .run_verified(&trace);
        assert_eq!(one.report, eight.report, "results must not depend on n");
        assert_eq!(serial.report.completed(), one.report.completed());
        assert!(one.integrity.is_ok());

        let err = Simulation::builder().workers(0).build().unwrap_err();
        assert!(matches!(err, ConfigError::ZeroWorkers));
    }

    #[test]
    fn unbound_builder_runs_an_empty_bound_trace() {
        let sim = Simulation::builder().small_test().build().unwrap();
        assert!(sim.bound_trace().is_none());
        assert_eq!(sim.run_bound().completed(), 0);
    }

    #[test]
    fn trace_config_categories_gate_harvested_events() {
        let mut tc = TraceConfig::all();
        tc.lifecycle = false;
        let run = Simulation::builder()
            .small_test()
            .with_recorder(tc)
            .build()
            .unwrap()
            .run_verified(&one_read());
        let trace = run.trace.unwrap();
        assert!(trace.events.iter().all(|e| e.kind.name() != "submit"));
        assert!(trace.events.iter().any(|e| e.kind.name() == "flash_start"));
    }
}
