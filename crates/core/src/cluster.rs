//! Per-cluster simulation state: endpoint, shared bus, FIMMs, and the
//! endpoint write-back buffer.

use std::collections::VecDeque;

use triplea_fimm::{Fimm, OnfiBus};
use triplea_pcie::{ClusterId, Endpoint};
use triplea_sim::stats::TimeSeries;
use triplea_sim::SimTime;

use crate::config::ArrayConfig;

/// One cluster of the array: a PCI-E endpoint fronting `fimms_per_cluster`
/// FIMMs over a shared ONFi bus (paper §3.2, Figure 5).
#[derive(Clone, Debug)]
pub(crate) struct ClusterState {
    pub id: ClusterId,
    pub ep: Endpoint,
    pub bus: OnfiBus,
    pub fimms: Vec<Fimm>,
    /// Write-back buffer capacity in pages.
    pub wbuf_cap: usize,
    /// Pages currently buffered awaiting program completion.
    pub wbuf_used: usize,
    /// Write requests parked for buffer space (request ids, FIFO).
    pub wbuf_waiters: VecDeque<u32>,
    /// Read pages issued to each FIMM and not yet back (Eq. 3 input).
    pub pending_read_pages: Vec<u64>,
    /// Per-FIMM read-backlog samples, populated only while a trace
    /// recorder is attached (exported as `cluster.N.fimm.M.queue_depth`).
    pub qdepth: Vec<TimeSeries>,
    /// Program pages outstanding per FIMM (writes, reshaping, GC).
    pub pending_prog_pages: Vec<u64>,
    /// Round-robin cursor for spreading reshaped/migrated pages.
    pub spread_rr: u32,
    /// Requests routed to this cluster (census for Table 1).
    pub served: u64,
    /// Pages relocated *into* this cluster (migration/reshape targets).
    pub relocs_in: u64,
}

impl ClusterState {
    pub fn new(cfg: &ArrayConfig, id: ClusterId) -> Self {
        let n = cfg.shape.fimms_per_cluster as usize;
        ClusterState {
            id,
            ep: Endpoint::new(&cfg.pcie),
            bus: OnfiBus::new(cfg.flash_timing.onfi),
            fimms: (0..n)
                .map(|_| {
                    Fimm::new(
                        cfg.shape.packages_per_fimm,
                        cfg.shape.flash,
                        cfg.flash_timing,
                    )
                })
                .collect(),
            wbuf_cap: cfg.write_buffer_pages,
            wbuf_used: 0,
            wbuf_waiters: VecDeque::new(),
            pending_read_pages: vec![0; n],
            qdepth: vec![TimeSeries::new(); n],
            pending_prog_pages: vec![0; n],
            spread_rr: 0,
            served: 0,
            relocs_in: 0,
        }
    }

    /// Free write-buffer pages.
    pub fn wbuf_free(&self) -> usize {
        self.wbuf_cap - self.wbuf_used
    }

    /// Total outstanding flash pages on one FIMM (reads + programs).
    pub fn fimm_backlog_pages(&self, fimm: u32) -> u64 {
        self.pending_read_pages[fimm as usize] + self.pending_prog_pages[fimm as usize]
    }

    /// Total erase operations performed on this cluster's flash — the
    /// §6.7 global wear view the management module keeps per cluster.
    pub fn total_erases(&self) -> u64 {
        self.fimms
            .iter()
            .map(|f| f.wear_report().total_erases)
            .sum()
    }

    /// Outstanding *host read* pages on one FIMM — the "stalled I/O
    /// requests" of the paper's Eq. 3 and queue examination. Background
    /// relocation programs are excluded so the detectors react to host
    /// pressure, not to their own repair traffic.
    pub fn fimm_read_backlog_pages(&self, fimm: u32) -> u64 {
        self.pending_read_pages[fimm as usize]
    }

    /// The FIMM with the smallest outstanding backlog, excluding
    /// `exclude` and any module that is dead at `now` — the destination
    /// for reshaped pages and redirected writes (paper §4.2: "adjacent
    /// FIMMs within the same cluster").
    pub fn least_loaded_fimm(&mut self, now: SimTime, exclude: Option<u32>) -> u32 {
        let n = self.fimms.len() as u32;
        let start = self.spread_rr;
        self.spread_rr = (self.spread_rr + 1) % n;
        let mut best = None;
        for off in 0..n {
            let f = (start + off) % n;
            if Some(f) == exclude || self.fimms[f as usize].is_dead_at(now) {
                continue;
            }
            let load = self.fimm_backlog_pages(f);
            match best {
                None => best = Some((load, f)),
                Some((bl, _)) if load < bl => best = Some((load, f)),
                _ => {}
            }
        }
        best.map(|(_, f)| f).unwrap_or(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterState {
        ClusterState::new(&ArrayConfig::small_test(), ClusterId::default())
    }

    #[test]
    fn construction_matches_config() {
        let c = cluster();
        let cfg = ArrayConfig::small_test();
        assert_eq!(c.fimms.len(), cfg.shape.fimms_per_cluster as usize);
        assert_eq!(c.wbuf_free(), cfg.write_buffer_pages);
        assert_eq!(c.pending_read_pages.len(), c.fimms.len());
    }

    #[test]
    fn least_loaded_prefers_idle_fimm() {
        let mut c = cluster();
        c.pending_read_pages[0] = 10;
        c.pending_prog_pages[1] = 1;
        // fimm 1 has load 1, fimm 0 has 10
        let picked = c.least_loaded_fimm(SimTime::ZERO, None);
        assert_eq!(picked, 1);
    }

    #[test]
    fn least_loaded_respects_exclusion() {
        let mut c = cluster();
        c.pending_read_pages[1] = 100;
        for _ in 0..8 {
            let f = c.least_loaded_fimm(SimTime::ZERO, Some(0));
            assert_ne!(f, 0, "excluded FIMM must not be picked");
        }
    }

    #[test]
    fn round_robin_breaks_ties() {
        let mut c = cluster();
        let a = c.least_loaded_fimm(SimTime::ZERO, None);
        let b = c.least_loaded_fimm(SimTime::ZERO, None);
        assert_ne!(a, b, "equal loads rotate across FIMMs");
    }

    #[test]
    fn least_loaded_skips_dead_fimms() {
        use triplea_fimm::FimmFaultKind;
        let mut c = cluster();
        let dead = 0;
        c.fimms[dead].schedule_fault(SimTime::from_us(1), FimmFaultKind::Dead);
        // Make the dead module the least-loaded on paper.
        for f in 1..c.fimms.len() {
            c.pending_read_pages[f] = 10;
        }
        for _ in 0..8 {
            let f = c.least_loaded_fimm(SimTime::from_us(1), None);
            assert_ne!(f as usize, dead, "picked dead FIMM {f}");
        }
        // Before the fault fires it is still eligible.
        assert_eq!(c.least_loaded_fimm(SimTime::ZERO, None), 0);
    }

    #[test]
    fn read_backlog_excludes_programs() {
        let mut c = cluster();
        c.pending_read_pages[0] = 3;
        c.pending_prog_pages[0] = 9;
        assert_eq!(c.fimm_read_backlog_pages(0), 3);
        assert_eq!(c.fimm_backlog_pages(0), 12);
    }
}
