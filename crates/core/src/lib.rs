//! The Triple-A autonomic all-flash array (paper §3–§4) and its
//! non-autonomic baseline.
//!
//! This crate assembles the substrates — [`triplea_flash`] NAND packages,
//! [`triplea_fimm`] FIMMs and the shared ONFi bus, [`triplea_pcie`]
//! fabric, [`triplea_ftl`] host-side flash software — into a simulated
//! all-flash array with:
//!
//! * a full request pipeline with per-stage latency attribution
//!   (RC/switch queue stalls, PCI-E link waits, ONFi bus waits ⇒ *link
//!   contention*, die waits and write-buffer waits ⇒ *storage
//!   contention*);
//! * the **autonomic management module**: hot-cluster detection (Eq. 1),
//!   cold-cluster selection (Eq. 2), inter-cluster data migration with
//!   shadow cloning, laggard detection (Eq. 3 and queue examination),
//!   intra-cluster data-layout reshaping, and write redirection;
//! * deterministic replay: equal configs + traces ⇒ identical reports.
//!
//! # Example
//!
//! ```
//! use triplea_core::{Array, ArrayConfig, IoOp, ManagementMode, Trace, TraceRequest};
//! use triplea_ftl::LogicalPage;
//! use triplea_sim::SimTime;
//!
//! // Hammer one cluster with reads and let Triple-A spread the load.
//! let cfg = ArrayConfig::small_test();
//! let trace: Trace = (0..500)
//!     .map(|i| {
//!         TraceRequest::new(
//!             SimTime::from_us(i / 4),
//!             IoOp::Read,
//!             LogicalPage((i % 64) * 8),
//!             1,
//!         )
//!     })
//!     .collect();
//! let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
//! let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
//! assert_eq!(base.completed(), aaa.completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod autonomic;
mod cluster;
mod config;
mod federation;
mod metrics;
mod request;
mod shard;
mod simulation;
mod tenant;

pub use array::{Array, ArrayRunner, VerifiedRun};
pub use federation::{
    ChunkPlacement, Federation, FederationBuilder, FederationConfig, FederationError,
    FederationReport, FederationRun, FederationStats, LaggardPolicy, VolumeMapper, VolumeSpec,
    MAX_ARRAYS,
};
pub use autonomic::{AutonomicState, AutonomicStats};
pub use config::{
    ArrayConfig, ArrayConfigBuilder, AutonomicParams, ConfigError, FaultConfig, FaultScheduleFull,
    FimmFaultEvent, LaggardStrategy, ManagementMode, PowerLossEvent, MAX_FIMM_FAULT_EVENTS,
    MAX_TENANTS,
};
pub use metrics::{FaultStats, RecoveryStats, RunReport};
pub use request::{Breakdown, IoOp, Trace, TraceRequest};
pub use simulation::{Simulation, SimulationBuilder};
pub use tenant::{TenantConfig, TenantId, TenantSpec, TenantStats, WeightedArbiter};

// Re-export the shape/address vocabulary users need alongside `Array`,
// plus the substrate-level fault types `FaultConfig` is built from and
// the tracing vocabulary `Simulation::with_recorder` consumes.
pub use triplea_fimm::FimmFaultKind;
pub use triplea_flash::FlashFaultProfile;
pub use triplea_ftl::{ArrayShape, GcPolicy, IntegrityError, LogicalPage, PhysLoc};
pub use triplea_pcie::{ClusterId, PcieFaultProfile, Topology};
pub use triplea_sim::trace::{
    Metric, MetricId, MetricRegistry, RunTrace, TraceConfig, TraceEvent, TraceEventKind,
};
