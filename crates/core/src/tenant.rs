//! Multi-tenant front door: per-tenant submission lanes, weighted-fair
//! arbitration, and admission control at the root complex.
//!
//! The paper's premise is holding a latency SLA *for someone* — yet a
//! bare trace drives the array as one anonymous stream. This module
//! gives every request an owner. A [`TenantId`] names an NVMe-style
//! submission/completion queue pair at the root complex; a
//! [`TenantSpec`] states the tenant's service contract (weighted-fair
//! share, p99 latency target, admission queue depth); and
//! [`WeightedArbiter`] is the dispatch-side scheduler that decides,
//! every time a root-complex credit frees up, whose parked request is
//! admitted next.
//!
//! # Arbitration
//!
//! The arbiter runs start-time virtual-clock weighted fair queuing in
//! pure integer arithmetic so runs stay byte-deterministic:
//!
//! * each lane carries a virtual finish time `vtime`; dispatching from
//!   a lane advances it by `VT_SCALE / weight`, so a weight-4 lane's
//!   clock moves four times slower than a weight-1 lane's;
//! * the next grant goes to the eligible lane (non-empty, below its
//!   `qd_limit`) with the smallest `vtime`, ties broken by tenant id;
//! * a lane that wakes from idle is clamped forward to the global
//!   virtual clock, so sleeping never banks credit.
//!
//! Admission control is the `qd_limit`: a tenant with `k` requests
//! already inside the array cannot occupy another root-complex credit
//! until one completes, no matter how empty the device is — exactly an
//! NVMe submission queue of depth `k`.
//!
//! The zero-tenant configuration ([`TenantConfig::default`]) bypasses
//! all of this: requests flow through the root-complex credit queue
//! exactly as before, byte-for-byte.

use std::collections::VecDeque;

use triplea_sim::Nanos;

/// Identifies one tenant: an index into the configured
/// [`TenantConfig`] spec table (`0..n`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The anonymous tenant. Traces built before the tenant model (and
    /// any constructor that doesn't name an owner) carry this id; on a
    /// tenant-enabled array it is simply tenant 0.
    pub const DEFAULT: TenantId = TenantId(0);

    /// The id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant.{}", self.0)
    }
}

/// One tenant's service contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TenantSpec {
    /// Weighted-fair share of root-complex dispatch slots (≥ 1).
    pub weight: u32,
    /// p99 end-to-end latency target in nanoseconds (≥ 1). Completions
    /// above it count as SLA violations, and the autonomic layer treats
    /// laggards that stall this tenant with urgency proportional to how
    /// tight the target is.
    pub sla_p99_ns: Nanos,
    /// Admission-control queue depth: maximum requests this tenant may
    /// have in flight past the root complex (≥ 1).
    pub qd_limit: usize,
}

impl TenantSpec {
    /// A latency-sensitive foreground tenant: high share, tight p99
    /// (200 µs), moderate queue depth.
    pub fn interactive() -> Self {
        TenantSpec {
            weight: 8,
            sla_p99_ns: 200_000,
            qd_limit: 64,
        }
    }

    /// A throughput-oriented background tenant: low share, loose p99
    /// (5 ms), deep queue.
    pub fn batch() -> Self {
        TenantSpec {
            weight: 1,
            sla_p99_ns: 5_000_000,
            qd_limit: 256,
        }
    }
}

/// The array's tenant table: one [`TenantSpec`] per tenant, indexed by
/// [`TenantId`]. Empty (the default) means the array runs untenanted —
/// the front door is bypassed entirely and behavior is identical to a
/// build without this module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantConfig {
    specs: Vec<TenantSpec>,
}

impl TenantConfig {
    /// The untenanted table.
    pub fn none() -> Self {
        TenantConfig::default()
    }

    /// A table with the given specs; tenant `i` gets `specs[i]`.
    pub fn new(specs: Vec<TenantSpec>) -> Self {
        TenantConfig { specs }
    }

    /// `true` when at least one tenant is configured (the front door is
    /// in force).
    pub fn is_active(&self) -> bool {
        !self.specs.is_empty()
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when no tenants are configured.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec table.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// The spec for `t`, if configured.
    pub fn get(&self, t: TenantId) -> Option<&TenantSpec> {
        self.specs.get(t.index())
    }
}

impl FromIterator<TenantSpec> for TenantConfig {
    fn from_iter<T: IntoIterator<Item = TenantSpec>>(iter: T) -> Self {
        TenantConfig::new(iter.into_iter().collect())
    }
}

/// Virtual-time scale: one dispatch from a weight-`w` lane advances its
/// clock by `VT_SCALE / w`. Large enough that integer division keeps
/// distinct weights distinct up to weights of a million.
const VT_SCALE: u64 = 1 << 20;

/// One tenant's submission lane inside the arbiter.
#[derive(Clone, Debug)]
struct Lane {
    weight: u64,
    qd_limit: usize,
    /// Virtual finish time of the lane's next dispatch.
    vtime: u64,
    /// Parked request ids, FIFO within the lane.
    waiting: VecDeque<u32>,
    /// Requests admitted past the root complex and not yet completed.
    inflight: usize,
}

/// Weighted-fair dispatch arbiter over per-tenant lanes; see the module
/// docs for the discipline. Deterministic: grants are a pure function
/// of the enqueue/complete call sequence.
#[derive(Clone, Debug)]
pub struct WeightedArbiter {
    lanes: Vec<Lane>,
    /// Virtual clock of the most recent grant; idle lanes wake no
    /// earlier than this.
    global_vtime: u64,
}

impl WeightedArbiter {
    /// Builds lanes from the spec table.
    ///
    /// # Panics
    ///
    /// Panics if any weight or `qd_limit` is zero (the config validator
    /// rejects these before an array is built).
    pub fn new(specs: &[TenantSpec]) -> Self {
        let lanes = specs
            .iter()
            .map(|s| {
                assert!(s.weight >= 1, "tenant weight must be >= 1");
                assert!(s.qd_limit >= 1, "tenant qd_limit must be >= 1");
                Lane {
                    weight: s.weight as u64,
                    qd_limit: s.qd_limit,
                    vtime: 0,
                    waiting: VecDeque::new(),
                    inflight: 0,
                }
            })
            .collect();
        WeightedArbiter {
            lanes,
            global_vtime: 0,
        }
    }

    /// Number of lanes.
    pub fn tenants(&self) -> usize {
        self.lanes.len()
    }

    /// Parks request `req` on tenant `t`'s submission lane.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a configured tenant.
    pub fn enqueue(&mut self, t: TenantId, req: u32) {
        let lane = &mut self.lanes[t.index()];
        if lane.waiting.is_empty() {
            // Waking from idle: no banked credit for time spent asleep.
            lane.vtime = lane.vtime.max(self.global_vtime);
        }
        lane.waiting.push_back(req);
    }

    /// Picks the next request to admit: the eligible lane (non-empty
    /// and below its `qd_limit`) with the smallest virtual time, ties
    /// broken by the lower tenant id. Returns `None` when no lane is
    /// eligible. The granted request counts as in flight until
    /// [`WeightedArbiter::complete`].
    pub fn grant(&mut self) -> Option<(TenantId, u32)> {
        let mut best: Option<usize> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if lane.waiting.is_empty() || lane.inflight >= lane.qd_limit {
                continue;
            }
            match best {
                Some(b) if self.lanes[b].vtime <= lane.vtime => {}
                _ => best = Some(i),
            }
        }
        let i = best?;
        let lane = &mut self.lanes[i];
        self.global_vtime = lane.vtime;
        lane.vtime += VT_SCALE / lane.weight;
        lane.inflight += 1;
        let req = lane.waiting.pop_front().expect("eligible lane non-empty");
        Some((TenantId(i as u32), req))
    }

    /// Records completion of one of `t`'s in-flight requests, freeing
    /// an admission slot.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `t` has nothing in flight.
    pub fn complete(&mut self, t: TenantId) {
        let lane = &mut self.lanes[t.index()];
        debug_assert!(lane.inflight > 0, "complete without grant");
        lane.inflight = lane.inflight.saturating_sub(1);
    }

    /// Requests currently in flight for `t`.
    pub fn inflight(&self, t: TenantId) -> usize {
        self.lanes[t.index()].inflight
    }

    /// Requests parked on `t`'s lane.
    pub fn waiting(&self, t: TenantId) -> usize {
        self.lanes[t.index()].waiting.len()
    }

    /// Total parked requests across all lanes.
    pub fn total_waiting(&self) -> usize {
        self.lanes.iter().map(|l| l.waiting.len()).sum()
    }

    /// All parked request ids, lane-major (tenant 0's FIFO first) — the
    /// queue-examination laggard detector walks these exactly as it
    /// walks the root complex's own waiter list.
    pub fn waiter_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.lanes.iter().flat_map(|l| l.waiting.iter().copied())
    }

    /// Discards every parked and in-flight entry and rewinds the
    /// virtual clocks — a power cycle of the front door. Lane
    /// *contents* are volatile; the spec table is not.
    pub fn power_cycle(&mut self) {
        for lane in &mut self.lanes {
            lane.waiting.clear();
            lane.inflight = 0;
            lane.vtime = 0;
        }
        self.global_vtime = 0;
    }
}

/// Per-tenant results of one run; `RunReport::tenant_stats` carries one
/// entry per configured tenant, in tenant-id order. Empty on
/// untenanted runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TenantStats {
    /// The tenant's id (its index in the configured table).
    pub tenant: u32,
    /// The configured weighted-fair share.
    pub weight: u32,
    /// The configured p99 target, nanoseconds.
    pub sla_p99_ns: u64,
    /// Requests completed for this tenant.
    pub completed: u64,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Completions whose end-to-end latency exceeded `sla_p99_ns`.
    pub violations: u64,
    /// Median end-to-end latency, nanoseconds.
    pub p50_ns: u64,
    /// p99 end-to-end latency, nanoseconds.
    pub p99_ns: u64,
    /// p99 read latency, nanoseconds.
    pub read_p99_ns: u64,
    /// p99 write latency, nanoseconds.
    pub write_p99_ns: u64,
    /// Mean end-to-end latency, nanoseconds (rounded).
    pub mean_ns: u64,
    /// Worst end-to-end latency, nanoseconds.
    pub max_ns: u64,
}

impl TenantStats {
    /// Fraction of completions that violated the p99 target, in
    /// `[0, 1]`.
    pub fn violation_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.violations as f64 / self.completed as f64
        }
    }

    /// `true` when more than 1 % of completions exceeded the target —
    /// i.e. the observed p99 is above `sla_p99_ns`.
    pub fn sla_violated(&self) -> bool {
        self.violations * 100 > self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(weights: &[u32]) -> Vec<TenantSpec> {
        weights
            .iter()
            .map(|&w| TenantSpec {
                weight: w,
                sla_p99_ns: 1_000_000,
                qd_limit: 8,
            })
            .collect()
    }

    /// Keeps every lane saturated and counts grants per tenant.
    fn grant_shares(weights: &[u32], rounds: usize) -> Vec<u64> {
        let mut arb = WeightedArbiter::new(&specs(weights));
        let mut counts = vec![0u64; weights.len()];
        let mut next_id = 0u32;
        for t in 0..weights.len() {
            for _ in 0..4 {
                arb.enqueue(TenantId(t as u32), next_id);
                next_id += 1;
            }
        }
        for _ in 0..rounds {
            let (t, _) = arb.grant().expect("lanes saturated");
            counts[t.index()] += 1;
            arb.complete(t);
            arb.enqueue(t, next_id);
            next_id += 1;
        }
        counts
    }

    #[test]
    fn equal_weights_share_equally() {
        let counts = grant_shares(&[1, 1, 1, 1], 4_000);
        for &c in &counts {
            assert_eq!(c, 1_000);
        }
    }

    #[test]
    fn grants_track_weight_ratios() {
        let counts = grant_shares(&[1, 2, 4], 7_000);
        assert_eq!(counts.iter().sum::<u64>(), 7_000);
        assert!((counts[1] as f64 / counts[0] as f64 - 2.0).abs() < 0.05);
        assert!((counts[2] as f64 / counts[0] as f64 - 4.0).abs() < 0.05);
    }

    #[test]
    fn qd_limit_caps_inflight() {
        let mut arb = WeightedArbiter::new(&[TenantSpec {
            weight: 1,
            sla_p99_ns: 1,
            qd_limit: 2,
        }]);
        for i in 0..5 {
            arb.enqueue(TenantId(0), i);
        }
        assert!(arb.grant().is_some());
        assert!(arb.grant().is_some());
        assert!(arb.grant().is_none(), "qd_limit reached");
        assert_eq!(arb.inflight(TenantId(0)), 2);
        assert_eq!(arb.waiting(TenantId(0)), 3);
        arb.complete(TenantId(0));
        assert!(arb.grant().is_some(), "slot freed");
    }

    #[test]
    fn one_blocked_lane_does_not_starve_the_other() {
        let mut arb = WeightedArbiter::new(&specs(&[100, 1]));
        // Tenant 0 has huge weight but is at its qd_limit.
        for i in 0..8 {
            arb.enqueue(TenantId(0), i);
        }
        for _ in 0..8 {
            assert_eq!(arb.grant().unwrap().0, TenantId(0));
        }
        arb.enqueue(TenantId(0), 100);
        arb.enqueue(TenantId(1), 200);
        let (t, req) = arb.grant().expect("tenant 1 must proceed");
        assert_eq!((t, req), (TenantId(1), 200));
    }

    #[test]
    fn waking_lane_gets_no_banked_credit() {
        let mut arb = WeightedArbiter::new(&specs(&[1, 1]));
        arb.enqueue(TenantId(0), 0);
        for i in 1..100 {
            arb.enqueue(TenantId(0), i);
            let (t, _) = arb.grant().unwrap();
            arb.complete(t);
        }
        // Tenant 1 slept through 100 grants; it must not now receive
        // 100 back-to-back grants.
        arb.enqueue(TenantId(1), 500);
        arb.enqueue(TenantId(1), 501);
        arb.enqueue(TenantId(0), 502);
        let first = arb.grant().unwrap().0;
        arb.complete(first);
        let second = arb.grant().unwrap().0;
        assert_ne!(first, second, "grants must alternate, not bank credit");
    }

    #[test]
    fn ties_break_by_tenant_id() {
        let mut arb = WeightedArbiter::new(&specs(&[1, 1]));
        arb.enqueue(TenantId(1), 11);
        arb.enqueue(TenantId(0), 10);
        assert_eq!(arb.grant().unwrap(), (TenantId(0), 10));
    }

    #[test]
    fn power_cycle_clears_lanes() {
        let mut arb = WeightedArbiter::new(&specs(&[1]));
        arb.enqueue(TenantId(0), 1);
        arb.enqueue(TenantId(0), 2);
        arb.grant();
        arb.power_cycle();
        assert_eq!(arb.total_waiting(), 0);
        assert_eq!(arb.inflight(TenantId(0)), 0);
        assert!(arb.grant().is_none());
    }

    #[test]
    fn waiter_ids_walk_lanes_in_order() {
        let mut arb = WeightedArbiter::new(&specs(&[1, 1]));
        arb.enqueue(TenantId(1), 20);
        arb.enqueue(TenantId(0), 10);
        arb.enqueue(TenantId(0), 11);
        let ids: Vec<u32> = arb.waiter_ids().collect();
        assert_eq!(ids, vec![10, 11, 20]);
    }

    #[test]
    fn tenant_config_basics() {
        assert!(!TenantConfig::none().is_active());
        assert!(TenantConfig::none().is_empty());
        let tc: TenantConfig = [TenantSpec::interactive(), TenantSpec::batch()]
            .into_iter()
            .collect();
        assert!(tc.is_active());
        assert_eq!(tc.len(), 2);
        assert_eq!(tc.get(TenantId(0)), Some(&TenantSpec::interactive()));
        assert_eq!(tc.get(TenantId(2)), None);
        assert_eq!(TenantId::DEFAULT.index(), 0);
        assert_eq!(TenantId(3).to_string(), "tenant.3");
    }

    #[test]
    fn stats_violation_helpers() {
        let mut s = TenantStats {
            completed: 1_000,
            violations: 9,
            ..TenantStats::default()
        };
        assert!(!s.sla_violated(), "0.9% is inside a p99 target");
        s.violations = 11;
        assert!(s.sla_violated());
        assert!((s.violation_rate() - 0.011).abs() < 1e-12);
        assert_eq!(TenantStats::default().violation_rate(), 0.0);
    }
}
