//! The all-flash array simulator: request pipeline + autonomic manager.
//!
//! A request travels `host → RC queue → switch → endpoint → ONFi bus →
//! FIMM → bus → endpoint → switch → RC → host`, contending at every
//! shared resource. The autonomic manager observes completions and
//! queue pressure, detects hot clusters (Eq. 1) and laggards (Eq. 3 /
//! queue examination), and reshapes the physical data layout in the
//! background (data migration with shadow cloning, intra-cluster
//! reshaping, write redirection).

use triplea_fimm::{Fimm, FimmFaultKind};
use triplea_flash::{FlashCommand, FlashError, OpKind, OpTiming, PageAddr, WearReport};
use triplea_ftl::{hal, Ftl, FtlError, IntegrityError, JournalConfig, LogicalPage, RebuildUnit};
use triplea_pcie::{Admission, ClusterId, RootComplex, Switch};
use triplea_sim::stats::{Histogram, TimeSeries};
use triplea_sim::trace::{
    MetricId, MetricRegistry, RunTrace, SharedRecorder, TraceConfig, TraceEventKind, TracePort,
    TraceScope,
};
use triplea_sim::{EventQueue, Nanos, SimTime};

use crate::autonomic::AutonomicState;
use crate::cluster::ClusterState;
use crate::config::{ArrayConfig, ManagementMode, PowerLossEvent};
use crate::metrics::{FaultStats, RecoveryStats, RunReport};
use crate::request::{Breakdown, IoOp, RequestState, Stage, Trace};
use crate::tenant::{TenantId, TenantStats, WeightedArbiter};

/// TLP framing overhead per 4 KB payload segment.
const TLP_OVERHEAD: u64 = 24;

/// Weyl constant used to derive per-component fault RNG streams from
/// the one master seed.
pub(crate) const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Transient-read retries before falling back to a fault-immune recovery
/// read. Every failed attempt burns the die slot it reserved, so each
/// retry queues behind the last — the accumulated ECC re-read penalty.
const READ_RETRY_LIMIT: u32 = 8;

/// Redirection attempts for a write whose program hard-fails before the
/// page is dropped as unwritable.
const WRITE_REDIRECT_LIMIT: u32 = 4;

/// Delay between a module death and the first hot-spare rebuild copy:
/// fault detection plus spare spin-up.
const REBUILD_DETECT_NS: Nanos = 100_000;

/// Pacing gap between rebuild units when the cluster is otherwise idle.
const REBUILD_GAP_NS: Nanos = 20_000;

/// Cap on the rebuild throttle's foreground-pressure multiplier.
const REBUILD_THROTTLE_MAX: u64 = 16;

#[derive(Clone, Debug)]
enum Ev {
    Submit(u32),
    RcGranted(u32),
    SwAdmit(u32),
    SwGranted(u32),
    ArriveSw(u32),
    EpAdmit(u32),
    EpGranted(u32),
    ArriveEp(u32),
    EpService(u32),
    PartFlashDone {
        req: u32,
        fimm: u32,
        pages: u32,
    },
    PartDataDone(u32),
    EpFree(u32),
    WriteProgrammed {
        cluster: u32,
        fimm: u32,
        pages: u32,
        /// Cluster whose write buffer admitted the request. Pages may be
        /// allocated on a different cluster than the one that buffered
        /// them (e.g. a multi-page run straddling a migrated boundary),
        /// but the buffer credit must be returned where it was taken.
        buf_cluster: u32,
    },
    RespAtSw(u32),
    RespAtRc(u32),
    Complete(u32),
    MigArrive(u32),
    MigPageDone {
        reloc: u32,
        idx: u32,
        cluster: u32,
        fimm: u32,
    },
    /// The configured power cut fires: volatile state is lost, the FTL
    /// journal is replayed, and the array remounts.
    PowerLoss,
    /// One unit of hot-spare rebuild work for `rebuilds[i]`.
    RebuildStep(u32),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RelocKind {
    Migration,
    Reshape,
}

#[derive(Clone, Copy, Debug)]
struct RelocPage {
    lpn: u64,
    /// Where the data lived when the relocation was decided.
    old: triplea_ftl::PhysLoc,
    /// Destination of the clone, once allocated.
    new: Option<triplea_ftl::PhysLoc>,
}

#[derive(Clone, Debug)]
struct Reloc {
    pages: Vec<RelocPage>,
    kind: RelocKind,
    remaining: u32,
}

/// A hot-spare rebuild in flight: one dead FIMM being reconstructed,
/// block by block, onto a standby module that replaces it on completion.
#[derive(Clone, Debug)]
struct Rebuild {
    cluster: u32,
    fimm: u32,
    /// The instant the module died — start of the degraded window.
    died: SimTime,
    /// Restoration manifest; computed lazily at the first step so it
    /// reflects the FTL metadata at detection time.
    plan: Vec<RebuildUnit>,
    planned: bool,
    /// Next manifest unit to restore.
    cursor: usize,
    /// Live pages reconstruction-read from siblings so far.
    copied: u64,
    /// The standby module being programmed; consumed by the final swap.
    spare: Option<Fimm>,
    done: bool,
}

/// Per-cluster metric handles, pre-interned at wiring time.
#[derive(Clone, Debug)]
struct ClusterMetricIds {
    bus_utilization: MetricId,
    bus_bytes: MetricId,
    served: MetricId,
    relocs_in: MetricId,
    ep_high_watermark: MetricId,
    /// One `cluster.N.fimm.M.queue_depth` handle per FIMM.
    fimm_queue_depth: Vec<MetricId>,
}

/// Per-tenant metric handles, pre-interned at wiring time.
#[derive(Clone, Debug)]
struct TenantMetricIds {
    read_latency: MetricId,
    write_latency: MetricId,
    completed: MetricId,
    violations: MetricId,
}

/// Metric handles resolved once in [`Array::with_recorder`], so the
/// end-of-run harvest is a sequence of indexed stores — no per-harvest
/// name formatting, interning, or re-sorting (the registry's sorted
/// index is built here too and merely cloned at harvest).
#[derive(Clone, Debug)]
struct EngineMetrics {
    /// The registry with every name interned (all slots still unset).
    registry: MetricRegistry,
    events: MetricId,
    completed: MetricId,
    dropped_writes: MetricId,
    latency: MetricId,
    read_latency: MetricId,
    write_latency: MetricId,
    clusters: Vec<ClusterMetricIds>,
    /// Per-switch `(uplink.bytes, uplink.replays)` handles.
    switches: Vec<(MetricId, MetricId)>,
    /// Per-tenant `tenant.N.*` handles; empty on untenanted arrays so
    /// their registries — and the golden artifacts derived from them —
    /// stay byte-identical to builds that predate the tenant model.
    tenants: Vec<TenantMetricIds>,
}

impl EngineMetrics {
    /// Interns every instrument name the engine harvests, sized from the
    /// built topology (`fimms[g]` = FIMM count of cluster `g`).
    fn new(fimms: &[usize], switches: usize, tenants: usize) -> Self {
        let mut registry = MetricRegistry::new();
        let events = registry.intern("array.events");
        let completed = registry.intern("array.completed");
        let dropped_writes = registry.intern("array.dropped_writes");
        let latency = registry.intern("array.latency");
        let read_latency = registry.intern("array.read_latency");
        let write_latency = registry.intern("array.write_latency");
        let clusters = fimms
            .iter()
            .enumerate()
            .map(|(g, &n)| ClusterMetricIds {
                bus_utilization: registry.intern(format!("cluster.{g}.bus.utilization")),
                bus_bytes: registry.intern(format!("cluster.{g}.bus.bytes")),
                served: registry.intern(format!("cluster.{g}.served")),
                relocs_in: registry.intern(format!("cluster.{g}.relocs_in")),
                ep_high_watermark: registry.intern(format!("cluster.{g}.ep_queue.high_watermark")),
                fimm_queue_depth: (0..n)
                    .map(|f| registry.intern(format!("cluster.{g}.fimm.{f}.queue_depth")))
                    .collect(),
            })
            .collect();
        let switches = (0..switches)
            .map(|s| {
                (
                    registry.intern(format!("switch.{s}.uplink.bytes")),
                    registry.intern(format!("switch.{s}.uplink.replays")),
                )
            })
            .collect();
        let tenants = (0..tenants)
            .map(|t| TenantMetricIds {
                read_latency: registry.intern(format!("tenant.{t}.read.latency")),
                write_latency: registry.intern(format!("tenant.{t}.write.latency")),
                completed: registry.intern(format!("tenant.{t}.completed")),
                violations: registry.intern(format!("tenant.{t}.violations")),
            })
            .collect();
        EngineMetrics {
            registry,
            events,
            completed,
            dropped_writes,
            latency,
            read_latency,
            write_latency,
            clusters,
            switches,
            tenants,
        }
    }
}

/// One tenant's completion-side accumulators.
#[derive(Clone, Debug)]
struct TenantAccum {
    lat: Histogram,
    rlat: Histogram,
    wlat: Histogram,
    completed: u64,
    reads: u64,
    writes: u64,
    /// Completions whose end-to-end latency exceeded the tenant's
    /// `sla_p99_ns` target.
    violations: u64,
}

impl TenantAccum {
    fn new() -> Self {
        TenantAccum {
            lat: Histogram::new(),
            rlat: Histogram::new(),
            wlat: Histogram::new(),
            completed: 0,
            reads: 0,
            writes: 0,
            violations: 0,
        }
    }
}

/// The multi-tenant front door: NVMe-style per-tenant submission lanes
/// feeding the root-complex credit queue through weighted-fair
/// arbitration with per-tenant admission control. Built exactly when
/// the config names at least one tenant; `None` leaves the legacy
/// anonymous path byte-identical to builds without the tenant model.
#[derive(Clone, Debug)]
struct FrontDoor {
    arbiter: WeightedArbiter,
    lanes: Vec<TenantAccum>,
}

impl FrontDoor {
    fn new(cfg: &ArrayConfig) -> Option<Self> {
        if !cfg.tenants.is_active() {
            return None;
        }
        Some(FrontDoor {
            arbiter: WeightedArbiter::new(cfg.tenants.specs()),
            lanes: cfg.tenants.specs().iter().map(|_| TenantAccum::new()).collect(),
        })
    }
}

pub(crate) struct Engine {
    cfg: ArrayConfig,
    mode: ManagementMode,
    ftl: Ftl,
    rc: RootComplex,
    switches: Vec<Switch>,
    clusters: Vec<ClusterState>,
    auto: AutonomicState,
    /// The multi-tenant front door; `Some` exactly when the config
    /// names tenants. `None` bypasses arbitration entirely.
    front: Option<FrontDoor>,
    reqs: Vec<RequestState>,
    relocs: Vec<Reloc>,
    /// Destination cluster (global index) of each in-flight migration.
    mig_dst: Vec<(u32, u32)>,
    queue: EventQueue<Ev>,
    // metrics
    completed: u64,
    reads_done: u64,
    writes_done: u64,
    first_submit: SimTime,
    last_complete: SimTime,
    lat: Histogram,
    rlat: Histogram,
    wlat: Histogram,
    bd_sum: Breakdown,
    /// Queue-stall time attributed to link congestion (see
    /// `RunReport::avg_link_contention_us`).
    attr_link: u64,
    /// Queue-stall time attributed to storage congestion.
    attr_storage: u64,
    series: TimeSeries,
    events: u64,
    foreign_pages: u64,
    dropped_writes: u64,
    /// Engine-side degraded-mode counters; package/link-level fault
    /// counts are folded in by [`Engine::into_report`].
    faults: FaultStats,
    /// Power-loss and rebuild accounting for the report.
    recovery: RecoveryStats,
    /// The pending power cut; taken when it fires (at most one per run).
    power_loss: Option<PowerLossEvent>,
    /// Hot-spare rebuilds, one per consumed spare.
    rebuilds: Vec<Rebuild>,
    /// Completion latencies recorded inside any rebuild's degraded
    /// window (module death → spare in service).
    degraded_lat: Histogram,
    /// Modules replaced by a spare; kept so their wear and fault history
    /// still roll up into the final report.
    retired_fimms: Vec<Fimm>,
    /// Array-scoped emission port for engine-level lifecycle events.
    trace: TracePort,
    /// The recorder harvested at the end of a traced run; `None` keeps
    /// the run byte-identical to untraced builds.
    recorder: Option<SharedRecorder>,
    /// Pre-interned metric handles; `Some` exactly when `recorder` is.
    metric_ids: Option<Box<EngineMetrics>>,
    /// Completions recorded for the sharded executor: `(request id,
    /// completion instant, breakdown)` per completion, in completion
    /// order. `None` — the default — skips the bookkeeping entirely, so
    /// serial runs stay byte-identical.
    completion_log: Option<Vec<(u32, SimTime, Breakdown)>>,
}

/// The outcome of [`Array::run_verified`]: the performance report, the
/// harvested trace (when a recorder was attached via
/// [`Array::with_recorder`]), and the post-run FTL metadata audit.
#[derive(Clone, Debug)]
pub struct VerifiedRun {
    /// The run's performance report, identical to [`Array::run`]'s.
    pub report: RunReport,
    /// The harvested event trace and metric registry; `None` when the
    /// array ran without a recorder.
    pub trace: Option<RunTrace>,
    /// The end-to-end FTL metadata integrity audit: every live logical
    /// page maps to exactly one live physical page and vice versa, even
    /// when faults aborted migrations mid-copy.
    pub integrity: Result<(), IntegrityError>,
}

/// The Triple-A all-flash array (or its non-autonomic baseline).
///
/// Construct with [`Array::new`], then [`Array::run`] a [`Trace`] through
/// it to obtain a [`RunReport`]. Runs are deterministic: the same config,
/// mode, and trace always produce identical reports.
///
/// # Example
///
/// ```
/// use triplea_core::{Array, ArrayConfig, IoOp, ManagementMode, Trace, TraceRequest};
/// use triplea_ftl::LogicalPage;
/// use triplea_sim::SimTime;
///
/// let trace = Trace::new(vec![TraceRequest::new(SimTime::ZERO, IoOp::Read, LogicalPage(0), 1)]);
/// let report = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
/// assert_eq!(report.completed(), 1);
/// ```
pub struct Array {
    e: Engine,
}

impl std::fmt::Debug for Array {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Array")
            .field("mode", &self.e.mode)
            .field("clusters", &self.e.clusters.len())
            .finish()
    }
}

impl Array {
    /// Builds an idle array from a configuration.
    ///
    /// A configured [`FimmFaultEvent`](crate::FimmFaultEvent) that
    /// addresses a cluster or FIMM outside the array is ignored — the
    /// [`ArrayConfigBuilder`](crate::ArrayConfigBuilder) is the
    /// validation gate; a hand-assembled [`FaultConfig`](crate::FaultConfig)
    /// must not crash the simulator.
    pub fn new(cfg: ArrayConfig, mode: ManagementMode) -> Self {
        Array {
            e: Self::build_engine(cfg, mode),
        }
    }

    /// Builds the engine shared by [`Array::new`] and the sharded
    /// executor's per-domain instances (`crate::shard`).
    pub(crate) fn build_engine(cfg: ArrayConfig, mode: ManagementMode) -> Engine {
        let topo = cfg.shape.topology;
        let mut clusters: Vec<ClusterState> = topo
            .iter_clusters()
            .map(|id| ClusterState::new(&cfg, id))
            .collect();
        let mut switches: Vec<Switch> = (0..topo.switches)
            .map(|_| Switch::new(&cfg.pcie, topo.clusters_per_switch))
            .collect();
        Self::arm_faults(&cfg, &mut clusters, &mut switches);
        let mut ftl = if cfg.mapping_cache_pages > 0 {
            Ftl::with_mapping_cache(cfg.shape, cfg.mapping_cache_pages)
        } else {
            Ftl::new(cfg.shape)
        };
        ftl.set_gc_policy(cfg.gc_policy);
        if let Some(pl) = cfg.faults.power_loss {
            // Metadata mutations must be journaled from the first write,
            // or the recovery scan would have nothing to replay.
            ftl.enable_journal(JournalConfig {
                flush_every: pl.flush_every,
                checkpoint_every: pl.checkpoint_every,
            });
        }
        Engine {
            ftl,
            rc: RootComplex::new(&cfg.pcie),
            switches,
            clusters,
            auto: AutonomicState::new(cfg.autonomic, cfg.seed),
            front: FrontDoor::new(&cfg),
            reqs: Vec::new(),
            relocs: Vec::new(),
            mig_dst: Vec::new(),
            queue: EventQueue::new(),
            completed: 0,
            reads_done: 0,
            writes_done: 0,
            first_submit: SimTime::MAX,
            last_complete: SimTime::ZERO,
            lat: Histogram::new(),
            rlat: Histogram::new(),
            wlat: Histogram::new(),
            bd_sum: Breakdown::default(),
            attr_link: 0,
            attr_storage: 0,
            series: TimeSeries::new(),
            events: 0,
            foreign_pages: 0,
            dropped_writes: 0,
            faults: FaultStats::default(),
            recovery: RecoveryStats::default(),
            power_loss: cfg.faults.power_loss,
            rebuilds: Vec::new(),
            degraded_lat: Histogram::new(),
            retired_fimms: Vec::new(),
            trace: TracePort::off(),
            recorder: None,
            metric_ids: None,
            completion_log: None,
            mode,
            cfg,
        }
    }

    /// Attaches an event recorder to every component of the array. Each
    /// component's [`TracePort`] is stamped with its hierarchical
    /// position (cluster, FIMM, package), so the harvested
    /// [`RunTrace`] — returned by [`Array::run_verified`] — carries
    /// per-lane Chrome-trace output and `cluster.N.fimm.M.*` metrics.
    pub fn with_recorder(mut self, cfg: TraceConfig) -> Self {
        let rec = SharedRecorder::new(cfg);
        let e = &mut self.e;
        let port = |scope| TracePort::attached(rec.clone(), scope);
        e.trace = port(TraceScope::array());
        e.ftl.attach_trace(port(TraceScope::array()));
        e.auto.attach_trace(port(TraceScope::array()));
        e.rc.queue.attach_trace(port(TraceScope::array()));
        let cps = e.cfg.shape.topology.clusters_per_switch;
        for (s, sw) in e.switches.iter_mut().enumerate() {
            let sw_scope = TraceScope::array().unit(s as u32);
            sw.uplink.down.attach_trace(port(sw_scope));
            sw.uplink.up.attach_trace(port(sw_scope));
            for (p, link) in sw.downlinks.iter_mut().enumerate() {
                let scope = TraceScope::cluster(s as u32 * cps + p as u32);
                link.down.attach_trace(port(scope));
                link.up.attach_trace(port(scope));
            }
            for (p, q) in sw.port_queues.iter_mut().enumerate() {
                q.attach_trace(port(TraceScope::cluster(s as u32 * cps + p as u32)));
            }
        }
        for (g, cl) in e.clusters.iter_mut().enumerate() {
            let g = g as u32;
            cl.bus.attach_trace(port(TraceScope::cluster(g)));
            cl.ep.queue.attach_trace(port(TraceScope::cluster(g)));
            for (f, fimm) in cl.fimms.iter_mut().enumerate() {
                fimm.attach_trace(port(TraceScope::fimm(g, f as u32)));
            }
        }
        let fimms: Vec<usize> = e.clusters.iter().map(|cl| cl.fimms.len()).collect();
        e.metric_ids = Some(Box::new(EngineMetrics::new(
            &fimms,
            e.switches.len(),
            e.cfg.tenants.len(),
        )));
        e.recorder = Some(rec);
        self
    }

    /// Applies the configured fault plan to freshly built hardware. A
    /// quiet plan arms nothing, so fault-free runs stay bit-identical to
    /// builds that predate fault injection.
    fn arm_faults(cfg: &ArrayConfig, clusters: &mut [ClusterState], switches: &mut [Switch]) {
        let fc = &cfg.faults;
        if !fc.flash.is_quiet() {
            for (ci, cl) in clusters.iter_mut().enumerate() {
                for (fi, fimm) in cl.fimms.iter_mut().enumerate() {
                    // Distinct RNG stream per FIMM (and, inside, per
                    // package), all derived from the one master seed.
                    let k = ((ci as u64) << 8) | fi as u64;
                    fimm.set_fault_profile(fc.flash, fc.seed ^ (k + 1).wrapping_mul(GOLDEN));
                }
            }
        }
        if !fc.pcie.is_quiet() {
            let mut k = 0u64;
            for sw in switches.iter_mut() {
                for link in std::iter::once(&mut sw.uplink).chain(sw.downlinks.iter_mut()) {
                    link.down
                        .set_faults(fc.pcie, fc.seed ^ (2 * k + 1).wrapping_mul(GOLDEN));
                    link.up
                        .set_faults(fc.pcie, fc.seed ^ (2 * k + 2).wrapping_mul(GOLDEN));
                    k += 1;
                }
            }
        }
        for ev in fc.fimm_events.iter().flatten() {
            // Events addressing hardware outside the array are skipped,
            // not panicked on: the builder validates user input, and a
            // fault plan is itself a fallible input, not an invariant.
            let Some(cl) = clusters.get_mut(ev.cluster as usize) else {
                continue;
            };
            let Some(fimm) = cl.fimms.get_mut(ev.fimm as usize) else {
                continue;
            };
            fimm.schedule_fault(SimTime::from_nanos(ev.at_ns), ev.kind);
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ArrayConfig {
        &self.e.cfg
    }

    /// The management mode in force.
    pub fn mode(&self) -> ManagementMode {
        self.e.mode
    }

    /// Replays `trace` through the array to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if a trace record has `pages == 0`, addresses a page
    /// outside the array, or (on a tenant-enabled array) names a tenant
    /// outside the configured table.
    pub fn run(self, trace: &Trace) -> RunReport {
        self.run_verified(trace).report
    }

    /// Like [`Array::run`], but additionally performs an end-to-end FTL
    /// metadata integrity check after the run — every relocated page must
    /// map to exactly one live physical page and vice versa, proving that
    /// no page was lost or duplicated even when faults aborted migrations
    /// mid-copy — and harvests the event trace when a recorder was
    /// attached with [`Array::with_recorder`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Array::run`].
    pub fn run_verified(mut self, trace: &Trace) -> VerifiedRun {
        if let Some(sharded) = self.try_shard() {
            return sharded.run_verified(trace);
        }
        let total_pages = self.e.cfg.shape.total_pages();
        let n_tenants = self.e.cfg.tenants.len();
        for (i, r) in trace.requests().iter().enumerate() {
            assert!(r.pages >= 1, "request {i} has zero pages");
            assert!(
                r.lpn.0 + r.pages as u64 <= total_pages,
                "request {i} exceeds the address space"
            );
            assert!(
                n_tenants == 0 || r.tenant.index() < n_tenants,
                "request {i} names {} but the config has {n_tenants} tenants",
                r.tenant
            );
            self.e.reqs.push(RequestState::new(r));
            self.e.queue.push(r.at, Ev::Submit(i as u32));
            self.e.first_submit = self.e.first_submit.min(r.at);
        }
        if trace.is_empty() {
            self.e.first_submit = SimTime::ZERO;
        }
        self.e.arm_recovery();
        if let Some(rec) = &self.e.recorder {
            let rec = rec.clone();
            while let Some((now, ev)) = self.e.queue.pop() {
                // Timeless components (the FTL, credit queues) emit at
                // the recorder clock; keep it on the event loop's time.
                rec.set_now(now);
                self.e.events += 1;
                self.e.handle(now, ev);
            }
        } else {
            while let Some((now, ev)) = self.e.queue.pop() {
                self.e.events += 1;
                self.e.handle(now, ev);
            }
        }
        let integrity = self.e.ftl.verify_integrity();
        let run_trace = self.e.harvest_trace();
        VerifiedRun {
            report: self.e.into_report(),
            trace: run_trace,
            integrity,
        }
    }

    /// Converts the idle array into an [`ArrayRunner`]: the same engine,
    /// driven incrementally instead of to completion. The federation
    /// layer uses this to interleave N member arrays inside one
    /// deterministic epoch loop; [`Array::run_verified`] remains the
    /// single-array fast path and is byte-identical to previous
    /// releases.
    pub fn into_runner(mut self) -> ArrayRunner {
        if let Some(sharded) = self.try_shard() {
            return ArrayRunner {
                d: RunnerDriver::Sharded(sharded),
                submitted: 0,
            };
        }
        self.e.arm_recovery();
        ArrayRunner {
            d: RunnerDriver::Serial(Box::new(self.e)),
            submitted: 0,
        }
    }

    /// The sharded executor for this array, when the configuration opts
    /// in (`workers` set) *and* qualifies. Recorded runs and feature
    /// combinations the conservative partition cannot express (faults,
    /// tenants, hot spares, a shared mapping cache, single-switch
    /// topologies, a zero-latency root complex) fall back to the serial
    /// engine — same results, one worker.
    fn try_shard(&self) -> Option<Box<crate::shard::ShardedEngine>> {
        let w = self.e.cfg.workers?;
        if self.e.recorder.is_some() || !crate::shard::eligible(&self.e.cfg) {
            return None;
        }
        Some(crate::shard::ShardedEngine::new(
            self.e.cfg.clone(),
            self.e.mode,
            w,
        ))
    }
}

/// An [`Array`] engine driven incrementally: requests are injected one
/// at a time with [`ArrayRunner::submit`] and simulated time advances in
/// bounded steps with [`ArrayRunner::step_until`], so several arrays can
/// be co-simulated deterministically by one scheduler (see the
/// `federation` module). Event handling is identical to
/// [`Array::run_verified`]; only the driver differs.
pub struct ArrayRunner {
    d: RunnerDriver,
    submitted: u64,
}

/// How an [`ArrayRunner`] executes events: the legacy single-threaded
/// engine, or the conservative sharded executor (`crate::shard`) when
/// the configuration asked for workers and qualifies.
enum RunnerDriver {
    Serial(Box<Engine>),
    Sharded(Box<crate::shard::ShardedEngine>),
}

impl std::fmt::Debug for ArrayRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayRunner")
            .field("mode", &self.mode())
            .field("submitted", &self.submitted)
            .field("completed", &self.completed())
            .finish()
    }
}

impl ArrayRunner {
    fn mode(&self) -> ManagementMode {
        match &self.d {
            RunnerDriver::Serial(e) => e.mode,
            RunnerDriver::Sharded(s) => s.mode(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ArrayConfig {
        match &self.d {
            RunnerDriver::Serial(e) => &e.cfg,
            RunnerDriver::Sharded(s) => s.config(),
        }
    }

    /// Injects one request, returning its id for later
    /// [`ArrayRunner::is_done`] / [`ArrayRunner::is_lost`] polling.
    ///
    /// # Panics
    ///
    /// Same validation as [`Array::run_verified`]: `pages >= 1`, the
    /// address range inside the array, and (on tenant-enabled arrays) a
    /// tenant inside the configured table. The submission time must not
    /// be earlier than any instant already stepped past.
    pub fn submit(&mut self, r: &crate::request::TraceRequest) -> u32 {
        let cfg = self.config();
        let total_pages = cfg.shape.total_pages();
        let n_tenants = cfg.tenants.len();
        assert!(r.pages >= 1, "request has zero pages");
        assert!(
            r.lpn.0 + r.pages as u64 <= total_pages,
            "request exceeds the address space"
        );
        assert!(
            n_tenants == 0 || r.tenant.index() < n_tenants,
            "request names {} but the config has {n_tenants} tenants",
            r.tenant
        );
        self.submitted += 1;
        match &mut self.d {
            RunnerDriver::Serial(e) => {
                let id = e.reqs.len() as u32;
                e.reqs.push(RequestState::new(r));
                e.queue.push(r.at, Ev::Submit(id));
                e.first_submit = e.first_submit.min(r.at);
                id
            }
            RunnerDriver::Sharded(s) => s.submit(r),
        }
    }

    /// Drains every event strictly before `t`, exactly as the
    /// [`Array::run_verified`] loop would (including the recorder-clock
    /// bookkeeping on traced runs).
    pub fn step_until(&mut self, t: SimTime) {
        let e = match &mut self.d {
            RunnerDriver::Serial(e) => e,
            RunnerDriver::Sharded(s) => return s.step_until(t),
        };
        if let Some(rec) = e.recorder.clone() {
            while e.queue.peek_time().is_some_and(|pt| pt < t) {
                let (now, ev) = e.queue.pop().expect("peeked event present");
                rec.set_now(now);
                e.events += 1;
                e.handle(now, ev);
            }
        } else {
            while e.queue.peek_time().is_some_and(|pt| pt < t) {
                let (now, ev) = e.queue.pop().expect("peeked event present");
                e.events += 1;
                e.handle(now, ev);
            }
        }
    }

    /// `true` when the event calendar is empty (every injected request
    /// has either completed or been lost to a power cut).
    pub fn is_idle(&self) -> bool {
        match &self.d {
            RunnerDriver::Serial(e) => e.queue.is_empty(),
            RunnerDriver::Sharded(s) => s.is_idle(),
        }
    }

    /// Requests injected so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        match &self.d {
            RunnerDriver::Serial(e) => e.completed,
            RunnerDriver::Sharded(s) => s.completed(),
        }
    }

    /// In-flight requests lost to a power cut so far.
    pub fn lost(&self) -> u64 {
        match &self.d {
            RunnerDriver::Serial(e) => e.recovery.lost_inflight_requests,
            // Power loss disqualifies a config from sharding, so a
            // sharded runner can never lose a request.
            RunnerDriver::Sharded(_) => 0,
        }
    }

    /// Cumulative 99th-percentile completion latency, ns (0 until the
    /// first completion).
    pub fn p99_ns(&self) -> u64 {
        match &self.d {
            RunnerDriver::Serial(e) => e.lat.percentile(0.99),
            RunnerDriver::Sharded(s) => s.p99_ns(),
        }
    }

    /// `true` once request `id` has completed.
    pub fn is_done(&self, id: u32) -> bool {
        match &self.d {
            RunnerDriver::Serial(e) => e.reqs[id as usize].done,
            RunnerDriver::Sharded(s) => s.is_done(id),
        }
    }

    /// `true` when request `id` was in flight at a power cut and will
    /// never complete (its completion callback died with the calendar).
    pub fn is_lost(&self, id: u32) -> bool {
        match &self.d {
            RunnerDriver::Serial(e) => {
                let rs = &e.reqs[id as usize];
                !rs.done && rs.stage == Stage::Done
            }
            RunnerDriver::Sharded(_) => false,
        }
    }

    /// Completion instant of request `id` ([`SimTime::ZERO`] until it
    /// completes).
    pub fn finish_time(&self, id: u32) -> SimTime {
        match &self.d {
            RunnerDriver::Serial(e) => e.reqs[id as usize].finish,
            RunnerDriver::Sharded(s) => s.finish_time(id),
        }
    }

    /// Drains every remaining event, audits FTL metadata integrity, and
    /// produces the run outcome — the incremental equivalent of the tail
    /// of [`Array::run_verified`].
    pub fn finish(self) -> VerifiedRun {
        let mut e = match self.d {
            RunnerDriver::Serial(e) => e,
            RunnerDriver::Sharded(s) => return s.finish(),
        };
        if let Some(rec) = e.recorder.clone() {
            while let Some((now, ev)) = e.queue.pop() {
                rec.set_now(now);
                e.events += 1;
                e.handle(now, ev);
            }
        } else {
            while let Some((now, ev)) = e.queue.pop() {
                e.events += 1;
                e.handle(now, ev);
            }
        }
        if e.first_submit == SimTime::MAX {
            e.first_submit = SimTime::ZERO;
        }
        let integrity = e.ftl.verify_integrity();
        let run_trace = e.harvest_trace();
        VerifiedRun {
            report: e.into_report(),
            trace: run_trace,
            integrity,
        }
    }
}

impl Engine {
    fn page_bytes(&self) -> u64 {
        self.cfg.shape.flash.page_size as u64
    }

    /// Wire bytes for `pages` pages, one TLP per page plus framing.
    fn wire_bytes(&self, pages: u32) -> u64 {
        pages as u64 * (self.page_bytes() + TLP_OVERHEAD)
    }

    fn down_bytes(&self, op: IoOp, pages: u32) -> u64 {
        match op {
            IoOp::Read => TLP_OVERHEAD,
            IoOp::Write => self.wire_bytes(pages),
        }
    }

    fn resp_bytes(&self, op: IoOp, pages: u32) -> u64 {
        match op {
            IoOp::Read => self.wire_bytes(pages),
            IoOp::Write => TLP_OVERHEAD,
        }
    }

    fn cluster_global(&self, id: ClusterId) -> u32 {
        self.cfg.shape.topology.global_index(id)
    }

    // ---- sharded-executor hooks (`crate::shard`) -------------------
    //
    // A domain engine is an ordinary `Engine` over the full global
    // address space, driven in bounded windows instead of to
    // completion. These methods are the entire surface the conservative
    // executor needs; none of them is reachable from a serial run, so
    // the legacy paths stay byte-identical.

    /// Enqueues one validated request (the sharded root validates
    /// before dispatching), returning its engine-local id.
    pub(crate) fn inject(&mut self, r: &crate::request::TraceRequest) -> u32 {
        let id = self.reqs.len() as u32;
        self.reqs.push(RequestState::new(r));
        self.queue.push(r.at, Ev::Submit(id));
        self.first_submit = self.first_submit.min(r.at);
        id
    }

    /// Timestamp of the next pending event, if any.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drains every event strictly before `horizon`, exactly as the
    /// [`Array::run_verified`] loop would.
    pub(crate) fn process_until(&mut self, horizon: SimTime) {
        while self.queue.peek_time().is_some_and(|pt| pt < horizon) {
            let (now, ev) = self.queue.pop().expect("peeked event present");
            self.events += 1;
            self.handle(now, ev);
        }
    }

    /// Starts recording `(request id, completion instant, breakdown)`
    /// per completion for [`Engine::drain_completions`].
    pub(crate) fn enable_completion_log(&mut self) {
        self.completion_log = Some(Vec::new());
    }

    /// Moves every completion recorded since the last drain into
    /// `sink`, preserving completion order and both buffers' capacity.
    pub(crate) fn drain_completions(&mut self, sink: &mut Vec<(u32, SimTime, Breakdown)>) {
        if let Some(log) = &mut self.completion_log {
            sink.append(log);
        }
    }

    /// The post-run FTL metadata audit ([`Ftl::verify_integrity`]).
    pub(crate) fn check_integrity(&self) -> Result<(), IntegrityError> {
        self.ftl.verify_integrity()
    }

    /// Samples one FIMM's read backlog into its queue-depth series.
    /// Only records while a recorder is attached, so untraced runs
    /// allocate nothing.
    fn sample_qdepth(&mut self, now: SimTime, c: usize, fimm: usize) {
        if self.recorder.is_some() {
            let v = self.clusters[c].pending_read_pages[fimm] as f64;
            self.clusters[c].qdepth[fimm].push(now, v);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Submit(r) => self.on_submit(now, r),
            Ev::RcGranted(r) => self.on_rc_granted(now, r),
            Ev::SwAdmit(r) => self.on_sw_admit(now, r),
            Ev::SwGranted(r) => self.on_sw_granted(now, r),
            Ev::ArriveSw(r) => self.on_arrive_sw(now, r),
            Ev::EpAdmit(r) => self.on_ep_admit(now, r),
            Ev::EpGranted(r) => self.on_ep_granted(now, r),
            Ev::ArriveEp(r) => self.on_arrive_ep(now, r),
            Ev::EpService(r) => self.on_ep_service(now, r),
            Ev::PartFlashDone { req, fimm, pages } => {
                self.on_part_flash_done(now, req, fimm, pages)
            }
            Ev::PartDataDone(r) => self.on_part_data_done(now, r),
            Ev::EpFree(c) => self.on_ep_free(now, c),
            Ev::WriteProgrammed {
                cluster,
                fimm,
                pages,
                buf_cluster,
            } => self.on_write_programmed(now, cluster, fimm, pages, buf_cluster),
            Ev::RespAtSw(r) => self.on_resp_at_sw(now, r),
            Ev::RespAtRc(r) => self.on_resp_at_rc(now, r),
            Ev::Complete(r) => self.on_complete(now, r),
            Ev::MigArrive(m) => self.on_mig_arrive(now, m),
            Ev::MigPageDone {
                reloc,
                idx,
                cluster,
                fimm,
            } => self.on_mig_page_done(now, reloc, idx, cluster, fimm),
            Ev::PowerLoss => self.on_power_loss(now),
            Ev::RebuildStep(i) => self.on_rebuild_step(now, i),
        }
    }

    // ------------------------------------------------------------------
    // Crash recovery & self-healing
    // ------------------------------------------------------------------

    /// Schedules the configured power cut and claims one hot spare for
    /// each scheduled module death, in config order, until the spare
    /// pool runs dry. Runs once, before the event loop starts.
    fn arm_recovery(&mut self) {
        if let Some(pl) = self.power_loss {
            self.queue.push(SimTime::from_nanos(pl.at_ns), Ev::PowerLoss);
        }
        let mut spares = self.cfg.hot_spares;
        let events = self.cfg.faults.fimm_events;
        for ev in events.iter().flatten() {
            if spares == 0 {
                break;
            }
            if !matches!(ev.kind, FimmFaultKind::Dead) {
                continue;
            }
            let Some(cl) = self.clusters.get(ev.cluster as usize) else {
                continue;
            };
            if ev.fimm as usize >= cl.fimms.len() {
                continue;
            }
            // Two deaths of the same module consume one spare.
            if self
                .rebuilds
                .iter()
                .any(|rb| rb.cluster == ev.cluster && rb.fimm == ev.fimm)
            {
                continue;
            }
            spares -= 1;
            let mut spare = Fimm::new(
                self.cfg.shape.packages_per_fimm,
                self.cfg.shape.flash,
                self.cfg.flash_timing,
            );
            let fc = &self.cfg.faults;
            if !fc.flash.is_quiet() {
                // The spare gets its own RNG stream, disjoint (bit 16)
                // from every original module's `(cluster << 8) | fimm`.
                let k = ((ev.cluster as u64) << 8) | ev.fimm as u64 | 1 << 16;
                spare.set_fault_profile(fc.flash, fc.seed ^ (k + 1).wrapping_mul(GOLDEN));
            }
            if let Some(rec) = &self.recorder {
                spare.attach_trace(TracePort::attached(
                    rec.clone(),
                    TraceScope::fimm(ev.cluster, ev.fimm),
                ));
            }
            let died = SimTime::from_nanos(ev.at_ns);
            let idx = self.rebuilds.len() as u32;
            self.rebuilds.push(Rebuild {
                cluster: ev.cluster,
                fimm: ev.fimm,
                died,
                plan: Vec::new(),
                planned: false,
                cursor: 0,
                copied: 0,
                spare: Some(spare),
                done: false,
            });
            self.queue.push(died + REBUILD_DETECT_NS, Ev::RebuildStep(idx));
        }
    }

    /// The configured power cut. Everything volatile dies with it: the
    /// event calendar's in-flight work, every credit-queue occupancy and
    /// waiter, the endpoint write buffers, pending-page accounting, the
    /// management module's in-flight relocation claims, and the FTL's
    /// translation cache. Flash contents and journaled metadata survive;
    /// the mount-time recovery scan replays the journal's flushed tail
    /// onto its checkpoint. Host requests not yet submitted re-arrive
    /// once the array is back up (latency is still measured from the
    /// original submit time, so the outage shows in the tail).
    ///
    /// Link and bus busy-until timelines are deliberately left alone:
    /// they are pure timing reservations with no queued state, and any
    /// residual reservation drains during the multi-millisecond remount
    /// window.
    fn on_power_loss(&mut self, now: SimTime) {
        let Some(pl) = self.power_loss.take() else {
            return;
        };
        let mut future_submits: Vec<(SimTime, u32)> = Vec::new();
        while let Some((t, ev)) = self.queue.pop() {
            if let Ev::Submit(r) = ev {
                future_submits.push((t, r));
            }
        }
        let mut lost = 0u64;
        for rs in self.reqs.iter_mut() {
            if !rs.done && rs.stage != Stage::Created && rs.stage != Stage::Done {
                rs.stage = Stage::Done;
                lost += 1;
            }
        }
        self.rc.queue.power_cycle();
        if let Some(front) = self.front.as_mut() {
            // Submission-lane contents are volatile exactly like the RC
            // FIFO; the requeued submits below re-enter through fresh
            // arbitration. (The lane waiters were already counted lost
            // above — they sit at `Stage::AtRc`.)
            front.arbiter.power_cycle();
        }
        for sw in &mut self.switches {
            for q in &mut sw.port_queues {
                q.power_cycle();
            }
        }
        for cl in &mut self.clusters {
            cl.ep.queue.power_cycle();
            cl.wbuf_used = 0;
            cl.wbuf_waiters.clear();
            for p in &mut cl.pending_read_pages {
                *p = 0;
            }
            for p in &mut cl.pending_prog_pages {
                *p = 0;
            }
        }
        self.auto.forget_inflight();
        for rl in &mut self.relocs {
            rl.remaining = 0;
        }
        let outcome = match self.ftl.power_loss() {
            Ok(o) => o,
            // Replay re-executes our own recorded history; divergence is
            // a simulator defect, never an injectable fault.
            Err(e) => unreachable!("journal recovery diverged: {e}"),
        };
        let remount = pl.remount_base_ns + pl.replay_ns_per_record * outcome.replayed;
        let back_up = now + remount;
        self.recovery.power_losses += 1;
        self.recovery.journal_replayed += outcome.replayed;
        self.recovery.journal_dropped += outcome.dropped;
        self.recovery.aborted_clones += outcome.aborted_clones;
        self.recovery.lost_inflight_requests += lost;
        self.recovery.requeued_requests += future_submits.len() as u64;
        self.recovery.remount_ns += remount;
        let requeued = future_submits.len() as u64;
        self.trace.emit(|| TraceEventKind::PowerLoss {
            lost_requests: lost,
            requeued,
        });
        self.trace.emit(|| TraceEventKind::JournalReplay {
            replayed: outcome.replayed,
            dropped: outcome.dropped,
        });
        for (t, r) in future_submits {
            self.queue.push(t.max(back_up), Ev::Submit(r));
        }
        // Rebuild copies in flight were lost with the calendar; every
        // unfinished rebuild resumes at its cursor once the array is up.
        for i in 0..self.rebuilds.len() {
            if !self.rebuilds[i].done {
                let at = (self.rebuilds[i].died + REBUILD_DETECT_NS).max(back_up);
                self.queue.push(at, Ev::RebuildStep(i as u32));
            }
        }
    }

    /// One unit of hot-spare rebuild work: restore the programmed prefix
    /// of the next manifest block onto the spare, reconstruction-reading
    /// the live pages from the dead module's surviving siblings. All
    /// timing contends with foreground I/O (sibling dies, the shared
    /// bus); the pacing between units backs off linearly with the
    /// cluster's outstanding host reads so a busy array rebuilds slowly.
    fn on_rebuild_step(&mut self, now: SimTime, i: u32) {
        let idx = i as usize;
        if self.rebuilds[idx].done {
            return;
        }
        let (cluster, fimm) = (self.rebuilds[idx].cluster, self.rebuilds[idx].fimm);
        let c = cluster as usize;
        if !self.rebuilds[idx].planned {
            self.rebuilds[idx].planned = true;
            let id = self.clusters[c].id;
            self.rebuilds[idx].plan = self.ftl.rebuild_manifest(id, fimm);
            let pages: u64 = self.rebuilds[idx]
                .plan
                .iter()
                .map(|u| u.live.len() as u64)
                .sum();
            self.trace
                .with_scope(TraceScope::fimm(cluster, fimm))
                .emit(|| TraceEventKind::RebuildStart { pages });
        }
        let cursor = self.rebuilds[idx].cursor;
        let Some(unit) = self.rebuilds[idx].plan.get(cursor).cloned() else {
            self.finish_rebuild(now, idx);
            return;
        };
        self.rebuilds[idx].cursor += 1;
        let plane = self.cfg.shape.flash.plane_of_block(unit.block);
        let pb = self.page_bytes();
        let n = self.clusters[c].fimms.len() as u32;
        let mut t = now;
        for page in 0..unit.programmed {
            let addr = PageAddr {
                die: unit.die,
                plane,
                block: unit.block,
                page,
            };
            if unit.live.binary_search(&page).is_ok() {
                // Reconstruction-read the live page from the first
                // surviving sibling and haul it (in and back out) over
                // the shared bus. Recovery reads are fault-immune — a
                // rebuild must not trip over its own transient ECC.
                let xfer = self.clusters[c].bus.transfer(t, 2 * pb);
                let sib = (1..n)
                    .map(|off| (fimm + off) % n)
                    .find(|&f| !self.clusters[c].fimms[f as usize].is_dead_at(t));
                if let Some(sf) = sib {
                    if let Ok(rd) = self.clusters[c].fimms[sf as usize].begin_op_recovery(
                        t,
                        unit.package,
                        &FlashCommand::read(addr),
                    ) {
                        t = t.max(rd.end);
                    }
                }
                t = t.max(xfer.end);
                self.rebuilds[idx].copied += 1;
            }
            // Stale pages restore the programmed prefix without a source
            // read: NAND programs are strictly in-order within a block,
            // and the allocator will resume at page `programmed`.
            if let Some(spare) = self.rebuilds[idx].spare.as_mut() {
                if let Ok(op) = spare.begin_op(t, unit.package, &FlashCommand::program(addr)) {
                    t = op.end;
                }
                // The spare can grow its own bad blocks under its fault
                // profile; the copy is best-effort and the FTL will
                // quarantine the block on first use, like any other.
            }
        }
        let backlog: u64 = self.clusters[c].pending_read_pages.iter().sum();
        let gap = REBUILD_GAP_NS * (1 + backlog.min(REBUILD_THROTTLE_MAX - 1));
        self.queue.push(t + gap, Ev::RebuildStep(i));
    }

    /// Swaps the rebuilt spare into the cluster. The dead module is
    /// retired — its wear and fault history still roll up into the final
    /// report — and the FIMM slot serves from the spare from now on.
    fn finish_rebuild(&mut self, now: SimTime, idx: usize) {
        let (cluster, fimm) = (self.rebuilds[idx].cluster, self.rebuilds[idx].fimm);
        let Some(spare) = self.rebuilds[idx].spare.take() else {
            return;
        };
        self.rebuilds[idx].done = true;
        let old =
            std::mem::replace(&mut self.clusters[cluster as usize].fimms[fimm as usize], spare);
        self.retired_fimms.push(old);
        let dur = now - self.rebuilds[idx].died;
        let copied = self.rebuilds[idx].copied;
        self.recovery.rebuilds_completed += 1;
        self.recovery.rebuild_pages += copied;
        self.recovery.rebuild_ns += dur;
        self.trace
            .with_scope(TraceScope::fimm(cluster, fimm))
            .emit(|| TraceEventKind::RebuildDone {
                pages: copied,
                dur_ns: dur,
            });
    }

    // ------------------------------------------------------------------
    // Downstream pipeline
    // ------------------------------------------------------------------

    fn on_submit(&mut self, now: SimTime, r: u32) {
        self.reqs[r as usize].wait_since = now;
        self.reqs[r as usize].stage = Stage::AtRc;
        self.trace.emit(|| {
            let rs = &self.reqs[r as usize];
            TraceEventKind::Submit {
                req: r,
                read: rs.op == IoOp::Read,
                lpn: rs.lpn.0,
                pages: rs.pages,
            }
        });
        if self.front.is_some() {
            // Tenant mode: park the request on its owner's submission
            // lane; the weighted-fair arbiter decides who occupies the
            // next free root-complex credit.
            let t = self.reqs[r as usize].tenant;
            self.front.as_mut().expect("checked above").arbiter.enqueue(t, r);
            self.pump_tenants(now);
        } else {
            match self.rc.queue.admit(r as u64) {
                Admission::Admitted => self.queue.push(now, Ev::RcGranted(r)),
                Admission::Queued => {} // woken by on_complete's release
            }
        }
    }

    /// Drains the weighted-fair arbiter into the root-complex credit
    /// queue: while a credit is free and some lane is eligible (waiting
    /// work, in-flight count below its `qd_limit`), admit that lane's
    /// head request. In tenant mode this is the *only* path into the RC
    /// queue and it never overfills it, so the queue's own FIFO stays
    /// empty — scheduling policy lives entirely in the
    /// [`WeightedArbiter`].
    fn pump_tenants(&mut self, now: SimTime) {
        let Some(front) = self.front.as_mut() else {
            return;
        };
        while !self.rc.queue.is_full() {
            let Some((_t, r)) = front.arbiter.grant() else {
                break;
            };
            let admitted = self.rc.queue.admit(r as u64);
            debug_assert!(
                matches!(admitted, Admission::Admitted),
                "pump only admits below capacity"
            );
            self.queue.push(now, Ev::RcGranted(r));
        }
    }

    fn on_rc_granted(&mut self, now: SimTime, r: u32) {
        let (lpn, pages, wait_since) = {
            let rs = &self.reqs[r as usize];
            (rs.lpn, rs.pages, rs.wait_since)
        };
        // Pin physical locations at routing time: migrations that land
        // while this request is in flight keep the old copy readable.
        let locs: Vec<_> = (0..pages)
            .map(|i| self.ftl.locate(LogicalPage(lpn.0 + i as u64)))
            .collect();
        let cluster = self.cluster_global(locs[0].cluster);
        {
            let rs = &mut self.reqs[r as usize];
            rs.bd.rc_stall += now - wait_since;
            rs.locs = locs;
            rs.cluster = cluster;
        }
        self.clusters[cluster as usize].served += 1;
        // Address translation happens here, at the management module. A
        // DFTL-style mapping-cache miss costs a flash read of the
        // translation page from the request's home FIMM.
        let mut t = now + self.cfg.pcie.rc_route_ns;
        let map_hit = self.ftl.map_access(lpn);
        self.trace
            .with_scope(TraceScope::cluster(cluster))
            .emit(|| TraceEventKind::Dispatch {
                req: r,
                map_miss: !map_hit,
            });
        if !map_hit {
            let loc = self.reqs[r as usize].locs[0];
            let c = cluster as usize;
            let pb = self.page_bytes();
            let xfer = self.clusters[c].bus.transfer(now, pb);
            if let Some((_, rd)) = self.issue_read_op(
                c,
                loc.fimm,
                now,
                loc.addr.package,
                &FlashCommand::read(loc.addr.page),
            ) {
                t = t.max(rd.end);
                let rs = &mut self.reqs[r as usize];
                rs.bd.fimm_service += rd.end - rd.start;
            }
            t = t.max(xfer.end);
        }
        self.queue.push(t, Ev::SwAdmit(r));
    }

    /// Issues one read command, preferring `fimm` but failing over to a
    /// live sibling when that module is dead, and retrying transient ECC
    /// faults (the last attempt is a fault-immune recovery read, so the
    /// loop terminates). Returns the serving FIMM and timing, or `None`
    /// when every module in the cluster is dead.
    fn issue_read_op(
        &mut self,
        c: usize,
        fimm: u32,
        at: SimTime,
        package: u32,
        cmd: &FlashCommand,
    ) -> Option<(u32, OpTiming)> {
        let n = self.clusters[c].fimms.len() as u32;
        for off in 0..n {
            let f = ((fimm + off) % n) as usize;
            if self.clusters[c].fimms[f].is_dead_at(at) {
                continue;
            }
            if off > 0 {
                self.faults.degraded_reads += 1;
            }
            let mut tries = 0;
            loop {
                let r = if tries < READ_RETRY_LIMIT {
                    self.clusters[c].fimms[f].begin_op(at, package, cmd)
                } else {
                    self.clusters[c].fimms[f].begin_op_recovery(at, package, cmd)
                };
                match r {
                    Ok(op) => return Some((f as u32, op)),
                    Err(e) if e.is_transient() => tries += 1,
                    Err(_) => break, // module failed under us: next sibling
                }
            }
        }
        self.faults.unserviceable_reads += 1;
        None
    }

    fn on_sw_admit(&mut self, now: SimTime, r: u32) {
        self.reqs[r as usize].wait_since = now;
        self.reqs[r as usize].stage = Stage::AtSwitch;
        let s = self.switch_of(r);
        let p = self.port_of(r);
        match self.switches[s].port_queues[p].admit(r as u64) {
            Admission::Admitted => self.queue.push(now, Ev::SwGranted(r)),
            Admission::Queued => {}
        }
    }

    fn switch_of(&self, r: u32) -> usize {
        (self.reqs[r as usize].cluster / self.cfg.shape.topology.clusters_per_switch) as usize
    }

    fn port_of(&self, r: u32) -> usize {
        (self.reqs[r as usize].cluster % self.cfg.shape.topology.clusters_per_switch) as usize
    }

    fn on_sw_granted(&mut self, now: SimTime, r: u32) {
        let wait_since = self.reqs[r as usize].wait_since;
        self.reqs[r as usize].bd.switch_stall += now - wait_since;
        let (op, pages) = {
            let rs = &self.reqs[r as usize];
            (rs.op, rs.pages)
        };
        let bytes = self.down_bytes(op, pages);
        let s = self.switch_of(r);
        let res = self.switches[s].uplink.down.transmit(now, bytes);
        self.reqs[r as usize].bd.pcie_wait += res.wait;
        let arrive = self.switches[s].uplink.down.arrival(res.end);
        self.queue.push(arrive, Ev::ArriveSw(r));
    }

    fn on_arrive_sw(&mut self, now: SimTime, r: u32) {
        let t = now + self.cfg.pcie.switch_route_ns;
        self.queue.push(t, Ev::EpAdmit(r));
    }

    fn on_ep_admit(&mut self, now: SimTime, r: u32) {
        self.reqs[r as usize].wait_since = now;
        let c = self.reqs[r as usize].cluster as usize;
        match self.clusters[c].ep.queue.admit(r as u64) {
            Admission::Admitted => self.queue.push(now, Ev::EpGranted(r)),
            Admission::Queued => {
                self.reqs[r as usize].stalled_at_ep = true;
                if self.mode == ManagementMode::Autonomic
                    && self.auto.params().laggard.examines_queue()
                {
                    self.examine_queue(now, c as u32);
                }
            }
        }
    }

    /// The autonomic detection budget and debounce cooldowns in force
    /// for a stall attributed to `tenant`:
    /// `(sla_ns, laggard_cooldown_ns, escalation_cooldown_ns)`.
    ///
    /// Untenanted arrays use the global [`AutonomicParams`](crate::AutonomicParams)
    /// values unchanged. With tenants, the budget is the tighter of the
    /// global SLA and the tenant's own p99 target, and the cooldowns
    /// scale with `sla_p99_ns / sla_ns` (clamped to 1/4x..4x): a laggard
    /// stalling an interactive tenant is re-examined — and therefore
    /// reshaped — sooner than one that only delays batch work. A tenant
    /// currently outside its SLA halves the cooldowns again.
    fn tenant_autonomics(&self, tenant: TenantId) -> (Nanos, Nanos, Nanos) {
        let p = self.auto.params();
        let base = (p.sla_ns, p.laggard_cooldown_ns, p.escalation_cooldown_ns);
        let Some(front) = self.front.as_ref() else {
            return base;
        };
        let Some(spec) = self.cfg.tenants.get(tenant) else {
            return base;
        };
        let scale = |v: Nanos| -> Nanos {
            let scaled = (v as u128 * spec.sla_p99_ns as u128 / p.sla_ns.max(1) as u128) as Nanos;
            scaled.clamp(v / 4, v.saturating_mul(4))
        };
        let acc = &front.lanes[tenant.index()];
        let violating = acc.violations * 100 > acc.completed;
        let div = if violating { 2 } else { 1 };
        (
            p.sla_ns.min(spec.sla_p99_ns),
            scale(p.laggard_cooldown_ns) / div,
            scale(p.escalation_cooldown_ns) / div,
        )
    }

    /// [`Engine::tenant_autonomics`] for a queue-examination event: the
    /// most demanding tenant among the stalled waiters (tightest
    /// `sla_p99_ns`, ties to the lower id) sets the pace.
    fn waiters_autonomics(&self, waiters: &[u32]) -> (Nanos, Nanos, Nanos) {
        let p = self.auto.params();
        let base = (p.sla_ns, p.laggard_cooldown_ns, p.escalation_cooldown_ns);
        if self.front.is_none() {
            return base;
        }
        let tightest = waiters
            .iter()
            .map(|&w| self.reqs[w as usize].tenant)
            .min_by_key(|t| {
                (
                    self.cfg.tenants.get(*t).map_or(u64::MAX, |s| s.sla_p99_ns),
                    t.index(),
                )
            });
        match tightest {
            Some(t) => self.tenant_autonomics(t),
            None => base,
        }
    }

    /// Queue-examination laggard detection (paper §4.2, Figure 8): when
    /// the EP queue has no room, count stalled entries per target FIMM;
    /// the plurality holder is a laggard, and near-uniform stalling means
    /// *all* FIMMs are laggards (escalate to inter-cluster migration).
    fn examine_queue(&mut self, now: SimTime, cluster: u32) {
        let n_fimms = self.cfg.shape.fimms_per_cluster as usize;
        let waiters: Vec<u32> = self.clusters[cluster as usize]
            .ep
            .queue
            .waiter_ids()
            .map(|w| w as u32)
            .collect();
        if waiters.len() < 2 {
            return;
        }
        let mut counts = vec![0u32; n_fimms];
        for &w in &waiters {
            if let Some(loc) = self.reqs[w as usize].locs.first() {
                counts[loc.fimm as usize] += 1;
            }
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if max == 0 {
            return;
        }
        // A full queue only signals *storage* contention when the FIMMs
        // actually hold stalled work beyond the SLA budget (otherwise
        // the pile-up is a link problem, handled by Eq. 1 migration).
        let (sla, laggard_cd, escalation_cd) = self.waiters_autonomics(&waiters);
        let backlog_of = |f: u32| {
            self.cfg
                .eq3_backlog_ns(self.clusters[cluster as usize].fimm_read_backlog_pages(f))
        };
        if max - min <= 1 && waiters.len() >= n_fimms * 2 {
            // All FIMMs look equally stalled: escalate (§4.2) — but only
            // if every FIMM really holds stalled work, and at most once
            // per cooldown window per cluster.
            if (0..n_fimms as u32).all(|f| backlog_of(f) > sla)
                && self
                    .auto
                    .register_escalation_with_cooldown(cluster, now, escalation_cd)
            {
                for &w in &waiters {
                    self.reqs[w as usize].escalate = true;
                }
            }
            return;
        }
        let laggard = counts.iter().position(|&c| c == max).unwrap_or(0) as u32;
        if backlog_of(laggard) <= sla {
            return;
        }
        let min_other = (0..n_fimms as u32)
            .filter(|&f| f != laggard)
            .map(|f| self.clusters[cluster as usize].fimm_read_backlog_pages(f))
            .min()
            .unwrap_or(0);
        let laggard_backlog = self.clusters[cluster as usize].fimm_read_backlog_pages(laggard);
        if (laggard_backlog as f64)
            < self.cfg.autonomic.laggard_imbalance * (min_other.max(1) as f64)
        {
            return;
        }
        // Repair traffic in progress on this FIMM: the stall is our own
        // doing, not a layout problem.
        if self.clusters[cluster as usize].pending_prog_pages[laggard as usize] > 0 {
            return;
        }
        if !self
            .auto
            .register_laggard_with_cooldown(cluster, laggard, now, laggard_cd)
        {
            return;
        }
        for &w in &waiters {
            let rs = &mut self.reqs[w as usize];
            if rs.locs.first().map(|l| l.fimm) == Some(laggard) {
                rs.laggard_fimm = Some(laggard);
            }
        }
    }

    fn on_ep_granted(&mut self, now: SimTime, r: u32) {
        let wait_since = self.reqs[r as usize].wait_since;
        self.reqs[r as usize].bd.switch_stall += now - wait_since;
        let (op, pages) = {
            let rs = &self.reqs[r as usize];
            (rs.op, rs.pages)
        };
        let bytes = self.down_bytes(op, pages);
        let s = self.switch_of(r);
        let p = self.port_of(r);
        let res = self.switches[s].downlinks[p].down.transmit(now, bytes);
        self.reqs[r as usize].bd.pcie_wait += res.wait;
        let arrive = self.switches[s].downlinks[p].down.arrival(res.end);
        self.queue.push(arrive, Ev::ArriveEp(r));
    }

    fn on_arrive_ep(&mut self, now: SimTime, r: u32) {
        self.reqs[r as usize].stage = Stage::AtEp;
        let s = self.switch_of(r);
        let p = self.port_of(r);
        if let Some(next) = self.switches[s].port_queues[p].release() {
            self.queue.push(now, Ev::SwGranted(next as u32));
        }
        let t = now + self.cfg.pcie.ep_device_ns;
        self.queue.push(t, Ev::EpService(r));
    }

    // ------------------------------------------------------------------
    // Flash service
    // ------------------------------------------------------------------

    fn on_ep_service(&mut self, now: SimTime, r: u32) {
        self.reqs[r as usize].stage = Stage::Flash;
        self.reqs[r as usize].flash_start = now;
        match self.reqs[r as usize].op {
            IoOp::Read => self.issue_flash_reads(now, r),
            IoOp::Write => {
                let pages = self.reqs[r as usize].pages as usize;
                let c = self.reqs[r as usize].cluster as usize;
                if self.clusters[c].wbuf_free() >= pages {
                    self.clusters[c].wbuf_used += pages;
                    self.do_write(now, r);
                } else {
                    self.reqs[r as usize].wait_since = now;
                    self.reqs[r as usize].stalled_wbuf = true;
                    self.clusters[c].wbuf_waiters.push_back(r);
                }
            }
        }
    }

    fn issue_flash_reads(&mut self, now: SimTime, r: u32) {
        let (locs, cluster) = {
            let rs = &self.reqs[r as usize];
            (rs.locs.clone(), rs.cluster)
        };
        let c = cluster as usize;
        let n_fimms = self.cfg.shape.fimms_per_cluster;

        // Group the request's pages by FIMM (pages that migrated away
        // mid-flight are served locally as a fallback).
        let mut by_fimm: Vec<Vec<triplea_fimm::FimmAddr>> = vec![Vec::new(); n_fimms as usize];
        for loc in &locs {
            let fimm = if self.cluster_global(loc.cluster) == cluster {
                loc.fimm
            } else {
                self.foreign_pages += 1;
                loc.fimm % n_fimms
            };
            by_fimm[fimm as usize].push(loc.addr);
        }

        // Eq. 3's budget and the detector debounce follow the owning
        // tenant's contract: a read for an interactive tenant trips (and
        // re-trips) laggard reshaping sooner than one for a batch tenant.
        let (sla, laggard_cd, escalation_cd) =
            self.tenant_autonomics(self.reqs[r as usize].tenant);
        let monitors =
            self.mode == ManagementMode::Autonomic && self.auto.params().laggard.monitors_latency();

        for (fimm, addrs) in by_fimm.into_iter().enumerate() {
            if addrs.is_empty() {
                continue;
            }
            for cc in hal::compose(OpKind::Read, &addrs) {
                let n = cc.cmd.page_count() as u32;
                let cmd_res = self.clusters[c].bus.command_cycle(now);
                let Some((sf, op)) =
                    self.issue_read_op(c, fimm as u32, cmd_res.end, cc.package, &cc.cmd)
                else {
                    // Every module in the cluster is dead: the data is
                    // unreachable. Complete the part with no flash time
                    // so the request still terminates (and is counted as
                    // unserviceable by issue_read_op).
                    self.clusters[c].pending_read_pages[fimm] += n as u64;
                    self.sample_qdepth(now, c, fimm);
                    {
                        let rs = &mut self.reqs[r as usize];
                        rs.bd.bus_wait += cmd_res.wait;
                        rs.pending_parts += 1;
                    }
                    self.queue.push(
                        cmd_res.end,
                        Ev::PartFlashDone {
                            req: r,
                            fimm: fimm as u32,
                            pages: n,
                        },
                    );
                    continue;
                };
                // A dead home module fails over to a live sibling; from
                // here on, account everything against the serving FIMM.
                let fimm = sf as usize;
                self.clusters[c].pending_read_pages[fimm] += n as u64;
                self.sample_qdepth(now, c, fimm);
                {
                    let rs = &mut self.reqs[r as usize];
                    rs.bd.bus_wait += cmd_res.wait;
                    rs.bd.die_wait += op.die_wait;
                    rs.max_die_wait = rs.max_die_wait.max(op.die_wait);
                    rs.bd.fimm_service += (cmd_res.end - cmd_res.start) + (op.end - op.start);
                    rs.pending_parts += 1;
                }
                if monitors {
                    // Eq. 3: the stalled work queued on this FIMM exceeds
                    // the SLA budget -> laggard.
                    let backlog = self.clusters[c].fimm_read_backlog_pages(fimm as u32);
                    // Waits behind background relocation programs are
                    // repair traffic, not host storage contention: skip
                    // detection while this FIMM has programs in flight.
                    let programs_pending = self.clusters[c].pending_prog_pages[fimm] > 0;
                    if !programs_pending
                        && self.cfg.eq3_backlog_ns(backlog.saturating_sub(1)) > sla
                        && op.die_wait > sla
                    {
                        let min_other = (0..self.cfg.shape.fimms_per_cluster)
                            .filter(|&f| f != fimm as u32)
                            .map(|f| self.clusters[c].fimm_read_backlog_pages(f))
                            .min()
                            .unwrap_or(0);
                        let imbalanced = backlog as f64
                            >= self.cfg.autonomic.laggard_imbalance * (min_other.max(1) as f64);
                        if imbalanced {
                            // One FIMM holds the stalled work: reshape
                            // its data onto the quiet siblings (§4.2).
                            if self.auto.register_laggard_with_cooldown(
                                cluster,
                                fimm as u32,
                                now,
                                laggard_cd,
                            ) {
                                self.reqs[r as usize].laggard_fimm = Some(fimm as u32);
                            }
                        } else if self.cfg.eq3_backlog_ns(min_other) > sla
                            && self.auto.register_escalation_with_cooldown(
                                cluster,
                                now,
                                escalation_cd,
                            )
                        {
                            // Every FIMM is equally backlogged: reshaping
                            // cannot help, escalate to inter-cluster
                            // migration (§4.2, "all the FIMMs are
                            // laggards").
                            self.reqs[r as usize].escalate = true;
                        }
                    }
                }
                self.queue.push(
                    op.end,
                    Ev::PartFlashDone {
                        req: r,
                        fimm: fimm as u32,
                        pages: n,
                    },
                );
            }
        }
    }

    fn on_part_flash_done(&mut self, now: SimTime, r: u32, fimm: u32, pages: u32) {
        let c = self.reqs[r as usize].cluster as usize;
        self.clusters[c].pending_read_pages[fimm as usize] -= pages as u64;
        self.sample_qdepth(now, c, fimm as usize);
        let bytes = pages as u64 * self.page_bytes();
        let res = self.clusters[c].bus.transfer(now, bytes);
        {
            let rs = &mut self.reqs[r as usize];
            rs.bd.bus_wait += res.wait;
            rs.bd.fimm_service += res.end - res.start;
        }
        self.queue.push(res.end, Ev::PartDataDone(r));
    }

    fn on_part_data_done(&mut self, now: SimTime, r: u32) {
        self.reqs[r as usize].pending_parts -= 1;
        if self.reqs[r as usize].pending_parts > 0 {
            return;
        }
        if self.mode == ManagementMode::Autonomic {
            self.autonomic_read_complete(now, r);
        }
        self.respond(now, r);
    }

    // ------------------------------------------------------------------
    // Autonomic management
    // ------------------------------------------------------------------

    fn autonomic_read_complete(&mut self, now: SimTime, r: u32) {
        let (laggard, escalate, max_die_wait, flash_start, pages) = {
            let rs = &self.reqs[r as usize];
            (
                rs.laggard_fimm,
                rs.escalate,
                rs.max_die_wait,
                rs.flash_start,
                rs.pages,
            )
        };
        // Throttle: relocation programs are expensive (t_PROG each); cap
        // how much background reshaping can be in flight at once.
        if self.auto.inflight_pages() >= self.cfg.autonomic.max_inflight_reloc_pages {
            return;
        }
        if let Some(f) = laggard {
            // Act only on requests that really stalled on that FIMM, and
            // only while the stall is not explained by repair programs.
            // The reshape gate uses the owner's budget: an interactive
            // tenant's stall clears a lower bar than a batch tenant's.
            let (sla, _, _) = self.tenant_autonomics(self.reqs[r as usize].tenant);
            let cl = self.reqs[r as usize].cluster as usize;
            if max_die_wait > sla && self.clusters[cl].pending_prog_pages[f as usize] == 0 {
                self.reshape_request_pages(now, r, f);
            }
            return;
        }
        let t_latency = now - flash_start;
        let cluster = self.reqs[r as usize].cluster as usize;
        let bus_util = self.clusters[cluster].bus.windowed_utilization(now);
        let bus_busy = bus_util >= self.cfg.autonomic.hot_bus_threshold;
        // A cluster currently absorbing relocation programs looks busy
        // because of repair traffic; defer judgement until it drains.
        let repairing = self.clusters[cluster]
            .pending_prog_pages
            .iter()
            .any(|&p| p > 0);
        let hot = max_die_wait == 0
            && bus_busy
            && !repairing
            && t_latency >= self.cfg.eq1_threshold_ns(pages);
        self.trace
            .with_scope(TraceScope::cluster(cluster as u32))
            .emit(|| TraceEventKind::DetectorSample {
                bus_util_milli: (bus_util * 1000.0) as u32,
                latency_ns: t_latency,
                hot,
            });
        if hot {
            self.auto.stats.hot_detections += 1;
        }
        if hot || escalate {
            self.start_migration(now, r);
        }
    }

    /// Intra-cluster data-layout reshaping (paper §4.2, Figure 8): move
    /// this request's pages off the laggard FIMM onto the least-loaded
    /// sibling, using shadow cloning (the data just arrived at the EP).
    fn reshape_request_pages(&mut self, now: SimTime, r: u32, laggard: u32) {
        let (lpn, pages, cluster) = {
            let rs = &self.reqs[r as usize];
            (rs.lpn, rs.pages, rs.cluster)
        };
        let c = cluster as usize;
        let cluster_id = self.clusters[c].id;
        let on_laggard: Vec<u64> = (0..pages as u64)
            .map(|i| lpn.0 + i)
            .filter(|&l| {
                let loc = self.ftl.locate(LogicalPage(l));
                self.cluster_global(loc.cluster) == cluster && loc.fimm == laggard
            })
            .collect();
        let claimed = self.auto.claim_pages(on_laggard);
        if claimed.is_empty() {
            return;
        }
        let pages: Vec<RelocPage> = claimed
            .iter()
            .map(|&l| RelocPage {
                lpn: l,
                old: self.ftl.locate(LogicalPage(l)),
                new: None,
            })
            .collect();
        let n = pages.len() as u32;
        let reloc_id = self.relocs.len() as u32;
        self.relocs.push(Reloc {
            pages,
            kind: RelocKind::Reshape,
            remaining: n,
        });
        self.auto.stats.pages_reshaped += n as u64;
        let target = self.clusters[c].least_loaded_fimm(now, Some(laggard));
        self.trace
            .with_scope(TraceScope::cluster(cluster))
            .emit(|| TraceEventKind::ReshapeBegin {
                target_fimm: target,
                pages: n,
            });
        for idx in 0..n {
            self.program_relocated_page(now, reloc_id, idx, cluster, cluster_id, target);
        }
    }

    /// Issues the bus transfer + program that lands one relocated page on
    /// `fimm` of cluster `cluster`. The FTL is *not* remapped yet — the
    /// clone-then-unlink commit happens when the program completes
    /// ([`Engine::on_mig_page_done`]), so readers keep using the original
    /// copy in the meantime.
    fn program_relocated_page(
        &mut self,
        now: SimTime,
        reloc: u32,
        idx: u32,
        cluster: u32,
        cluster_id: ClusterId,
        fimm: u32,
    ) {
        let lpn = self.relocs[reloc as usize].pages[idx as usize].lpn;
        let loc = match self.ftl.migrate_prepare(LogicalPage(lpn), cluster_id, fimm) {
            Ok(loc) => loc,
            Err(FtlError::OutOfSpace { .. }) => {
                self.run_gc(now, cluster, fimm);
                match self.ftl.migrate_prepare(LogicalPage(lpn), cluster_id, fimm) {
                    Ok(loc) => loc,
                    Err(_) => {
                        // Give up on this page; account the reloc slot.
                        self.finish_reloc_page(reloc, idx as usize);
                        return;
                    }
                }
            }
            Err(_) => {
                // Any other allocation failure (e.g. the destination
                // module died between pick and prepare): abandon this
                // page's relocation. The original mapping is untouched,
                // so readers lose nothing.
                self.finish_reloc_page(reloc, idx as usize);
                return;
            }
        };
        self.relocs[reloc as usize].pages[idx as usize].new = Some(loc);
        let c = cluster as usize;
        let pb = self.page_bytes();
        let res = self.clusters[c].bus.transfer(now, pb);
        match self.clusters[c].fimms[fimm as usize].begin_op(
            res.end,
            loc.addr.package,
            &FlashCommand::program(loc.addr.page),
        ) {
            Ok(op) => {
                self.clusters[c].relocs_in += 1;
                self.clusters[c].pending_prog_pages[fimm as usize] += 1;
                self.queue.push(
                    op.end,
                    Ev::MigPageDone {
                        reloc,
                        idx,
                        cluster,
                        fimm,
                    },
                );
            }
            Err(e) => {
                // The clone's program failed mid-copy (bad block or dead
                // module): roll the migration of this page back. The
                // original mapping was never touched — clone-then-unlink
                // commits only on program completion — so readers lose
                // nothing; just discard the clone and close accounting.
                if matches!(e, FlashError::ProgramFailed(_)) {
                    self.ftl.quarantine_block(loc);
                }
                self.ftl.migrate_abort(LogicalPage(lpn), loc);
                self.relocs[reloc as usize].pages[idx as usize].new = None;
                self.faults.migration_rollbacks += 1;
                self.trace
                    .with_scope(TraceScope::fimm(cluster, fimm))
                    .emit(|| TraceEventKind::RelocRollback { lpn });
                self.finish_reloc_page(reloc, idx as usize);
            }
        }
    }

    fn finish_reloc_page(&mut self, reloc: u32, idx: usize) {
        let rl = &mut self.relocs[reloc as usize];
        let lpn = rl.pages[idx].lpn;
        if rl.remaining == 0 {
            // The relocation was already torn down (power cut); nothing
            // left to account.
            return;
        }
        rl.remaining -= 1;
        let done = rl.remaining == 0;
        let kind = rl.kind;
        self.auto.release_pages(&[lpn]);
        if done && kind == RelocKind::Migration {
            self.auto.stats.migrations_completed += 1;
        }
    }

    /// Inter-cluster autonomic data migration (paper §4.1, Figure 7):
    /// clone the hot extent to a cold sibling cluster under the same
    /// switch, overlapping with the data's journey to the host (shadow
    /// cloning), then unlink the original.
    fn start_migration(&mut self, now: SimTime, r: u32) {
        let (lpn, pages, cluster) = {
            let rs = &self.reqs[r as usize];
            (rs.lpn, rs.pages, rs.cluster)
        };
        let src_id = self.clusters[cluster as usize].id;
        let extent = self.auto.params().migration_extent_pages.max(pages) as u64;
        let base = lpn.0 - lpn.0 % extent;
        let limit = self.cfg.shape.total_pages();

        let candidates: Vec<u64> = (base..(base + extent).min(limit))
            .filter(|&l| {
                let loc = self.ftl.locate(LogicalPage(l));
                self.cluster_global(loc.cluster) == cluster
            })
            .collect();
        let claimed = self.auto.claim_pages(candidates);
        if claimed.is_empty() {
            return;
        }
        let topo = self.cfg.shape.topology;
        let dst = {
            let clusters = &self.clusters;
            self.auto.pick_cold_sibling(
                &topo,
                src_id,
                |g| clusters[g as usize].bus.windowed_utilization(now),
                |g| clusters[g as usize].total_erases(),
            )
        };
        let Some(dst_id) = dst else {
            self.auto.release_pages(&claimed);
            return;
        };
        self.auto.stats.migrations_started += 1;
        self.auto.stats.pages_migrated += claimed.len() as u64;
        let dst_global = topo.global_index(dst_id);
        self.trace
            .with_scope(TraceScope::cluster(cluster))
            .emit(|| TraceEventKind::MigrationBegin {
                dst_cluster: dst_global,
                pages: claimed.len() as u32,
            });

        // Shadow cloning: the request's own pages already sit in the EP;
        // every other extent page (and, in naive mode, all of them) must
        // be re-read from the hot cluster first, stealing bus and die
        // time from foreground I/O (the Figure 16b vs 16c ablation).
        let naive = self.auto.params().naive_migration;
        let req_range = lpn.0..lpn.0 + pages as u64;
        let c = cluster as usize;
        let mut t_ready = now;
        let pb = self.page_bytes();
        for &l in &claimed {
            let in_ep = !naive && req_range.contains(&l);
            if in_ep {
                continue;
            }
            let loc = self.ftl.locate(LogicalPage(l));
            // Reserve the bus and the die at issue time: busy totals are
            // exact and foreground traffic interleaves FIFO, instead of
            // stalling behind idle-but-reserved busy-until gaps.
            let xfer = self.clusters[c].bus.transfer(now, pb);
            if let Some((_, op)) = self.issue_read_op(
                c,
                loc.fimm,
                now,
                loc.addr.package,
                &FlashCommand::read(loc.addr.page),
            ) {
                t_ready = t_ready.max(op.end);
            }
            t_ready = t_ready.max(xfer.end);
        }

        let reloc_pages: Vec<RelocPage> = claimed
            .iter()
            .map(|&l| RelocPage {
                lpn: l,
                old: self.ftl.locate(LogicalPage(l)),
                new: None,
            })
            .collect();
        let reloc_id = self.relocs.len() as u32;
        self.relocs.push(Reloc {
            pages: reloc_pages,
            kind: RelocKind::Migration,
            remaining: claimed.len() as u32,
        });

        // Peer-to-peer hop: source EP -> switch -> destination EP.
        let s = (cluster / topo.clusters_per_switch) as usize;
        let src_port = (cluster % topo.clusters_per_switch) as usize;
        let dst_port = (dst_global % topo.clusters_per_switch) as usize;
        let bytes = self.wire_bytes(claimed.len() as u32);
        let up = self.switches[s].downlinks[src_port]
            .up
            .transmit(t_ready, bytes);
        let up_arrive = self.switches[s].downlinks[src_port].up.arrival(up.end);
        let down = self.switches[s].downlinks[dst_port]
            .down
            .transmit(up_arrive + self.cfg.pcie.switch_route_ns, bytes);
        let arrive = self.switches[s].downlinks[dst_port].down.arrival(down.end);

        self.queue.push(arrive, Ev::MigArrive(reloc_id));
        self.mig_dst.push((reloc_id, dst_global));
    }

    fn on_mig_arrive(&mut self, now: SimTime, m: u32) {
        // A migration whose destination record is missing was torn down
        // by a power cut between transfer and arrival: treat every page
        // as aborted (the originals were never unlinked).
        let Some(dst_global) = self
            .mig_dst
            .iter()
            .find(|(id, _)| *id == m)
            .map(|(_, d)| *d)
        else {
            let n = self.relocs[m as usize].pages.len();
            for idx in 0..n {
                self.finish_reloc_page(m, idx);
            }
            return;
        };
        let dst_id = self.clusters[dst_global as usize].id;
        let n = self.relocs[m as usize].pages.len() as u32;
        for idx in 0..n {
            let fimm = self.clusters[dst_global as usize].least_loaded_fimm(now, None);
            self.program_relocated_page(now, m, idx, dst_global, dst_id, fimm);
        }
    }

    fn on_mig_page_done(&mut self, now: SimTime, reloc: u32, idx: u32, cluster: u32, fimm: u32) {
        self.clusters[cluster as usize].pending_prog_pages[fimm as usize] -= 1;
        // Clone-then-unlink: the copy is durable, switch readers over
        // (unless a host write superseded the data mid-clone).
        let page = self.relocs[reloc as usize].pages[idx as usize];
        if let Some(new_loc) = page.new {
            self.ftl
                .migrate_commit(LogicalPage(page.lpn), new_loc, page.old);
            self.trace
                .with_scope(TraceScope::fimm(cluster, fimm))
                .emit(|| TraceEventKind::RelocCommit { lpn: page.lpn });
        }
        self.maybe_gc(now, cluster, fimm);
        self.finish_reloc_page(reloc, idx as usize);
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    fn do_write(&mut self, now: SimTime, r: u32) {
        let (lpn, pages, cluster, stalled) = {
            let rs = &self.reqs[r as usize];
            (rs.lpn, rs.pages, rs.cluster, rs.stalled_wbuf)
        };
        let c = cluster as usize;
        let cluster_id = self.clusters[c].id;
        let redirect = self.mode == ManagementMode::Autonomic && stalled;
        for i in 0..pages as u64 {
            let l = LogicalPage(lpn.0 + i);
            let mut target = if redirect {
                // §4.2: stalled writes are redirected to adjacent FIMMs
                // within the same cluster.
                let f = self.clusters[c].least_loaded_fimm(now, None);
                self.auto.stats.write_redirects += 1;
                self.trace
                    .with_scope(TraceScope::cluster(cluster))
                    .emit(|| TraceEventKind::WriteRedirect { target_fimm: f });
                Some((cluster_id, f))
            } else {
                None
            };
            let mut attempts = 0;
            let programmed = loop {
                let loc = match self.ftl.write_alloc(l, target) {
                    Ok(loc) => loc,
                    Err(FtlError::OutOfSpace { cluster: cid, fimm }) => {
                        let g = self.cluster_global(cid);
                        self.run_gc(now, g, fimm);
                        match self.ftl.write_alloc(l, target) {
                            Ok(loc) => loc,
                            // End of life: GC reclaimed nothing (every
                            // block retired or still live).
                            Err(_) => break None,
                        }
                    }
                    // Any other allocation failure means the page cannot
                    // be placed; the write is dropped and counted, not
                    // panicked on — injected faults must surface as
                    // degraded service, never as a crash.
                    Err(_) => break None,
                };
                let tc = self.cluster_global(loc.cluster) as usize;
                let pb = self.page_bytes();
                let res = self.clusters[tc].bus.transfer(now, pb);
                match self.clusters[tc].fimms[loc.fimm as usize].begin_op(
                    res.end,
                    loc.addr.package,
                    &FlashCommand::program(loc.addr.page),
                ) {
                    Ok(op) => break Some((loc, tc, op)),
                    Err(e) => {
                        // Hard program failure or dead module: quarantine
                        // the grown bad block and redirect the page to a
                        // live sibling FIMM (retrying write_alloc remaps
                        // and invalidates the failed page, so metadata
                        // stays consistent).
                        if matches!(e, FlashError::ProgramFailed(_)) {
                            self.ftl.quarantine_block(loc);
                        }
                        self.faults.fault_write_redirects += 1;
                        attempts += 1;
                        if attempts > WRITE_REDIRECT_LIMIT {
                            break None;
                        }
                        let f = self.clusters[tc].least_loaded_fimm(now, Some(loc.fimm));
                        target = Some((loc.cluster, f));
                    }
                }
            };
            let Some((loc, tc, op)) = programmed else {
                // A real array fails the write; we count it and release
                // the buffered page.
                self.dropped_writes += 1;
                self.clusters[c].wbuf_used -= 1;
                continue;
            };
            self.clusters[tc].pending_prog_pages[loc.fimm as usize] += 1;
            self.queue.push(
                op.end,
                Ev::WriteProgrammed {
                    cluster: tc as u32,
                    fimm: loc.fimm,
                    pages: 1,
                    buf_cluster: cluster,
                },
            );
        }
        // Writes acknowledge as soon as they are buffered (paper §4.2).
        self.respond(now, r);
    }

    fn on_write_programmed(
        &mut self,
        now: SimTime,
        cluster: u32,
        fimm: u32,
        pages: u32,
        buf_cluster: u32,
    ) {
        // Buffer credit returns to the admitting cluster; the program
        // bookkeeping belongs to the cluster the page landed on.
        let b = buf_cluster as usize;
        let c = cluster as usize;
        self.clusters[b].wbuf_used -= pages as usize;
        self.clusters[c].pending_prog_pages[fimm as usize] -= pages as u64;
        self.maybe_gc(now, cluster, fimm);
        // Admit parked writes that now fit.
        while let Some(&head) = self.clusters[b].wbuf_waiters.front() {
            let need = self.reqs[head as usize].pages as usize;
            if self.clusters[b].wbuf_free() < need {
                break;
            }
            self.clusters[b].wbuf_waiters.pop_front();
            self.clusters[b].wbuf_used += need;
            let wait_since = self.reqs[head as usize].wait_since;
            self.reqs[head as usize].bd.wbuf_wait += now - wait_since;
            self.do_write(now, head);
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    fn maybe_gc(&mut self, now: SimTime, cluster: u32, fimm: u32) {
        let id = self.clusters[cluster as usize].id;
        if self.ftl.needs_gc(id, fimm, self.cfg.gc_threshold_blocks) {
            self.run_gc(now, cluster, fimm);
            return;
        }
        // Opportunistic GC (§8 / refs [23, 24]): reclaim ahead of the
        // hard threshold while the cluster's bus is quiet, so cleaning
        // never lands on the critical path of foreground I/O.
        if self.cfg.opportunistic_gc
            && self.clusters[cluster as usize]
                .bus
                .windowed_utilization(now)
                < 0.10
            && self
                .ftl
                .needs_gc(id, fimm, self.cfg.gc_threshold_blocks * 8)
        {
            self.run_gc(now, cluster, fimm);
        }
    }

    /// Runs one GC unit on a FIMM: metadata immediately, timing as
    /// background bus/die reservations (the paper defers sophisticated
    /// array-level GC scheduling to future work, §6.7).
    fn run_gc(&mut self, now: SimTime, cluster: u32, fimm: u32) {
        let id = self.clusters[cluster as usize].id;
        if self.clusters[cluster as usize].fimms[fimm as usize].is_dead_at(now) {
            return; // a dead module can neither be read nor erased
        }
        let Some(work) = self.ftl.gc_pick(id, fimm) else {
            return;
        };
        let c = cluster as usize;
        let f = fimm as usize;
        let valid = work.valid.clone();
        let pb = self.page_bytes();
        for lpn in valid {
            let old = self.ftl.locate(lpn);
            match self.ftl.gc_rewrite(lpn, &work) {
                Ok(Some(new_loc)) => {
                    // Read the live page out, move it over the bus, and
                    // program its new home. All reservations are made at
                    // issue time (FIFO per resource) — the die queues
                    // naturally serialise the read before the erase below.
                    let rd_end = match self.issue_read_op(
                        c,
                        f as u32,
                        now,
                        old.addr.package,
                        &FlashCommand::read(old.addr.page),
                    ) {
                        Some((_, rd)) => rd.end,
                        None => now,
                    };
                    let _xfer = self.clusters[c].bus.transfer(now, 2 * pb);
                    if let Err(e) = self.clusters[c].fimms[new_loc.fimm as usize].begin_op(
                        rd_end,
                        new_loc.addr.package,
                        &FlashCommand::program(new_loc.addr.page),
                    ) {
                        // The rewrite's target block went bad mid-GC:
                        // retire it so the allocator stops handing out
                        // its remaining pages.
                        if matches!(e, FlashError::ProgramFailed(_)) {
                            self.ftl.quarantine_block(new_loc);
                        }
                    }
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
        let erase_addr = triplea_flash::PageAddr {
            die: work.die,
            plane: self.cfg.shape.flash.plane_of_block(work.block),
            block: work.block,
            page: 0,
        };
        match self.clusters[c].fimms[f].begin_op(now, work.package, &FlashCommand::erase(erase_addr))
        {
            Err(FlashError::EraseFailed(_)) => {
                // Injected erase hard-failure: the victim is a grown bad
                // block. Quarantine it instead of recycling so it never
                // returns to the free pool.
                self.faults.gc_failed_erases += 1;
                self.ftl.gc_finish_failed(&work);
            }
            // A natural worn-out refusal keeps the seed semantics: the
            // allocator retires the block itself on recycle.
            _ => self.ftl.gc_finish(&work),
        }
    }

    // ------------------------------------------------------------------
    // Response path
    // ------------------------------------------------------------------

    fn respond(&mut self, now: SimTime, r: u32) {
        self.reqs[r as usize].stage = Stage::Responding;
        let (op, pages, cluster) = {
            let rs = &self.reqs[r as usize];
            (rs.op, rs.pages, rs.cluster)
        };
        let bytes = self.resp_bytes(op, pages);
        let s = self.switch_of(r);
        let p = self.port_of(r);
        let t0 = now + self.cfg.pcie.ep_device_ns;
        let res = self.switches[s].downlinks[p].up.transmit(t0, bytes);
        self.reqs[r as usize].bd.pcie_wait += res.wait;
        // The EP buffer entry frees once the response is on the wire.
        self.queue.push(res.end, Ev::EpFree(cluster));
        let arrive = self.switches[s].downlinks[p].up.arrival(res.end);
        self.queue.push(arrive, Ev::RespAtSw(r));
    }

    fn on_ep_free(&mut self, now: SimTime, cluster: u32) {
        if let Some(next) = self.clusters[cluster as usize].ep.queue.release() {
            self.queue.push(now, Ev::EpGranted(next as u32));
        }
    }

    fn on_resp_at_sw(&mut self, now: SimTime, r: u32) {
        let (op, pages) = {
            let rs = &self.reqs[r as usize];
            (rs.op, rs.pages)
        };
        let bytes = self.resp_bytes(op, pages);
        let s = self.switch_of(r);
        let t0 = now + self.cfg.pcie.switch_route_ns;
        let res = self.switches[s].uplink.up.transmit(t0, bytes);
        self.reqs[r as usize].bd.pcie_wait += res.wait;
        let arrive = self.switches[s].uplink.up.arrival(res.end);
        self.queue.push(arrive, Ev::RespAtRc(r));
    }

    fn on_resp_at_rc(&mut self, now: SimTime, r: u32) {
        let t = now + self.cfg.pcie.rc_route_ns;
        self.queue.push(t, Ev::Complete(r));
    }

    fn on_complete(&mut self, now: SimTime, r: u32) {
        let rs = &mut self.reqs[r as usize];
        debug_assert!(!rs.done, "request completed twice");
        rs.done = true;
        rs.stage = Stage::Done;
        rs.finish = now;
        let total = now - rs.submit;
        let op = rs.op;
        let submit = rs.submit;
        let bd = rs.bd;
        let cluster = rs.cluster;
        self.trace
            .with_scope(TraceScope::cluster(cluster))
            .emit(|| TraceEventKind::Complete {
                req: r,
                latency_ns: total,
            });
        self.lat.record(total);
        // Completions inside a rebuild's degraded window (module death →
        // spare in service) feed the RecoveryStats degraded-mode p99.
        if self.rebuilds.iter().any(|rb| !rb.done && rb.died <= now) {
            self.degraded_lat.record(total);
        }
        match op {
            IoOp::Read => {
                self.rlat.record(total);
                self.reads_done += 1;
            }
            IoOp::Write => {
                self.wlat.record(total);
                self.writes_done += 1;
            }
        }
        self.bd_sum.accumulate(&bd);
        // Attribute queueing upstream of the cluster to its root cause,
        // proportionally to this request's own downstream waits — the
        // paper's Table 2 reports exactly this decomposition (its queue
        // stall column equals link-contention + storage-contention).
        let own_link = bd.link_contention();
        let own_storage = bd.storage_contention();
        let own = own_link + own_storage;
        if own > 0 {
            let q = bd.queue_stall() as u128;
            self.attr_link += (q * own_link as u128 / own as u128) as u64;
            self.attr_storage += (q * own_storage as u128 / own as u128) as u64;
        }
        if self.cfg.collect_series {
            self.series.push(submit, total as f64 / 1_000.0);
        }
        self.completed += 1;
        self.last_complete = self.last_complete.max(now);
        if let Some(log) = &mut self.completion_log {
            log.push((r, now, bd));
        }
        if self.front.is_some() {
            self.record_tenant_complete(r, total);
            self.pump_tenants(now);
        } else if let Some(next) = self.rc.queue.release() {
            self.queue.push(now, Ev::RcGranted(next as u32));
        }
    }

    /// Completion-side tenant accounting: record the latency against
    /// the owner's instruments, count an SLA violation when it exceeds
    /// the owner's p99 target, and free the admission slot. The freed
    /// root-complex credit is then re-granted through the arbiter
    /// ([`Engine::pump_tenants`]), never by the queue's own FIFO —
    /// which tenant mode keeps empty.
    fn record_tenant_complete(&mut self, r: u32, total: Nanos) {
        let (tenant, op) = {
            let rs = &self.reqs[r as usize];
            (rs.tenant, rs.op)
        };
        let sla = self
            .cfg
            .tenants
            .get(tenant)
            .expect("run_verified validated tenant ids")
            .sla_p99_ns;
        let front = self.front.as_mut().expect("tenant mode");
        let acc = &mut front.lanes[tenant.index()];
        acc.lat.record(total);
        acc.completed += 1;
        match op {
            IoOp::Read => {
                acc.rlat.record(total);
                acc.reads += 1;
            }
            IoOp::Write => {
                acc.wlat.record(total);
                acc.writes += 1;
            }
        }
        if total > sla {
            acc.violations += 1;
        }
        front.arbiter.complete(tenant);
        let handoff = self.rc.queue.release();
        debug_assert!(handoff.is_none(), "tenant mode keeps the RC FIFO empty");
    }

    /// Harvests the recorder and the per-component instruments into a
    /// [`RunTrace`]. Metric names are hierarchical and stable
    /// (`cluster.N.fimm.M.queue_depth`); every name was interned into a
    /// [`MetricId`] when the recorder was attached, so the harvest is
    /// indexed stores into a clone of that pre-built registry — no name
    /// formatting here, and the export order was fixed at intern time.
    fn harvest_trace(&self) -> Option<RunTrace> {
        let rec = self.recorder.as_ref()?;
        let ids = self.metric_ids.as_ref()?;
        let now = self.last_complete;
        let mut m = ids.registry.clone();
        m.set_counter(ids.events, self.events);
        m.set_counter(ids.completed, self.completed);
        m.set_counter(ids.dropped_writes, self.dropped_writes);
        m.set_histogram(ids.latency, &self.lat);
        m.set_histogram(ids.read_latency, &self.rlat);
        m.set_histogram(ids.write_latency, &self.wlat);
        for (cl, cids) in self.clusters.iter().zip(&ids.clusters) {
            m.set_gauge(cids.bus_utilization, cl.bus.utilization(now));
            m.set_counter(cids.bus_bytes, cl.bus.bytes_moved());
            m.set_counter(cids.served, cl.served);
            m.set_counter(cids.relocs_in, cl.relocs_in);
            m.set_counter(cids.ep_high_watermark, cl.ep.queue.high_watermark() as u64);
            for (s, &id) in cl.qdepth.iter().zip(&cids.fimm_queue_depth) {
                m.set_series(id, s, 512);
            }
        }
        for (sw, &(bytes_id, replays_id)) in self.switches.iter().zip(&ids.switches) {
            m.set_counter(
                bytes_id,
                sw.uplink.down.bytes_sent() + sw.uplink.up.bytes_sent(),
            );
            m.set_counter(
                replays_id,
                sw.uplink.down.replays() + sw.uplink.up.replays(),
            );
        }
        if let Some(front) = &self.front {
            for (acc, tids) in front.lanes.iter().zip(&ids.tenants) {
                m.set_histogram(tids.read_latency, &acc.rlat);
                m.set_histogram(tids.write_latency, &acc.wlat);
                m.set_counter(tids.completed, acc.completed);
                m.set_counter(tids.violations, acc.violations);
            }
        }
        Some(RunTrace::from_recorder(&rec.snapshot(), m))
    }

    pub(crate) fn into_report(mut self) -> RunReport {
        let mut wear = WearReport::default();
        // Retired modules (replaced by a hot spare mid-run) still carry
        // their wear, fault history, and scheduled-fault census.
        for f in self
            .clusters
            .iter()
            .flat_map(|c| c.fimms.iter())
            .chain(self.retired_fimms.iter())
        {
            wear.merge(&f.wear_report());
            let pf = f.fault_stats();
            self.faults.transient_read_faults += pf.read_transients;
            self.faults.prog_failures += pf.prog_failures;
            self.faults.erase_failures += pf.erase_failures;
            self.faults.blocks_retired_by_fault += pf.blocks_force_retired;
            for &(at, kind) in f.scheduled_faults() {
                if at <= self.last_complete {
                    match kind {
                        FimmFaultKind::Dead => self.faults.fimm_deaths += 1,
                        FimmFaultKind::Slowdown(_) => self.faults.fimm_slowdowns += 1,
                    }
                }
            }
        }
        self.recovery.degraded_p99_ns = self.degraded_lat.percentile(0.99);
        for sw in &self.switches {
            for link in std::iter::once(&sw.uplink).chain(sw.downlinks.iter()) {
                self.faults.tlp_replays += link.down.replays() + link.up.replays();
            }
        }
        let tenants = match &self.front {
            Some(front) => front
                .lanes
                .iter()
                .zip(self.cfg.tenants.specs())
                .enumerate()
                .map(|(i, (acc, spec))| TenantStats {
                    tenant: i as u32,
                    weight: spec.weight,
                    sla_p99_ns: spec.sla_p99_ns,
                    completed: acc.completed,
                    reads: acc.reads,
                    writes: acc.writes,
                    violations: acc.violations,
                    p50_ns: acc.lat.percentile(0.50),
                    p99_ns: acc.lat.percentile(0.99),
                    read_p99_ns: acc.rlat.percentile(0.99),
                    write_p99_ns: acc.wlat.percentile(0.99),
                    mean_ns: acc.lat.mean().round() as u64,
                    max_ns: acc.lat.max(),
                })
                .collect(),
            None => Vec::new(),
        };
        RunReport {
            mode: self.mode,
            completed: self.completed,
            reads: self.reads_done,
            writes: self.writes_done,
            first_submit: if self.first_submit == SimTime::MAX {
                SimTime::ZERO
            } else {
                self.first_submit
            },
            last_complete: self.last_complete,
            latency: self.lat,
            read_latency: self.rlat,
            write_latency: self.wlat,
            bd_sum: self.bd_sum,
            attr_link: self.attr_link,
            attr_storage: self.attr_storage,
            series: self.series,
            per_cluster_requests: self.clusters.iter().map(|c| c.served).collect(),
            per_cluster_relocs_in: self.clusters.iter().map(|c| c.relocs_in).collect(),
            dropped_writes: self.dropped_writes,
            autonomic: self.auto.stats,
            ftl: self.ftl.stats(),
            wear,
            faults: self.faults,
            recovery: self.recovery,
            tenants,
            events: self.events,
        }
    }
}

/// Convenience: nanoseconds between two instants as `Nanos`.
#[allow(dead_code)]
fn dur(a: SimTime, b: SimTime) -> Nanos {
    b - a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TraceRequest;

    fn read_at(us: u64, lpn: u64) -> TraceRequest {
        TraceRequest::new(SimTime::from_us(us), IoOp::Read, LogicalPage(lpn), 1)
    }

    fn write_at(us: u64, lpn: u64) -> TraceRequest {
        TraceRequest::new(SimTime::from_us(us), IoOp::Write, LogicalPage(lpn), 1)
    }

    /// Reads that recycle a dense hot region of cluster 0 at a rate the
    /// shared ONFi bus cannot sustain: the canonical hot-cluster
    /// scenario. Consecutive pages stripe across every FIMM, package and
    /// die, so the bus (not the dies) is the bottleneck.
    fn hot_read_trace(n: u64, gap_ns: u64) -> Trace {
        (0..n)
            .map(|i| {
                TraceRequest::new(
                    SimTime::from_nanos(i * gap_ns),
                    IoOp::Read,
                    LogicalPage(i % 2_048),
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn single_read_latency_is_physical() {
        let report = Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic)
            .run(&Trace::new(vec![read_at(0, 0)]));
        assert_eq!(report.completed(), 1);
        let us = report.mean_latency_us();
        // ~26us array read + 2.66us DMA + ~3.5us of network/routing
        assert!(us > 28.0 && us < 45.0, "unexpected read latency {us}us");
    }

    #[test]
    fn single_write_acks_before_program_completes() {
        let report = Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic)
            .run(&Trace::new(vec![write_at(0, 0)]));
        assert_eq!(report.completed(), 1);
        let us = report.mean_latency_us();
        // Buffered ack: far less than the 601us program time.
        assert!(us < 100.0, "write ack took {us}us");
        assert_eq!(report.ftl_stats().host_writes, 1);
    }

    #[test]
    fn deterministic_replay() {
        let trace = hot_read_trace(2_000, 700);
        let a = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
        let b = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.mean_latency_us(), b.mean_latency_us());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(
            a.autonomic_stats().migrations_started,
            b.autonomic_stats().migrations_started
        );
    }

    #[test]
    fn hot_cluster_creates_link_contention_in_baseline() {
        let report = Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic)
            .run(&hot_read_trace(20_000, 1_400));
        assert_eq!(report.completed(), 20_000);
        assert!(
            report.avg_link_contention_us() > 1.0,
            "expected link contention, got {}us",
            report.avg_link_contention_us()
        );
        // All requests landed on cluster 0.
        assert_eq!(report.per_cluster_requests()[0], 20_000);
        assert_eq!(report.hot_cluster_count(0.1), 1);
    }

    #[test]
    fn autonomic_migrates_and_beats_baseline() {
        let trace = hot_read_trace(20_000, 1_400);
        let base = Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic).run(&trace);
        let aaa = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
        assert_eq!(base.completed(), aaa.completed());
        let stats = aaa.autonomic_stats();
        assert!(stats.hot_detections > 0, "no hot clusters detected");
        assert!(stats.migrations_started > 0, "no migrations started");
        assert!(stats.pages_migrated > 0);
        assert!(
            aaa.mean_latency_us() < base.mean_latency_us(),
            "triple-a {}us !< baseline {}us",
            aaa.mean_latency_us(),
            base.mean_latency_us()
        );
        assert!(
            aaa.avg_link_contention_us() < base.avg_link_contention_us(),
            "link contention not reduced"
        );
    }

    #[test]
    fn migration_spreads_load_across_siblings() {
        let trace = hot_read_trace(20_000, 1_400);
        let aaa = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
        // After migration, later requests route to sibling clusters of
        // switch 0 (indices 0..4 in the 2x4 small topology).
        let per = aaa.per_cluster_requests();
        let siblings: u64 = per[1..4].iter().sum();
        assert!(siblings > 0, "no requests served by sibling clusters");
        // Never across the switch boundary:
        let other_switch: u64 = per[4..].iter().sum();
        assert_eq!(other_switch, 0, "migration crossed a switch");
    }

    #[test]
    fn non_autonomic_never_migrates() {
        let report = Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic)
            .run(&hot_read_trace(4_000, 1_400));
        let stats = report.autonomic_stats();
        assert_eq!(stats.hot_detections, 0);
        assert_eq!(stats.migrations_started, 0);
        assert_eq!(stats.pages_reshaped, 0);
        assert_eq!(report.ftl_stats().migration_writes, 0);
    }

    #[test]
    fn write_burst_exercises_buffer_and_storage_contention() {
        // 200 writes into one cluster back-to-back against a small
        // 32-page buffer: it fills, and programs (601us each) back
        // things up.
        let trace: Trace = (0..200)
            .map(|i| write_at(i / 10, (i * 8) % 1_000))
            .collect();
        let mut cfg = ArrayConfig::small_test();
        cfg.write_buffer_pages = 32;
        let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
        assert_eq!(report.completed(), 200);
        assert!(
            report.avg_storage_contention_us() > 10.0,
            "expected write-buffer pressure, got {}us",
            report.avg_storage_contention_us()
        );
        assert_eq!(report.ftl_stats().host_writes, 200);
    }

    #[test]
    fn autonomic_redirects_stalled_writes() {
        let trace: Trace = (0..300).map(|i| write_at(i / 20, (i * 8) % 256)).collect();
        let mut cfg = ArrayConfig::small_test();
        cfg.write_buffer_pages = 32;
        let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
        assert!(
            aaa.autonomic_stats().write_redirects > 0,
            "no stalled writes redirected"
        );
    }

    #[test]
    fn breakdown_is_bounded_by_total_latency() {
        let trace = hot_read_trace(1_000, 800);
        let report =
            Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic).run(&trace);
        let accounted = report.avg_queue_stall_us()
            + report.avg_direct_link_wait_us()
            + report.avg_direct_storage_wait_us()
            + report.avg_fimm_service_us();
        assert!(
            accounted <= report.mean_latency_us() * 1.01,
            "breakdown {accounted}us exceeds mean {}us",
            report.mean_latency_us()
        );
        assert!(report.avg_network_us() >= 0.0);
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let report =
            Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&Trace::default());
        assert_eq!(report.completed(), 0);
        assert_eq!(report.iops(), 0.0);
    }

    #[test]
    fn rc_queue_backpressure_creates_rc_stall() {
        let mut cfg = ArrayConfig::small_test();
        cfg.pcie.rc_queue = 4;
        // 100 simultaneous reads through a 4-entry RC queue.
        let trace: Trace = (0..100).map(|i| read_at(0, i * 8)).collect();
        let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
        assert_eq!(report.completed(), 100);
        assert!(
            report.avg_rc_stall_us() > 1.0,
            "expected RC stalls, got {}us",
            report.avg_rc_stall_us()
        );
    }

    #[test]
    fn reads_and_writes_mix() {
        let trace: Trace = (0..400)
            .map(|i| {
                if i % 3 == 0 {
                    write_at(i, (i * 8) % 4_096)
                } else {
                    read_at(i, (i * 8) % 4_096)
                }
            })
            .collect();
        let report = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
        assert_eq!(report.completed(), 400);
        assert_eq!(report.reads() + report.writes(), 400);
        assert!(report.reads() > report.writes());
        assert!(report.read_latency_histogram().count() == report.reads());
        assert!(report.write_latency_histogram().count() == report.writes());
    }

    #[test]
    fn series_collection_respects_flag() {
        let trace = hot_read_trace(50, 1_000);
        let with = Array::new(
            ArrayConfig::small_test().with_series(true),
            ManagementMode::NonAutonomic,
        )
        .run(&trace);
        assert_eq!(with.series().len(), 50);
        let without = Array::new(
            ArrayConfig::small_test().with_series(false),
            ManagementMode::NonAutonomic,
        )
        .run(&trace);
        assert!(without.series().is_empty());
    }

    #[test]
    fn naive_migration_interferes_more_than_shadow() {
        let trace = hot_read_trace(20_000, 1_400);
        let mut naive_cfg = ArrayConfig::small_test();
        naive_cfg.autonomic.naive_migration = true;
        let naive = Array::new(naive_cfg, ManagementMode::Autonomic).run(&trace);
        let shadow = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
        // Naive migration re-reads everything from the hot cluster,
        // stealing bus time from foreground I/O (Fig. 16b vs 16c).
        assert!(
            naive.avg_link_contention_us() >= shadow.avg_link_contention_us(),
            "naive {} < shadow {}",
            naive.avg_link_contention_us(),
            shadow.avg_link_contention_us()
        );
    }

    #[test]
    fn mapping_cache_misses_slow_cold_lookups() {
        let mut cached = ArrayConfig::small_test();
        cached.mapping_cache_pages = 2;
        // Scatter reads over many translation pages: most lookups miss.
        let trace: Trace = (0..200)
            .map(|i| read_at(i * 50, (i * 4_096) % 200_000))
            .collect();
        let full_map =
            Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic).run(&trace);
        let dftl = Array::new(cached, ManagementMode::NonAutonomic).run(&trace);
        assert!(
            dftl.mean_latency_us() > full_map.mean_latency_us() * 1.5,
            "map misses should add a flash read: {} vs {}",
            dftl.mean_latency_us(),
            full_map.mean_latency_us()
        );
    }

    #[test]
    fn mlc_timing_slows_the_array_end_to_end() {
        // Light load so latency reflects device service, not queueing.
        let trace: Trace = (0..200).map(|i| read_at(i * 100, i % 512)).collect();
        let slc = Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic).run(&trace);
        let mut mlc_cfg = ArrayConfig::small_test();
        mlc_cfg.flash_timing = triplea_flash::FlashTiming::mlc();
        let mlc = Array::new(mlc_cfg, ManagementMode::NonAutonomic).run(&trace);
        assert!(
            mlc.mean_latency_us() > slc.mean_latency_us() * 1.3,
            "MLC reads (40us) should be visibly slower than SLC (25us): {} vs {}",
            mlc.mean_latency_us(),
            slc.mean_latency_us()
        );
    }

    #[test]
    fn end_of_life_drops_writes_instead_of_panicking() {
        // Tiny flash with endurance 2: sustained overwrites retire every
        // block; the array must degrade gracefully.
        let mut cfg = ArrayConfig::small_test();
        cfg.shape.flash.blocks_per_plane = 4;
        cfg.shape.flash.endurance = 2;
        cfg.gc_threshold_blocks = 2;
        let trace: Trace = (0..40_000)
            .map(|i| write_at(i * 10, (i % 16) * 2))
            .collect();
        let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
        assert_eq!(report.completed(), 40_000, "all requests still ack");
        assert!(
            report.dropped_writes() > 0,
            "expected end-of-life write drops"
        );
        assert!(report.wear().retired_blocks > 0, "blocks should retire");
    }

    #[test]
    fn opportunistic_gc_reclaims_ahead_of_the_hard_limit() {
        // Small flash so the free pool shrinks fast; low write rate so
        // the bus stays quiet and opportunistic GC can fire.
        let mut cfg = ArrayConfig::small_test();
        cfg.shape.flash.blocks_per_plane = 8;
        cfg.gc_threshold_blocks = 2;
        let trace: Trace = (0..20_000)
            .map(|i| write_at(i * 20, (i % 64) * 2))
            .collect();
        cfg.opportunistic_gc = true;
        let eager = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
        cfg.opportunistic_gc = false;
        let lazy = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
        assert!(
            eager.ftl_stats().gc_erases >= lazy.ftl_stats().gc_erases,
            "opportunistic mode should clean at least as much ({} vs {})",
            eager.ftl_stats().gc_erases,
            lazy.ftl_stats().gc_erases
        );
        assert!(eager.ftl_stats().gc_erases > 0);
    }

    #[test]
    fn sustained_hot_scenario_matches_paper_shape() {
        // A 2x-overloaded hot cluster, sustained long enough for
        // migration's one-time program cost to amortise. Triple-A must
        // deliver materially higher IOPS and lower latency, with link
        // contention nearly eliminated (paper Figs. 9-10).
        let trace = hot_read_trace(20_000, 1_400);
        let base = Array::new(ArrayConfig::small_test(), ManagementMode::NonAutonomic).run(&trace);
        let aaa = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
        assert!(
            aaa.iops() > base.iops() * 1.2,
            "triple-a {:.0} iops !> 1.2x baseline {:.0}",
            aaa.iops(),
            base.iops()
        );
        assert!(
            aaa.mean_latency_us() < base.mean_latency_us() * 0.7,
            "triple-a {:.0}us !< 0.7x baseline {:.0}us",
            aaa.mean_latency_us(),
            base.mean_latency_us()
        );
        assert!(
            aaa.avg_link_contention_us() < base.avg_link_contention_us() * 0.6,
            "link contention not substantially reduced"
        );
        assert!(
            aaa.avg_queue_stall_us() < base.avg_queue_stall_us(),
            "queue stalls not reduced"
        );
        // The naive-migration ablation must not beat shadow cloning.
        let mut naive_cfg = ArrayConfig::small_test();
        naive_cfg.autonomic.naive_migration = true;
        let naive = Array::new(naive_cfg, ManagementMode::Autonomic).run(&trace);
        assert!(naive.iops() <= aaa.iops() * 1.05);
    }

    /// A read/write mix long enough for the power cut to land mid-burst.
    fn mixed_trace(n: u64, gap_ns: u64) -> Trace {
        (0..n)
            .map(|i| {
                TraceRequest::new(
                    SimTime::from_nanos(i * gap_ns),
                    if i % 3 == 0 { IoOp::Write } else { IoOp::Read },
                    LogicalPage(i % 1_024),
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn power_loss_mid_run_remounts_replays_and_verifies() {
        use crate::config::PowerLossEvent;
        let mut cfg = ArrayConfig::small_test();
        cfg.faults = cfg.faults.with_power_loss(PowerLossEvent::at(1_500_000));
        let trace = mixed_trace(2_000, 1_000);
        let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
        assert!(run.integrity.is_ok(), "{:?}", run.integrity);
        let rec = run.report.recovery_stats();
        assert_eq!(rec.power_losses, 1);
        assert!(rec.remount_ns >= 2_000_000, "remount window missing");
        assert!(
            rec.lost_inflight_requests > 0,
            "a 1.5ms cut into a 2ms burst must catch work in flight"
        );
        assert!(rec.requeued_requests > 0, "future submits must re-arrive");
        // Every request either completed or was lost at the cut.
        assert_eq!(
            run.report.completed() + rec.lost_inflight_requests,
            2_000,
            "requests neither completed nor accounted as lost"
        );
        assert!(rec.journal_replayed > 0, "the journal tail should replay");
    }

    #[test]
    fn power_loss_replay_is_deterministic() {
        use crate::config::PowerLossEvent;
        let mut cfg = ArrayConfig::small_test();
        cfg.faults = cfg.faults.with_power_loss(PowerLossEvent::at(1_200_000));
        let trace = mixed_trace(1_500, 900);
        let a = Array::new(cfg.clone(), ManagementMode::Autonomic).run_verified(&trace);
        let b = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
        assert_eq!(a.report.completed(), b.report.completed());
        assert_eq!(a.report.events_processed(), b.report.events_processed());
        assert_eq!(a.report.recovery_stats(), b.report.recovery_stats());
        assert_eq!(a.report.mean_latency_us(), b.report.mean_latency_us());
    }

    #[test]
    fn hot_spare_rebuild_completes_and_reports() {
        use crate::config::FimmFaultEvent;
        let mut cfg = ArrayConfig::small_test();
        cfg.hot_spares = 1;
        cfg.faults = cfg.faults.with_fimm_event(FimmFaultEvent {
            cluster: 0,
            fimm: 0,
            at_ns: 800_000,
            kind: FimmFaultKind::Dead,
        });
        // Writes seed data across the array (including the doomed
        // module), then reads ride through the death and the rebuild.
        let trace: Trace = (0..1_500)
            .map(|i| {
                TraceRequest::new(
                    SimTime::from_nanos(i * 1_000),
                    if i < 500 { IoOp::Write } else { IoOp::Read },
                    LogicalPage(i % 512),
                    1,
                )
            })
            .collect();
        let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
        assert!(run.integrity.is_ok(), "{:?}", run.integrity);
        assert_eq!(run.report.completed(), 1_500);
        let rec = run.report.recovery_stats();
        assert_eq!(rec.rebuilds_completed, 1, "rebuild must finish");
        assert!(rec.rebuild_ns > 0, "rebuild takes simulated time");
        assert!(
            rec.degraded_p99_ns > 0,
            "completions inside the degraded window feed the p99"
        );
        // The death still shows in the fault census even though the
        // module was swapped out for the spare.
        assert_eq!(run.report.fault_stats().fimm_deaths, 1);
    }

    #[test]
    fn unused_hot_spares_change_nothing() {
        let trace = mixed_trace(800, 1_000);
        let base = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic).run(&trace);
        let mut cfg = ArrayConfig::small_test();
        cfg.hot_spares = 2;
        let spared = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
        assert_eq!(base.completed(), spared.completed());
        assert_eq!(base.events_processed(), spared.events_processed());
        assert_eq!(base.mean_latency_us(), spared.mean_latency_us());
        assert!(!spared.recovery_stats().any());
    }

    fn tenant_cfg(specs: Vec<crate::tenant::TenantSpec>) -> ArrayConfig {
        let mut cfg = ArrayConfig::small_test();
        cfg.tenants = crate::tenant::TenantConfig::new(specs);
        cfg
    }

    /// `n` requests interleaved round-robin across `t` tenants.
    fn tenant_trace(n: u64, tenants: u32, gap_ns: u64) -> Trace {
        (0..n)
            .map(|i| {
                TraceRequest::for_tenant(
                    TenantId((i % tenants as u64) as u32),
                    SimTime::from_nanos(i * gap_ns),
                    IoOp::Read,
                    LogicalPage((i * 8) % 4_096),
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn untenanted_run_reports_no_tenants() {
        let report = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic)
            .run(&hot_read_trace(200, 1_000));
        assert!(report.tenant_stats().is_empty());
        assert_eq!(report.sla_violations(), 0);
    }

    #[test]
    fn tenant_front_door_completes_everything_and_attributes_it() {
        use crate::tenant::TenantSpec;
        let cfg = tenant_cfg(vec![TenantSpec::interactive(), TenantSpec::batch()]);
        let report = Array::new(cfg, ManagementMode::Autonomic).run(&tenant_trace(2_000, 2, 1_000));
        assert_eq!(report.completed(), 2_000);
        let ts = report.tenant_stats();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].completed, 1_000);
        assert_eq!(ts[1].completed, 1_000);
        assert_eq!(ts[0].reads, 1_000);
        assert!(ts[0].p99_ns > 0 && ts[0].p99_ns >= ts[0].p50_ns);
        assert_eq!((ts[0].tenant, ts[1].tenant), (0, 1));
        assert_eq!(ts[0].weight, 8);
    }

    #[test]
    fn tenant_mode_is_deterministic() {
        use crate::tenant::TenantSpec;
        let cfg = tenant_cfg(vec![TenantSpec::interactive(), TenantSpec::batch()]);
        let trace = tenant_trace(3_000, 2, 700);
        let a = Array::new(cfg.clone(), ManagementMode::Autonomic).run(&trace);
        let b = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.tenant_stats(), b.tenant_stats());
    }

    #[test]
    fn weighted_tenant_beats_batch_under_admission_pressure() {
        use crate::tenant::TenantSpec;
        // Everything submitted at t=0 through an 8-credit root complex:
        // the weighted-fair arbiter alone decides service order, so the
        // weight-8 tenant's requests must see materially lower latency.
        let mut cfg = tenant_cfg(vec![
            TenantSpec {
                weight: 8,
                sla_p99_ns: 200_000,
                qd_limit: 64,
            },
            TenantSpec {
                weight: 1,
                sla_p99_ns: 5_000_000,
                qd_limit: 64,
            },
        ]);
        cfg.pcie.rc_queue = 8;
        let trace = tenant_trace(400, 2, 0);
        let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
        assert_eq!(report.completed(), 400);
        let ts = report.tenant_stats();
        assert!(
            ts[0].mean_ns * 3 < ts[1].mean_ns * 2,
            "weight-8 tenant {}ns !<< weight-1 tenant {}ns",
            ts[0].mean_ns,
            ts[1].mean_ns
        );
    }

    #[test]
    fn tenant_partitioning_preserves_total_completions() {
        use crate::tenant::TenantSpec;
        // The same request stream, split across 1 / 2 / 4 equal-weight
        // lanes with generous queue depths, must complete identically —
        // partitioning renames requests, it does not lose them.
        let base = Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic)
            .run(&tenant_trace(1_500, 1, 900));
        for t in [1u32, 2, 4] {
            let spec = TenantSpec {
                weight: 1,
                sla_p99_ns: 1_000_000,
                qd_limit: 512,
            };
            let cfg = tenant_cfg(vec![spec; t as usize]);
            let report =
                Array::new(cfg, ManagementMode::Autonomic).run(&tenant_trace(1_500, t, 900));
            assert_eq!(report.completed(), 1_500, "{t} tenants");
            let sum: u64 = report.tenant_stats().iter().map(|s| s.completed).sum();
            assert_eq!(sum, base.completed(), "{t} tenants");
        }
    }

    #[test]
    fn tenant_power_loss_clears_lanes_and_recovers() {
        use crate::config::PowerLossEvent;
        use crate::tenant::TenantSpec;
        let mut cfg = tenant_cfg(vec![TenantSpec::interactive(), TenantSpec::batch()]);
        cfg.faults = cfg.faults.with_power_loss(PowerLossEvent::at(1_000_000));
        let trace = tenant_trace(2_000, 2, 1_000);
        let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
        assert!(run.integrity.is_ok(), "{:?}", run.integrity);
        let rec = run.report.recovery_stats();
        assert_eq!(rec.power_losses, 1);
        let sum: u64 = run.report.tenant_stats().iter().map(|s| s.completed).sum();
        assert_eq!(
            sum + rec.lost_inflight_requests,
            2_000,
            "every request completed on some lane or was lost at the cut"
        );
    }

    #[test]
    #[should_panic(expected = "names tenant.5")]
    fn out_of_range_tenant_panics_on_tenanted_array() {
        use crate::tenant::TenantSpec;
        let cfg = tenant_cfg(vec![TenantSpec::interactive()]);
        let trace = Trace::new(vec![TraceRequest::for_tenant(
            TenantId(5),
            SimTime::ZERO,
            IoOp::Read,
            LogicalPage(0),
            1,
        )]);
        let _ = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
    }

    #[test]
    fn dead_module_without_spare_stays_degraded() {
        use crate::config::FimmFaultEvent;
        let mut cfg = ArrayConfig::small_test();
        cfg.faults = cfg.faults.with_fimm_event(FimmFaultEvent {
            cluster: 0,
            fimm: 0,
            at_ns: 500_000,
            kind: FimmFaultKind::Dead,
        });
        let trace = mixed_trace(1_000, 1_000);
        let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
        assert!(run.integrity.is_ok());
        let rec = run.report.recovery_stats();
        assert_eq!(rec.rebuilds_completed, 0, "no spare, no rebuild");
        assert_eq!(run.report.fault_stats().fimm_deaths, 1);
    }
}
