//! I/O requests, traces, and per-request latency accounting.

use triplea_ftl::{LogicalPage, PhysLoc};
use triplea_sim::{Nanos, SimTime};

use crate::tenant::TenantId;

/// Direction of an I/O request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Read `pages` pages starting at the logical address.
    Read,
    /// Write `pages` pages starting at the logical address.
    Write,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
        })
    }
}

/// One record of an I/O trace.
///
/// Construct these through [`TraceRequest::new`] (anonymous) or
/// [`TraceRequest::for_tenant`] (owned); bare struct literals are
/// discouraged outside this crate — they bypass the tenant model the
/// same way bare `ArrayConfig` literals bypass validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRequest {
    /// Host submission time.
    pub at: SimTime,
    /// Read or write.
    pub op: IoOp,
    /// First logical page.
    pub lpn: LogicalPage,
    /// Number of consecutive pages (≥ 1).
    pub pages: u32,
    /// Owning tenant ([`TenantId::DEFAULT`] on untenanted traces).
    pub tenant: TenantId,
}

impl TraceRequest {
    /// An anonymous request: owned by [`TenantId::DEFAULT`].
    pub fn new(at: SimTime, op: IoOp, lpn: LogicalPage, pages: u32) -> Self {
        TraceRequest::for_tenant(TenantId::DEFAULT, at, op, lpn, pages)
    }

    /// A request submitted on `tenant`'s queue pair.
    pub fn for_tenant(
        tenant: TenantId,
        at: SimTime,
        op: IoOp,
        lpn: LogicalPage,
        pages: u32,
    ) -> Self {
        TraceRequest {
            at,
            op,
            lpn,
            pages,
            tenant,
        }
    }

    /// The same request re-stamped with a new owner — how per-tenant
    /// workload bindings assign a generated stream to its tenant.
    pub fn owned_by(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// A complete trace: requests sorted by submission time.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    requests: Vec<TraceRequest>,
}

impl Trace {
    /// Builds a trace, sorting records by submission time.
    pub fn new(mut requests: Vec<TraceRequest>) -> Self {
        requests.sort_by_key(|r| r.at);
        Trace { requests }
    }

    /// The records in submission order.
    pub fn requests(&self) -> &[TraceRequest] {
        &self.requests
    }

    /// Consumes the trace, yielding the records in submission order —
    /// the zero-copy path for re-stamping and blending streams.
    pub fn into_requests(self) -> Vec<TraceRequest> {
        self.requests
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Fraction of records that are reads, in `[0, 1]`.
    pub fn read_ratio(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().filter(|r| r.op == IoOp::Read).count() as f64
            / self.requests.len() as f64
    }
}

impl FromIterator<TraceRequest> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRequest>>(iter: T) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

/// Per-request latency decomposition, in nanoseconds. The buckets map
/// onto the paper's Figure 15 stack and Table 2 columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Breakdown {
    /// Waiting for a root-complex queue entry (host backlog).
    pub rc_stall: Nanos,
    /// Waiting for a switch buffer credit plus waiting for an endpoint
    /// buffer credit (stalls *at* switch level).
    pub switch_stall: Nanos,
    /// Waiting for a PCI-E link shared with other traffic.
    pub pcie_wait: Nanos,
    /// Waiting for the cluster's shared ONFi bus.
    pub bus_wait: Nanos,
    /// Waiting for a busy NAND die.
    pub die_wait: Nanos,
    /// Waiting for endpoint write-buffer space (writes only).
    pub wbuf_wait: Nanos,
    /// Pure flash service: array time + channel DMA.
    pub fimm_service: Nanos,
}

impl Breakdown {
    /// The paper's **link-contention** time: shared-bus plus shared-link
    /// waits.
    pub fn link_contention(&self) -> Nanos {
        self.bus_wait + self.pcie_wait
    }

    /// The paper's **storage-contention** time: busy-die plus
    /// write-buffer waits.
    pub fn storage_contention(&self) -> Nanos {
        self.die_wait + self.wbuf_wait
    }

    /// Total queue-stall time (RC + switch level).
    pub fn queue_stall(&self) -> Nanos {
        self.rc_stall + self.switch_stall
    }

    /// Adds another breakdown element-wise (for aggregation).
    pub fn accumulate(&mut self, other: &Breakdown) {
        self.rc_stall += other.rc_stall;
        self.switch_stall += other.switch_stall;
        self.pcie_wait += other.pcie_wait;
        self.bus_wait += other.bus_wait;
        self.die_wait += other.die_wait;
        self.wbuf_wait += other.wbuf_wait;
        self.fimm_service += other.fimm_service;
    }
}

/// Request lifecycle stage (used for debug assertions and diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum Stage {
    #[default]
    Created,
    AtRc,
    AtSwitch,
    AtEp,
    Flash,
    Responding,
    Done,
}

/// Internal per-request simulation state.
#[derive(Clone, Debug)]
pub(crate) struct RequestState {
    pub op: IoOp,
    pub lpn: LogicalPage,
    pub pages: u32,
    pub tenant: TenantId,
    pub submit: SimTime,
    /// Physical locations pinned at routing time (migration keeps old
    /// copies readable for in-flight requests).
    pub locs: Vec<PhysLoc>,
    /// Global index of the cluster the request was routed to.
    pub cluster: u32,
    pub stage: Stage,
    /// When the current wait began (reused across stages).
    pub wait_since: SimTime,
    /// When flash service started at the EP (Eq. 1's observation point).
    pub flash_start: SimTime,
    /// Outstanding flash sub-operations.
    pub pending_parts: u32,
    /// Largest die wait over all parts (Eq. 1 requires the target FIMM
    /// to have been available).
    pub max_die_wait: Nanos,
    /// FIMM flagged as laggard for this request, if any.
    pub laggard_fimm: Option<u32>,
    /// All FIMMs looked like laggards → escalate to migration.
    pub escalate: bool,
    /// Request was parked at the EP admission queue.
    pub stalled_at_ep: bool,
    /// Write was parked for endpoint write-buffer space (qualifies it
    /// for §4.2 write redirection).
    pub stalled_wbuf: bool,
    pub bd: Breakdown,
    pub done: bool,
    /// Completion instant; `SimTime::ZERO` until `done` is set. The
    /// federation layer reads this to time volume requests spanning
    /// several member arrays.
    pub finish: SimTime,
}

impl RequestState {
    pub fn new(r: &TraceRequest) -> Self {
        RequestState {
            op: r.op,
            lpn: r.lpn,
            pages: r.pages,
            tenant: r.tenant,
            submit: r.at,
            locs: Vec::new(),
            cluster: 0,
            stage: Stage::Created,
            wait_since: r.at,
            flash_start: SimTime::ZERO,
            pending_parts: 0,
            max_die_wait: 0,
            laggard_fimm: None,
            escalate: false,
            stalled_at_ep: false,
            stalled_wbuf: false,
            bd: Breakdown::default(),
            done: false,
            finish: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at_us: u64, op: IoOp) -> TraceRequest {
        TraceRequest::new(SimTime::from_us(at_us), op, LogicalPage(0), 1)
    }

    #[test]
    fn trace_sorts_by_time() {
        let t = Trace::new(vec![
            req(5, IoOp::Read),
            req(1, IoOp::Write),
            req(3, IoOp::Read),
        ]);
        let times: Vec<u64> = t.requests().iter().map(|r| r.at.as_nanos()).collect();
        assert_eq!(times, vec![1_000, 3_000, 5_000]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn read_ratio_counts_reads() {
        let t = Trace::new(vec![
            req(0, IoOp::Read),
            req(1, IoOp::Read),
            req(2, IoOp::Write),
        ]);
        assert!((t.read_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Trace::default().read_ratio(), 0.0);
    }

    #[test]
    fn trace_from_iterator() {
        let t: Trace = (0..4).map(|i| req(i, IoOp::Read)).collect();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn breakdown_buckets() {
        let bd = Breakdown {
            rc_stall: 1,
            switch_stall: 2,
            pcie_wait: 4,
            bus_wait: 8,
            die_wait: 16,
            wbuf_wait: 32,
            fimm_service: 64,
        };
        assert_eq!(bd.link_contention(), 12);
        assert_eq!(bd.storage_contention(), 48);
        assert_eq!(bd.queue_stall(), 3);
        let mut acc = Breakdown::default();
        acc.accumulate(&bd);
        acc.accumulate(&bd);
        assert_eq!(acc.fimm_service, 128);
    }

    #[test]
    fn constructors_stamp_tenants() {
        let anon = req(0, IoOp::Read);
        assert_eq!(anon.tenant, TenantId::DEFAULT);
        let owned = TraceRequest::for_tenant(
            TenantId(3),
            SimTime::ZERO,
            IoOp::Write,
            LogicalPage(9),
            2,
        );
        assert_eq!(owned.tenant, TenantId(3));
        assert_eq!((owned.lpn, owned.pages), (LogicalPage(9), 2));
        assert_eq!(anon.owned_by(TenantId(7)).tenant, TenantId(7));
        assert_eq!(RequestState::new(&owned).tenant, TenantId(3));
    }

    #[test]
    fn trace_sort_is_stable_across_tenant_blends() {
        // Two tenants' streams merged at identical timestamps must keep
        // insertion order (stable sort) so blended traces stay
        // deterministic.
        let a = TraceRequest::for_tenant(TenantId(0), SimTime::ZERO, IoOp::Read, LogicalPage(1), 1);
        let b = TraceRequest::for_tenant(TenantId(1), SimTime::ZERO, IoOp::Read, LogicalPage(2), 1);
        let t = Trace::new(vec![a, b]);
        assert_eq!(t.requests()[0].tenant, TenantId(0));
        assert_eq!(t.requests()[1].tenant, TenantId(1));
    }

    #[test]
    fn io_op_display() {
        assert_eq!(IoOp::Read.to_string(), "read");
        assert_eq!(IoOp::Write.to_string(), "write");
    }
}
