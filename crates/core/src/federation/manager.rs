//! The volume manager: N member arrays co-simulated in one
//! deterministic epoch loop, with replica routing, power-loss read
//! retry, and the inter-array laggard policy.

use triplea_ftl::IntegrityError;
use triplea_sim::stats::Histogram;
use triplea_sim::trace::{
    MetricRegistry, RunTrace, SharedRecorder, TraceEventKind, TraceScope,
};
use triplea_sim::{FxHashMap, FxHashSet, SimTime};

use crate::array::{Array, ArrayRunner};
use crate::config::ArrayConfig;
use crate::federation::config::FederationConfig;
use crate::federation::map::{ChunkPlacement, VolumeMapper};
use crate::metrics::RunReport;
use crate::request::{IoOp, Trace, TraceRequest};

/// Weyl constant decorrelating member-array RNG streams from the one
/// master seed (same scheme the engine uses per FIMM).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fully assembled, validated federation, ready to replay a
/// volume-level [`Trace`]. Built by
/// [`FederationBuilder::build`](crate::FederationBuilder::build).
#[derive(Debug)]
pub struct Federation {
    mgr: VolumeManager,
}

impl Federation {
    pub(crate) fn assemble(cfg: FederationConfig) -> Self {
        Federation {
            mgr: VolumeManager::new(cfg),
        }
    }

    /// The validated federation configuration in force.
    pub fn config(&self) -> &FederationConfig {
        &self.mgr.cfg
    }

    /// The volume address mapper (home placements; overrides accrue
    /// during the run).
    pub fn mapper(&self) -> &VolumeMapper {
        &self.mgr.mapper
    }

    /// Replays a volume-level `trace` to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if a record has `pages == 0`, addresses a page outside the
    /// volume, or names a tenant outside the volume's bindings (or the
    /// member arrays' tenant table).
    pub fn run(self, trace: &Trace) -> FederationReport {
        self.run_verified(trace).report
    }

    /// Like [`Federation::run`], but additionally audits every member
    /// array's FTL metadata integrity and harvests the federation-level
    /// event trace when a recorder was attached.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Federation::run`].
    pub fn run_verified(self, trace: &Trace) -> FederationRun {
        self.mgr.run_verified(trace)
    }
}

/// The outcome of [`Federation::run_verified`].
#[derive(Clone, Debug)]
pub struct FederationRun {
    /// The federation report: per-array [`RunReport`]s plus
    /// federation-level stats and latency distributions.
    pub report: FederationReport,
    /// The harvested federation-level trace (cross-array hops, laggard
    /// detections, migrations) and `federation.array.N.*` metrics;
    /// `None` without a recorder.
    pub trace: Option<RunTrace>,
    /// First failing member-array FTL integrity audit, if any.
    pub integrity: Result<(), IntegrityError>,
}

/// Federation-level counters and distributions, serialized into bench
/// artifacts alongside the per-array reports.
#[derive(Clone, Debug, Default, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct FederationStats {
    /// Member arrays.
    pub arrays: u32,
    /// Stripe width `W`.
    pub stripe_width: u32,
    /// Replication factor `R`.
    pub replicas: u32,
    /// Pages per chunk.
    pub chunk_pages: u64,
    /// Volume requests submitted.
    pub volume_requests: u64,
    /// Volume requests fully completed (including degraded writes).
    pub completed: u64,
    /// Writes that completed with at least one replica copy lost to an
    /// array failure (data durable on the surviving copies).
    pub degraded_writes: u64,
    /// Volume requests lost outright (every relevant copy died).
    pub lost_requests: u64,
    /// Read fragments re-routed to a surviving replica after a loss.
    pub retried_reads: u64,
    /// Array-level fragments submitted on behalf of volume requests.
    pub fragments: u64,
    /// Epochs the federation scheduler ran.
    pub epochs: u64,
    /// Epochs in which the inter-array laggard detector fired.
    pub laggard_epochs: u64,
    /// Inter-array chunk migrations started.
    pub migrations_started: u64,
    /// Migrations whose clone became durable and whose placement
    /// committed.
    pub migrations_committed: u64,
    /// Migrations aborted (clone I/O lost mid-flight); the source
    /// placement stayed live.
    pub migrations_aborted: u64,
    /// Pages moved by committed migrations.
    pub migrated_pages: u64,
    /// Volume-request latency mean, ns.
    pub mean_ns: u64,
    /// Volume-request latency p50, ns.
    pub p50_ns: u64,
    /// Volume-request latency p99, ns.
    pub p99_ns: u64,
    /// Volume-request latency max, ns.
    pub max_ns: u64,
    /// Read p99, ns.
    pub read_p99_ns: u64,
    /// Write p99, ns.
    pub write_p99_ns: u64,
    /// Read fragments routed to each array (replica selection census).
    pub per_array_reads: Vec<u64>,
    /// Host fragments (reads + write copies) submitted to each array.
    pub per_array_fragments: Vec<u64>,
    /// Each array's cumulative p99 at the end of the run, ns.
    pub per_array_p99_ns: Vec<u64>,
    /// Committed migrations out of each array.
    pub per_array_migrations_out: Vec<u64>,
}

/// The federation report: what [`RunReport`] is to one array.
#[derive(Clone, Debug)]
pub struct FederationReport {
    /// One [`RunReport`] per member array, in array order.
    pub arrays: Vec<RunReport>,
    /// Federation-level counters and latency headlines.
    pub stats: FederationStats,
    /// Volume-request end-to-end latency distribution.
    pub latency: Histogram,
    /// Volume read latency distribution.
    pub read_latency: Histogram,
    /// Volume write latency distribution.
    pub write_latency: Histogram,
}

impl FederationReport {
    /// Volume requests fully completed.
    pub fn completed(&self) -> u64 {
        self.stats.completed
    }

    /// Volume-request IOPS over the span from first submission to last
    /// completion across all member arrays.
    pub fn iops(&self) -> f64 {
        let span_ns = self
            .arrays
            .iter()
            .map(|r| r.makespan().as_nanos())
            .max()
            .unwrap_or(0);
        if span_ns == 0 {
            return 0.0;
        }
        self.stats.completed as f64 * 1e9 / span_ns as f64
    }
}

impl std::fmt::Display for FederationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &self.stats;
        writeln!(
            f,
            "federation: {} arrays ({}x{}, {}-page chunks)",
            s.arrays, s.stripe_width, s.replicas, s.chunk_pages
        )?;
        writeln!(
            f,
            "  volume: {} requests, {} completed, {} lost, {} retried reads, \
             {} degraded writes",
            s.volume_requests, s.completed, s.lost_requests, s.retried_reads, s.degraded_writes
        )?;
        writeln!(
            f,
            "  latency: mean {} us  p50 {} us  p99 {} us  max {} us",
            s.mean_ns / 1_000,
            s.p50_ns / 1_000,
            s.p99_ns / 1_000,
            s.max_ns / 1_000
        )?;
        writeln!(
            f,
            "  laggard policy: {} laggard epochs / {}, {} migrations \
             ({} committed, {} aborted), {} pages moved",
            s.laggard_epochs,
            s.epochs,
            s.migrations_started,
            s.migrations_committed,
            s.migrations_aborted,
            s.migrated_pages
        )?;
        for (i, (p99, (frags, out))) in s
            .per_array_p99_ns
            .iter()
            .zip(s.per_array_fragments.iter().zip(&s.per_array_migrations_out))
            .enumerate()
        {
            writeln!(
                f,
                "  array.{i}: {frags} fragments, p99 {} us, {out} chunks migrated out",
                p99 / 1_000
            )?;
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FragState {
    InFlight,
    Done,
    Lost,
}

/// One array-level request issued on behalf of a volume request: a
/// chunk-local page run on one replica copy.
#[derive(Clone, Debug)]
struct Frag {
    chunk: u64,
    offset: u64,
    pages: u32,
    copy: u32,
    array: u32,
    id: u32,
    state: FragState,
    /// Bitmask of replica copies already tried (read retry bookkeeping).
    tried: u32,
}

#[derive(Clone, Debug)]
struct VolReq {
    submit: SimTime,
    read: bool,
    tenant: crate::tenant::TenantId,
    frags: Vec<Frag>,
    /// Write copies definitively lost (for the degraded census).
    lost_copies: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MigPhase {
    Reading,
    Writing,
}

#[derive(Clone, Debug)]
struct Migration {
    copy: u32,
    chunk: u64,
    from: u32,
    to: u32,
    /// Destination slot index within `to`'s migration region.
    slot: u64,
    phase: MigPhase,
    /// The in-flight clone op: a read on `from`, then a write on `to`.
    op_id: u32,
}

#[derive(Debug)]
pub(crate) struct VolumeManager {
    pub(crate) cfg: FederationConfig,
    pub(crate) mapper: VolumeMapper,
    runners: Vec<ArrayRunner>,
    rec: Option<SharedRecorder>,
    // Volume-request accounting.
    vol: Vec<VolReq>,
    /// Unresolved volume-request indices, in submission order.
    open: Vec<u32>,
    /// Host fragments currently in flight per array (replica routing).
    inflight: Vec<u64>,
    // Laggard policy state.
    heat: FxHashMap<u64, u64>,
    migrations: Vec<Migration>,
    /// Chunk copies with an active migration (no double-claim).
    migrating: FxHashSet<(u32, u64)>,
    /// Monotonic slot allocation per array (aborted slots are retired,
    /// not reused, so concurrent clones never collide).
    slots_alloc: Vec<u64>,
    cooldown: u32,
    stats: FederationStats,
    lat: Histogram,
    rlat: Histogram,
    wlat: Histogram,
}

impl VolumeManager {
    fn new(cfg: FederationConfig) -> Self {
        let n = cfg.arrays as usize;
        let mapper = VolumeMapper::new(&cfg);
        let rec = cfg.trace.map(SharedRecorder::new);
        let runners = (0..cfg.arrays)
            .map(|i| {
                let mut ac: ArrayConfig = cfg.array.clone();
                // Disjoint RNG stream per member array, same scheme the
                // engine uses per FIMM.
                ac.seed ^= (i as u64 + 1).wrapping_mul(GOLDEN);
                if let Some((_, faults)) =
                    cfg.fault_overrides.iter().find(|(a, _)| *a == i)
                {
                    ac.faults = *faults;
                }
                Array::new(ac, cfg.mode).into_runner()
            })
            .collect();
        let stats = FederationStats {
            arrays: cfg.arrays,
            stripe_width: cfg.volume.stripe_width,
            replicas: cfg.volume.replicas,
            chunk_pages: cfg.volume.chunk_pages,
            per_array_reads: vec![0; n],
            per_array_fragments: vec![0; n],
            per_array_p99_ns: vec![0; n],
            per_array_migrations_out: vec![0; n],
            ..FederationStats::default()
        };
        VolumeManager {
            mapper,
            runners,
            rec,
            vol: Vec::new(),
            open: Vec::new(),
            inflight: vec![0; n],
            heat: FxHashMap::default(),
            migrations: Vec::new(),
            migrating: FxHashSet::default(),
            slots_alloc: vec![0; n],
            cooldown: 0,
            stats,
            lat: Histogram::new(),
            rlat: Histogram::new(),
            wlat: Histogram::new(),
            cfg,
        }
    }

    fn emit(&self, at: SimTime, array: u32, kind: impl FnOnce() -> TraceEventKind) {
        if let Some(rec) = &self.rec {
            rec.emit_at(at, TraceScope::array().unit(array), kind());
        }
    }

    /// Submits one array-level fragment and updates the routing ledger.
    fn submit_frag(&mut self, array: u32, r: &TraceRequest) -> u32 {
        let id = self.runners[array as usize].submit(r);
        self.inflight[array as usize] += 1;
        self.stats.fragments += 1;
        self.stats.per_array_fragments[array as usize] += 1;
        id
    }

    /// The replica copy a read fragment of `chunk` should go to:
    /// the least-loaded holder (ties to the lowest array index),
    /// excluding copies in the `tried` mask.
    fn pick_replica(&self, chunk: u64, tried: u32) -> Option<(u32, u32)> {
        (0..self.mapper.replicas())
            .filter(|j| tried & (1 << j) == 0)
            .map(|j| (j, self.mapper.placement(j, chunk).array))
            .min_by_key(|&(_, a)| (self.inflight[a as usize], a))
    }

    fn submit_volume(&mut self, vi: u32, r: &TraceRequest, at: SimTime) {
        let frag_runs = self.mapper.fragments(r.lpn, r.pages);
        let mut frags = Vec::new();
        for fr in frag_runs {
            *self.heat.entry(fr.chunk).or_insert(0) += 1;
            match r.op {
                IoOp::Read => {
                    let (copy, array) = self
                        .pick_replica(fr.chunk, 0)
                        .expect("replicas >= 1, nothing tried");
                    let place = self.mapper.placement(copy, fr.chunk);
                    let local = self.mapper.local_lpn(place, fr.offset);
                    let id = self.submit_frag(
                        array,
                        &TraceRequest::for_tenant(r.tenant, at, IoOp::Read, local, fr.pages),
                    );
                    self.stats.per_array_reads[array as usize] += 1;
                    self.emit(at, array, || TraceEventKind::FederationHop {
                        req: vi,
                        array,
                        copy,
                    });
                    frags.push(Frag {
                        chunk: fr.chunk,
                        offset: fr.offset,
                        pages: fr.pages,
                        copy,
                        array,
                        id,
                        state: FragState::InFlight,
                        tried: 1 << copy,
                    });
                }
                IoOp::Write => {
                    for copy in 0..self.mapper.replicas() {
                        let place = self.mapper.placement(copy, fr.chunk);
                        let local = self.mapper.local_lpn(place, fr.offset);
                        let array = place.array;
                        let id = self.submit_frag(
                            array,
                            &TraceRequest::for_tenant(r.tenant, at, IoOp::Write, local, fr.pages),
                        );
                        self.emit(at, array, || TraceEventKind::FederationHop {
                            req: vi,
                            array,
                            copy,
                        });
                        frags.push(Frag {
                            chunk: fr.chunk,
                            offset: fr.offset,
                            pages: fr.pages,
                            copy,
                            array,
                            id,
                            state: FragState::InFlight,
                            tried: 1 << copy,
                        });
                    }
                }
            }
        }
        self.vol.push(VolReq {
            submit: r.at,
            read: r.op == IoOp::Read,
            tenant: r.tenant,
            frags,
            lost_copies: 0,
        });
        self.open.push(vi);
        self.stats.volume_requests += 1;
    }

    /// Polls every open volume request: marks fragments done/lost,
    /// re-routes lost reads to surviving replicas, and resolves
    /// fully-settled requests into the latency accounting.
    fn poll(&mut self, t: SimTime) {
        let open = std::mem::take(&mut self.open);
        for vi in open {
            // Update fragment states against the runners.
            let mut retries: Vec<usize> = Vec::new();
            {
                let vr = &mut self.vol[vi as usize];
                for (fi, fr) in vr.frags.iter_mut().enumerate() {
                    if fr.state != FragState::InFlight {
                        continue;
                    }
                    let runner = &self.runners[fr.array as usize];
                    if runner.is_done(fr.id) {
                        fr.state = FragState::Done;
                        self.inflight[fr.array as usize] -= 1;
                    } else if runner.is_lost(fr.id) {
                        fr.state = FragState::Lost;
                        self.inflight[fr.array as usize] -= 1;
                        if vr.read {
                            retries.push(fi);
                        } else {
                            vr.lost_copies += 1;
                        }
                    }
                }
            }
            // Lost reads retry on a surviving replica at this epoch.
            for fi in retries {
                let (chunk, tried, offset, pages, tenant) = {
                    let fr = &self.vol[vi as usize].frags[fi];
                    (fr.chunk, fr.tried, fr.offset, fr.pages, self.vol[vi as usize].tenant)
                };
                if let Some((copy, array)) = self.pick_replica(chunk, tried) {
                    let place = self.mapper.placement(copy, chunk);
                    let local = self.mapper.local_lpn(place, offset);
                    let id = self.submit_frag(
                        array,
                        &TraceRequest::for_tenant(tenant, t, IoOp::Read, local, pages),
                    );
                    self.stats.per_array_reads[array as usize] += 1;
                    self.stats.retried_reads += 1;
                    self.emit(t, array, || TraceEventKind::FederationRetry {
                        req: vi,
                        array,
                    });
                    let fr = &mut self.vol[vi as usize].frags[fi];
                    fr.copy = copy;
                    fr.array = array;
                    fr.id = id;
                    fr.state = FragState::InFlight;
                    fr.tried |= 1 << copy;
                }
            }
            // Resolve if every fragment has settled.
            let vr = &self.vol[vi as usize];
            if vr.frags.iter().any(|f| f.state == FragState::InFlight) {
                self.open.push(vi);
                continue;
            }
            if vr.read {
                let all_done = vr.frags.iter().all(|f| f.state == FragState::Done);
                if all_done {
                    self.complete_volume(vi);
                } else {
                    self.stats.lost_requests += 1;
                }
            } else {
                // A write survives as long as each fragment kept at
                // least one durable copy.
                let mut survived = true;
                let mut degraded = false;
                let mut i = 0;
                while i < vr.frags.len() {
                    let (chunk, offset) = (vr.frags[i].chunk, vr.frags[i].offset);
                    let mut any = false;
                    let mut all = true;
                    let mut j = i;
                    while j < vr.frags.len()
                        && vr.frags[j].chunk == chunk
                        && vr.frags[j].offset == offset
                    {
                        match vr.frags[j].state {
                            FragState::Done => any = true,
                            _ => all = false,
                        }
                        j += 1;
                    }
                    if !any {
                        survived = false;
                    }
                    if !all {
                        degraded = true;
                    }
                    i = j;
                }
                if survived {
                    if degraded {
                        self.stats.degraded_writes += 1;
                    }
                    self.complete_volume(vi);
                } else {
                    self.stats.lost_requests += 1;
                }
            }
        }
    }

    /// Records a settled volume request's end-to-end latency (last
    /// durable fragment completion minus host submission).
    fn complete_volume(&mut self, vi: u32) {
        let vr = &self.vol[vi as usize];
        let finish = vr
            .frags
            .iter()
            .filter(|f| f.state == FragState::Done)
            .map(|f| self.runners[f.array as usize].finish_time(f.id))
            .max()
            .unwrap_or(vr.submit);
        let ns: u64 = finish - vr.submit;
        self.lat.record(ns);
        if vr.read {
            self.rlat.record(ns);
        } else {
            self.wlat.record(ns);
        }
        self.stats.completed += 1;
    }

    /// Advances in-flight migrations: read-phase clones whose source
    /// read completed start their destination write; write-phase clones
    /// whose write is durable commit the new placement. Lost clone I/O
    /// aborts the migration — the source copy stays live, which is
    /// exactly what makes a mid-migration power cut safe.
    fn pump_migrations(&mut self, t: SimTime) {
        let mut keep: Vec<Migration> = Vec::new();
        let migs = std::mem::take(&mut self.migrations);
        for mut m in migs {
            let runner = match m.phase {
                MigPhase::Reading => &self.runners[m.from as usize],
                MigPhase::Writing => &self.runners[m.to as usize],
            };
            if runner.is_lost(m.op_id) {
                self.stats.migrations_aborted += 1;
                self.migrating.remove(&(m.copy, m.chunk));
                self.emit(t, m.from, || TraceEventKind::FederationMigrationAbort {
                    chunk: m.chunk,
                    from_array: m.from,
                    to_array: m.to,
                });
                continue;
            }
            if !runner.is_done(m.op_id) {
                keep.push(m);
                continue;
            }
            match m.phase {
                MigPhase::Reading => {
                    // Source chunk is read; program the clone on the
                    // destination's reserved slot.
                    let pages = self.mapper.chunk_pages();
                    let local = triplea_ftl::LogicalPage(
                        (self.mapper.rows() + m.slot) * pages,
                    );
                    let tenant = crate::tenant::TenantId::DEFAULT;
                    m.op_id = self.runners[m.to as usize].submit(&TraceRequest::for_tenant(
                        tenant,
                        t,
                        IoOp::Write,
                        local,
                        pages as u32,
                    ));
                    m.phase = MigPhase::Writing;
                    keep.push(m);
                }
                MigPhase::Writing => {
                    // Clone durable: flip the placement (clone-then-
                    // commit, the inter-array analogue of the FTL's
                    // clone-then-unlink).
                    self.mapper.commit_migration(
                        m.copy,
                        m.chunk,
                        ChunkPlacement {
                            array: m.to,
                            local_chunk: self.mapper.rows() + m.slot,
                        },
                    );
                    self.migrating.remove(&(m.copy, m.chunk));
                    self.stats.migrations_committed += 1;
                    self.stats.migrated_pages += self.mapper.chunk_pages();
                    self.stats.per_array_migrations_out[m.from as usize] += 1;
                    self.emit(t, m.to, || TraceEventKind::FederationMigrationCommit {
                        chunk: m.chunk,
                        from_array: m.from,
                        to_array: m.to,
                    });
                }
            }
        }
        self.migrations = keep;
    }

    /// Ages the chunk heat map: counts halve each epoch (and zeroes are
    /// dropped), so heat is recency-biased but survives epochs where the
    /// host went quiet — the laggard detector often trips only after a
    /// backlog has built, well past the submission burst.
    fn decay_heat(&mut self) {
        self.heat.retain(|_, c| {
            *c >>= 1;
            *c > 0
        });
    }

    /// The inter-array laggard detector (Eq. 3 one level up): once per
    /// epoch, flag the array whose cumulative p99 exceeds the federation
    /// budget *and* lags its healthiest peer by the imbalance factor,
    /// then shadow-clone its hottest chunks to the least-loaded peers.
    fn autonomics(&mut self, t: SimTime) {
        let policy = self.cfg.policy;
        if policy.sla_p99_ns == 0 || policy.max_chunks_per_epoch == 0 {
            self.heat.clear();
            return;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.decay_heat();
            return;
        }
        let p99s: Vec<u64> = self.runners.iter().map(|r| r.p99_ns()).collect();
        let best = p99s.iter().copied().min().unwrap_or(0);
        let (laggard, lag_p99) = match p99s
            .iter()
            .enumerate()
            .max_by_key(|&(i, &p)| (p, std::cmp::Reverse(i)))
        {
            Some((i, &p)) => (i as u32, p),
            None => return,
        };
        if lag_p99 <= policy.sla_p99_ns
            || lag_p99.saturating_mul(1_000) <= best.saturating_mul(policy.imbalance_milli)
        {
            self.decay_heat();
            return;
        }
        self.stats.laggard_epochs += 1;
        self.emit(t, laggard, || TraceEventKind::FederationLaggard {
            array: laggard,
            p99_ns: lag_p99,
            budget_ns: policy.sla_p99_ns,
        });
        // Hottest chunks currently placed on the laggard, by epoch heat
        // (count desc, chunk asc — deterministic).
        let mut hot: Vec<(u64, u64)> = self
            .heat
            .iter()
            .map(|(&chunk, &count)| (chunk, count))
            .collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut started = 0u32;
        for (chunk, _) in hot {
            if started >= policy.max_chunks_per_epoch {
                break;
            }
            // The copy of this chunk living on the laggard, if any.
            let Some(copy) = (0..self.mapper.replicas())
                .find(|&j| self.mapper.placement(j, chunk).array == laggard)
            else {
                continue;
            };
            if self.migrating.contains(&(copy, chunk)) || self.mapper.is_migrated(copy, chunk) {
                continue;
            }
            let holders = self.mapper.holders(chunk);
            // Destination: healthiest peer not already holding a copy,
            // with a free migration slot.
            let Some(to) = (0..self.cfg.arrays)
                .filter(|a| *a != laggard && !holders.contains(a))
                .filter(|a| self.slots_alloc[*a as usize] < policy.migration_slots)
                .min_by_key(|&a| (p99s[a as usize], a))
            else {
                continue;
            };
            let slot = self.slots_alloc[to as usize];
            self.slots_alloc[to as usize] += 1;
            let place = self.mapper.placement(copy, chunk);
            let pages = self.mapper.chunk_pages();
            let local = self.mapper.local_lpn(place, 0);
            let op_id = self.runners[laggard as usize].submit(&TraceRequest::for_tenant(
                crate::tenant::TenantId::DEFAULT,
                t,
                IoOp::Read,
                local,
                pages as u32,
            ));
            self.migrating.insert((copy, chunk));
            self.migrations.push(Migration {
                copy,
                chunk,
                from: laggard,
                to,
                slot,
                phase: MigPhase::Reading,
                op_id,
            });
            self.stats.migrations_started += 1;
            self.emit(t, laggard, || TraceEventKind::FederationMigrationBegin {
                chunk,
                from_array: laggard,
                to_array: to,
                pages,
            });
            started += 1;
        }
        if started > 0 {
            self.cooldown = policy.cooldown_epochs;
        }
        self.decay_heat();
    }

    fn run_verified(mut self, trace: &Trace) -> FederationRun {
        let volume_pages = self.mapper.volume_pages();
        let n_tenants = self.cfg.array.tenants.len();
        for (i, r) in trace.requests().iter().enumerate() {
            assert!(r.pages >= 1, "volume request {i} has zero pages");
            assert!(
                r.lpn.0 + r.pages as u64 <= volume_pages,
                "volume request {i} exceeds the volume address space"
            );
            assert!(
                n_tenants == 0 || r.tenant.index() < n_tenants,
                "volume request {i} names {} but the member arrays have {n_tenants} tenants",
                r.tenant
            );
            assert!(
                self.cfg.volume.tenants.is_empty() || self.cfg.volume.tenants.contains(&r.tenant),
                "volume request {i} names {} but the volume binds {:?}",
                r.tenant,
                self.cfg.volume.tenants
            );
        }
        let epoch = self.cfg.policy.epoch_ns;
        let reqs = trace.requests();
        let mut next = 0usize;
        let mut t = SimTime::ZERO;
        loop {
            t += epoch;
            if let Some(rec) = &self.rec {
                rec.set_now(t);
            }
            while next < reqs.len() && reqs[next].at < t {
                let r = reqs[next];
                self.submit_volume(next as u32, &r, r.at);
                next += 1;
            }
            for r in &mut self.runners {
                r.step_until(t);
            }
            self.poll(t);
            self.pump_migrations(t);
            self.autonomics(t);
            self.stats.epochs += 1;
            let busy = self.runners.iter().any(|r| !r.is_idle());
            if next >= reqs.len() && self.open.is_empty() && self.migrations.is_empty() && !busy {
                break;
            }
        }
        for (i, r) in self.runners.iter().enumerate() {
            self.stats.per_array_p99_ns[i] = r.p99_ns();
        }
        self.stats.mean_ns = self.lat.mean().round() as u64;
        self.stats.p50_ns = self.lat.percentile(0.50);
        self.stats.p99_ns = self.lat.percentile(0.99);
        self.stats.max_ns = self.lat.max();
        self.stats.read_p99_ns = self.rlat.percentile(0.99);
        self.stats.write_p99_ns = self.wlat.percentile(0.99);
        let runs: Vec<_> = self.runners.into_iter().map(ArrayRunner::finish).collect();
        let mut integrity: Result<(), IntegrityError> = Ok(());
        for run in &runs {
            if let Err(e) = run.integrity {
                integrity = Err(e);
                break;
            }
        }
        let reports: Vec<RunReport> = runs.into_iter().map(|r| r.report).collect();
        let trace_out = self.rec.as_ref().map(|rec| {
            let mut m = MetricRegistry::new();
            m.counter("federation.volume.requests", self.stats.volume_requests);
            m.counter("federation.volume.completed", self.stats.completed);
            m.counter("federation.volume.lost", self.stats.lost_requests);
            m.counter("federation.volume.retried_reads", self.stats.retried_reads);
            m.counter("federation.migrations.started", self.stats.migrations_started);
            m.counter(
                "federation.migrations.committed",
                self.stats.migrations_committed,
            );
            m.counter(
                "federation.migrations.aborted",
                self.stats.migrations_aborted,
            );
            m.histogram("federation.latency", &self.lat);
            for (i, report) in reports.iter().enumerate() {
                m.counter(
                    format!("federation.array.{i}.completed"),
                    report.completed(),
                );
                m.counter(
                    format!("federation.array.{i}.fragments"),
                    self.stats.per_array_fragments[i],
                );
                m.counter(
                    format!("federation.array.{i}.reads_routed"),
                    self.stats.per_array_reads[i],
                );
                m.counter(
                    format!("federation.array.{i}.p99_ns"),
                    self.stats.per_array_p99_ns[i],
                );
                m.counter(
                    format!("federation.array.{i}.migrations_out"),
                    self.stats.per_array_migrations_out[i],
                );
            }
            RunTrace::from_recorder(&rec.snapshot(), m)
        });
        FederationRun {
            report: FederationReport {
                arrays: reports,
                stats: self.stats,
                latency: self.lat,
                read_latency: self.rlat,
                write_latency: self.wlat,
            },
            trace: trace_out,
            integrity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FaultConfig, ManagementMode, PowerLossEvent};
    use crate::federation::config::{LaggardPolicy, VolumeSpec};
    use crate::request::IoOp;
    use crate::{FimmFaultEvent, FimmFaultKind, Simulation};
    use triplea_ftl::LogicalPage;
    use triplea_sim::SimTime;

    fn policy_off() -> LaggardPolicy {
        LaggardPolicy {
            sla_p99_ns: 0,
            ..LaggardPolicy::default()
        }
    }

    /// `n` single-page requests, every 8th a write, walking the first
    /// `span` volume pages with a stride that crosses chunk boundaries.
    fn walk(n: u64, span: u64, gap_ns: u64) -> Trace {
        (0..n)
            .map(|i| {
                let op = if i % 8 == 7 { IoOp::Write } else { IoOp::Read };
                TraceRequest::new(
                    SimTime::from_nanos(i * gap_ns),
                    op,
                    LogicalPage((i * 13) % span),
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn striped_federation_conserves_requests_and_fragments() {
        let fed = Simulation::builder()
            .small_test()
            .with_federation(2)
            .volume(VolumeSpec::striped(2).chunk_pages(16))
            .policy(policy_off())
            .build()
            .unwrap();
        let trace = (0..200)
            .map(|i| {
                // 24-page runs crossing at least one 16-page chunk seam.
                TraceRequest::new(
                    SimTime::from_nanos(i * 500),
                    if i % 4 == 0 { IoOp::Write } else { IoOp::Read },
                    LogicalPage((i * 37) % 4_000),
                    24,
                )
            })
            .collect();
        let run = fed.run_verified(&trace);
        assert!(run.integrity.is_ok());
        let s = &run.report.stats;
        assert_eq!(s.volume_requests, 200);
        assert_eq!(s.completed, 200);
        assert_eq!(s.lost_requests, 0);
        assert!(s.fragments > 200, "24-page runs must split across chunks");
        assert_eq!(
            s.fragments,
            s.per_array_fragments.iter().sum::<u64>(),
            "routing census must account for every fragment"
        );
        // Policy off, no faults: member arrays completed exactly the
        // host fragments, nothing else.
        let member_total: u64 = run.report.arrays.iter().map(|r| r.completed()).sum();
        assert_eq!(member_total, s.fragments);
        assert!(run.report.iops() > 0.0);
    }

    #[test]
    fn replicated_writes_fan_out_and_reads_pick_one_replica() {
        let fed = Simulation::builder()
            .small_test()
            .with_federation(2)
            .volume(VolumeSpec::replicated(1, 2).chunk_pages(32))
            .policy(policy_off())
            .build()
            .unwrap();
        let reads = 90u64;
        let writes = 30u64;
        let trace = (0..reads + writes)
            .map(|i| {
                TraceRequest::new(
                    SimTime::from_nanos(i * 400),
                    if i < reads { IoOp::Read } else { IoOp::Write },
                    LogicalPage((i * 3) % 32),
                    1,
                )
            })
            .collect();
        let run = fed.run_verified(&trace);
        let s = &run.report.stats;
        assert_eq!(s.completed, reads + writes);
        assert_eq!(
            s.fragments,
            reads + 2 * writes,
            "each write clones to both replicas; each read takes one"
        );
        assert_eq!(s.per_array_reads.iter().sum::<u64>(), reads);
    }

    #[test]
    fn replicated_volume_survives_a_member_power_loss() {
        let fed = Simulation::builder()
            .small_test()
            .with_federation(4)
            .volume(VolumeSpec::replicated(2, 2).chunk_pages(16))
            .policy(policy_off())
            .array_faults(
                0,
                FaultConfig::default().with_power_loss(PowerLossEvent::at(100_000)),
            )
            .build()
            .unwrap();
        let n = 600u64;
        let run = fed.run_verified(&walk(n, 2_000, 300));
        assert!(run.integrity.is_ok());
        let s = &run.report.stats;
        assert_eq!(
            run.report.arrays[0].recovery_stats().power_losses,
            1,
            "the fault override must land on array 0 only"
        );
        assert_eq!(run.report.arrays[1].recovery_stats().power_losses, 0);
        assert_eq!(s.completed + s.lost_requests, n);
        assert_eq!(s.lost_requests, 0, "replica must absorb the cut");
        assert!(
            s.retried_reads > 0,
            "reads in flight on array 0 at the cut must re-route: {s:?}"
        );
    }

    #[test]
    fn degraded_member_sheds_hot_chunks_to_peers() {
        let mut faults = FaultConfig::default();
        for cluster in 0..4 {
            for fimm in 0..2 {
                faults = faults.with_fimm_event(FimmFaultEvent {
                    cluster,
                    fimm,
                    at_ns: 0,
                    kind: FimmFaultKind::Slowdown(16),
                });
            }
        }
        let fed = Simulation::builder()
            .small_test()
            .mode(ManagementMode::Autonomic)
            .with_federation(4)
            .volume(VolumeSpec::striped(4).chunk_pages(16))
            .policy(LaggardPolicy {
                sla_p99_ns: 20_000,
                imbalance_milli: 1_100,
                epoch_ns: 100_000,
                max_chunks_per_epoch: 4,
                migration_slots: 16,
                cooldown_epochs: 1,
            })
            .array_faults(0, faults)
            .build()
            .unwrap();
        // Hot read set aimed at chunks homed on array 0 (chunk % 4 == 0,
        // i.e. volume pages [64k, 64k+16) for even k), plus background.
        let trace = (0..3_000u64)
            .map(|i| {
                let lpn = if i % 4 < 3 {
                    (i % 8) * 64 + (i % 16)
                } else {
                    1_024 + (i * 7) % 512
                };
                TraceRequest::new(SimTime::from_nanos(i * 400), IoOp::Read, LogicalPage(lpn), 1)
            })
            .collect();
        let run = fed.run_verified(&trace);
        assert!(run.integrity.is_ok());
        let s = &run.report.stats;
        assert_eq!(s.completed, 3_000);
        assert!(s.laggard_epochs > 0, "slowdown must trip the detector: {s:?}");
        assert!(s.migrations_started > 0, "{s:?}");
        assert!(s.migrations_committed > 0, "{s:?}");
        assert_eq!(
            s.per_array_migrations_out.iter().sum::<u64>(),
            s.migrations_committed
        );
        // The p99 census is cumulative, so a healthy peer can be flagged
        // once the true laggard has drained — but the degraded array must
        // dominate the shed count.
        assert!(
            s.per_array_migrations_out[0] >= s.per_array_migrations_out[1..].iter().sum::<u64>(),
            "the degraded array should shed the most load: {s:?}"
        );
        assert_eq!(
            s.migrated_pages,
            s.migrations_committed * 16,
            "one 16-page chunk per committed migration"
        );
    }

    #[test]
    fn federation_runs_are_deterministic() {
        let build = || {
            Simulation::builder()
                .small_test()
                .with_federation(4)
                .volume(VolumeSpec::replicated(2, 2).chunk_pages(16))
                .build()
                .unwrap()
        };
        let trace = walk(400, 3_000, 350);
        let a = build().run_verified(&trace);
        let b = build().run_verified(&trace);
        assert_eq!(a.report.stats, b.report.stats);
        assert_eq!(a.report.arrays, b.report.arrays);
    }

    #[test]
    fn federated_members_accept_a_worker_count() {
        let build = |workers: Option<u32>| {
            let b = Simulation::builder()
                .small_test()
                .with_federation(3)
                .volume(VolumeSpec::striped(3).chunk_pages(16));
            match workers {
                Some(n) => b.workers(n),
                None => b,
            }
            .build()
            .unwrap()
        };
        let trace = walk(300, 2_000, 400);
        let serial = build(None).run_verified(&trace);
        let one = build(Some(1)).run_verified(&trace);
        let eight = build(Some(8)).run_verified(&trace);
        // Sharded members re-home FTL/autonomic state per domain, so
        // only worker counts must agree bit-for-bit with each other …
        assert_eq!(one.report.stats, eight.report.stats);
        // … while the workload outcome matches the serial members.
        assert_eq!(
            serial.report.stats.volume_requests,
            one.report.stats.volume_requests
        );
        assert_eq!(serial.report.completed(), one.report.completed());
    }

    #[test]
    fn federation_stats_round_trip_through_serde() {
        let fed = Simulation::builder()
            .small_test()
            .with_federation(2)
            .volume(VolumeSpec::striped(2))
            .policy(policy_off())
            .build()
            .unwrap();
        let stats = fed.run_verified(&walk(50, 1_000, 500)).report.stats;
        let json = serde_json::to_string(&stats).unwrap();
        let back: FederationStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }

    #[test]
    fn traced_federation_reports_cross_array_events_and_metrics() {
        let fed = Simulation::builder()
            .small_test()
            .with_recorder(triplea_sim::trace::TraceConfig::all())
            .with_federation(2)
            .volume(VolumeSpec::replicated(1, 2).chunk_pages(16))
            .policy(policy_off())
            .build()
            .unwrap();
        let run = fed.run_verified(&walk(60, 500, 400));
        let trace = run.trace.expect("recorder attached");
        assert!(
            trace.events.iter().any(|e| e.kind.name() == "federation_hop"),
            "hops must be recorded"
        );
        assert!(trace.metrics.get("federation.volume.requests").is_some());
        assert!(trace.metrics.get("federation.array.0.completed").is_some());
        assert!(trace.metrics.get("federation.array.1.p99_ns").is_some());
    }
}
