//! Array federation: N Triple-A boxes behind one volume namespace.
//!
//! The paper stops at a single autonomic array behind one root complex.
//! This module goes one level up: a [`VolumeManager`] owns N independent
//! member [`Array`](crate::Array) engines inside one deterministic epoch
//! loop, exposes a single volume address space that stripes (and
//! optionally replicates) across them, and extends the Eq. 3 autonomic
//! machinery to whole arrays — when a member array's p99 lags the
//! federation budget, hot chunks are shadow-cloned to a peer array with
//! the same clone-then-commit discipline the intra-array migration
//! machinery uses, so a power cut mid-migration never commits a
//! half-copied placement.
//!
//! # Address mapping
//!
//! The volume is divided into fixed-size chunks of
//! [`VolumeSpec::chunk_pages`] pages. With stripe width `W` and
//! replication factor `R`, the federation requires exactly `W × R`
//! member arrays: copy `j` of chunk `k` homes on array `(k mod W) + jW`
//! at array-local chunk `k / W`. The map is a bijection from chunks onto
//! each copy group's `(array, local chunk)` space by construction (the
//! property suite pins this down), and inter-array migration overlays it
//! with explicit placement overrides into a reserved migration-slot
//! region above the home rows.
//!
//! # Example
//!
//! ```
//! use triplea_core::{IoOp, ManagementMode, Simulation, Trace, TraceRequest, VolumeSpec};
//! use triplea_ftl::LogicalPage;
//! use triplea_sim::SimTime;
//!
//! let fed = Simulation::builder()
//!     .small_test()
//!     .mode(ManagementMode::Autonomic)
//!     .with_federation(2)
//!     .volume(VolumeSpec::striped(2).chunk_pages(16))
//!     .build()
//!     .expect("valid federation");
//! let trace = Trace::new(vec![TraceRequest::new(SimTime::ZERO, IoOp::Read, LogicalPage(0), 1)]);
//! let run = fed.run_verified(&trace);
//! assert_eq!(run.report.stats.completed, 1);
//! assert!(run.integrity.is_ok());
//! ```

mod config;
mod manager;
mod map;

pub use config::{
    FederationBuilder, FederationConfig, FederationError, LaggardPolicy, VolumeSpec, MAX_ARRAYS,
};
pub use manager::{Federation, FederationReport, FederationRun, FederationStats};
pub use map::{ChunkPlacement, VolumeMapper};
