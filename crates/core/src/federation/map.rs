//! The deterministic volume address mapper: volume LBA → (member array,
//! array-local LPN), with replica fan-out and migration overrides.

use triplea_ftl::LogicalPage;
use triplea_sim::FxHashMap;

use crate::federation::config::FederationConfig;

/// Where one copy of one chunk currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPlacement {
    /// Member array holding the copy.
    pub array: u32,
    /// Array-local chunk index (home row, or a migration slot ≥ the
    /// volume's row count after an inter-array migration).
    pub local_chunk: u64,
}

/// One array-local fragment of a volume request: the contiguous page run
/// a single chunk contributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Volume chunk the run falls into.
    pub chunk: u64,
    /// Page offset inside the chunk.
    pub offset: u64,
    /// Pages in the run (never crosses a chunk boundary).
    pub pages: u32,
}

/// The volume → member-array address map.
///
/// Home placement is pure arithmetic: copy `j` of chunk `k` lives on
/// array `(k mod W) + jW` at local chunk `k / W` — a bijection from
/// chunks onto each copy group's `(array, row)` space. Inter-array
/// migrations overlay sparse overrides pointing into the migration-slot
/// region (local chunks `rows..rows+slots`); the override table is
/// consulted first, so commit is a single insert and rollback is simply
/// never inserting.
#[derive(Clone, Debug)]
pub struct VolumeMapper {
    width: u32,
    replicas: u32,
    chunk_pages: u64,
    volume_pages: u64,
    chunks: u64,
    rows: u64,
    /// `(copy, chunk) → placement` for migrated copies only.
    overrides: FxHashMap<(u32, u64), ChunkPlacement>,
}

impl VolumeMapper {
    /// Builds the mapper for a validated federation geometry.
    pub(crate) fn new(cfg: &FederationConfig) -> Self {
        VolumeMapper {
            width: cfg.volume.stripe_width,
            replicas: cfg.volume.replicas,
            chunk_pages: cfg.volume.chunk_pages,
            volume_pages: cfg.volume.volume_pages,
            chunks: cfg.chunks,
            rows: cfg.rows,
            overrides: FxHashMap::default(),
        }
    }

    /// A standalone mapper over raw geometry — the property-test entry
    /// point (no full [`FederationConfig`] needed).
    pub fn from_geometry(width: u32, replicas: u32, chunk_pages: u64, chunks: u64) -> Self {
        assert!(width >= 1 && replicas >= 1 && chunk_pages >= 1 && chunks >= 1);
        VolumeMapper {
            width,
            replicas,
            chunk_pages,
            volume_pages: chunks * chunk_pages,
            chunks,
            rows: chunks.div_ceil(width as u64),
            overrides: FxHashMap::default(),
        }
    }

    /// Stripe width `W`.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Replication factor `R`.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Pages per chunk.
    pub fn chunk_pages(&self) -> u64 {
        self.chunk_pages
    }

    /// Volume capacity in pages.
    pub fn volume_pages(&self) -> u64 {
        self.volume_pages
    }

    /// Volume chunks.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Array-local home rows (`ceil(chunks / W)`); migration slots start
    /// at this local-chunk index.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The *home* placement of copy `copy` of chunk `chunk` — pure
    /// arithmetic, ignoring migration overrides.
    pub fn home(&self, copy: u32, chunk: u64) -> ChunkPlacement {
        debug_assert!(copy < self.replicas && chunk < self.chunks);
        ChunkPlacement {
            array: (chunk % self.width as u64) as u32 + copy * self.width,
            local_chunk: chunk / self.width as u64,
        }
    }

    /// The inverse of [`VolumeMapper::home`]: which `(copy, chunk)`
    /// homes at `(array, local_chunk)`, or `None` when the slot is past
    /// the end of that array's column.
    pub fn home_inverse(&self, array: u32, local_chunk: u64) -> Option<(u32, u64)> {
        let w = self.width as u64;
        let copy = array / self.width;
        let column = (array % self.width) as u64;
        if copy >= self.replicas {
            return None;
        }
        let chunk = local_chunk * w + column;
        (chunk < self.chunks).then_some((copy, chunk))
    }

    /// The *current* placement of copy `copy` of chunk `chunk` —
    /// migration overrides first, home placement otherwise.
    pub fn placement(&self, copy: u32, chunk: u64) -> ChunkPlacement {
        self.overrides
            .get(&(copy, chunk))
            .copied()
            .unwrap_or_else(|| self.home(copy, chunk))
    }

    /// `true` when this copy has been migrated off its home.
    pub fn is_migrated(&self, copy: u32, chunk: u64) -> bool {
        self.overrides.contains_key(&(copy, chunk))
    }

    /// Migrated-copy count.
    pub fn migrated(&self) -> usize {
        self.overrides.len()
    }

    /// Commits a migration: copy `copy` of `chunk` now reads and writes
    /// at `to`. Called only after every clone write is durable on the
    /// destination (clone-then-commit).
    pub(crate) fn commit_migration(&mut self, copy: u32, chunk: u64, to: ChunkPlacement) {
        self.overrides.insert((copy, chunk), to);
    }

    /// The member arrays currently holding any copy of `chunk`, in copy
    /// order.
    pub fn holders(&self, chunk: u64) -> Vec<u32> {
        (0..self.replicas)
            .map(|j| self.placement(j, chunk).array)
            .collect()
    }

    /// Splits a volume request `[lpn, lpn + pages)` into per-chunk
    /// fragments, in address order. Every fragment stays inside one
    /// chunk, so it maps to one contiguous array-local run per copy.
    pub fn fragments(&self, lpn: LogicalPage, pages: u32) -> Vec<Fragment> {
        debug_assert!(lpn.0 + pages as u64 <= self.volume_pages);
        let mut out = Vec::new();
        let mut addr = lpn.0;
        let mut left = pages as u64;
        while left > 0 {
            let chunk = addr / self.chunk_pages;
            let offset = addr % self.chunk_pages;
            let run = left.min(self.chunk_pages - offset);
            out.push(Fragment {
                chunk,
                offset,
                pages: run as u32,
            });
            addr += run;
            left -= run;
        }
        out
    }

    /// The array-local LPN of `offset` inside `placement`'s chunk.
    pub fn local_lpn(&self, placement: ChunkPlacement, offset: u64) -> LogicalPage {
        LogicalPage(placement.local_chunk * self.chunk_pages + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_is_a_bijection_per_copy_group() {
        let m = VolumeMapper::from_geometry(3, 2, 8, 17);
        for copy in 0..2 {
            let mut seen = std::collections::BTreeSet::new();
            for chunk in 0..17 {
                let p = m.home(copy, chunk);
                assert!(p.array / 3 == copy, "copy group");
                assert!(p.local_chunk < m.rows());
                assert!(seen.insert((p.array, p.local_chunk)), "collision at {chunk}");
                assert_eq!(m.home_inverse(p.array, p.local_chunk), Some((copy, chunk)));
            }
        }
    }

    #[test]
    fn fragments_respect_chunk_boundaries() {
        let m = VolumeMapper::from_geometry(2, 1, 8, 16);
        let frags = m.fragments(LogicalPage(6), 12);
        assert_eq!(
            frags,
            vec![
                Fragment {
                    chunk: 0,
                    offset: 6,
                    pages: 2
                },
                Fragment {
                    chunk: 1,
                    offset: 0,
                    pages: 8
                },
                Fragment {
                    chunk: 2,
                    offset: 0,
                    pages: 2
                },
            ]
        );
        let total: u32 = frags.iter().map(|f| f.pages).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn overrides_supersede_home_until_then_identical() {
        let mut m = VolumeMapper::from_geometry(2, 2, 4, 8);
        assert_eq!(m.placement(1, 5), m.home(1, 5));
        assert!(!m.is_migrated(1, 5));
        let slot = ChunkPlacement {
            array: 0,
            local_chunk: m.rows() + 3,
        };
        m.commit_migration(1, 5, slot);
        assert_eq!(m.placement(1, 5), slot);
        assert!(m.is_migrated(1, 5));
        assert_eq!(m.placement(0, 5), m.home(0, 5), "other copy untouched");
        assert_eq!(m.holders(5), vec![m.home(0, 5).array, 0]);
    }

    #[test]
    fn local_lpn_lands_inside_the_local_chunk() {
        let m = VolumeMapper::from_geometry(4, 1, 16, 64);
        let p = m.home(0, 9);
        assert_eq!(m.local_lpn(p, 5).0, p.local_chunk * 16 + 5);
    }
}
