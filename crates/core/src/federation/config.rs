//! Typed federation configuration: volume geometry, the inter-array
//! laggard policy, and the validating builder.

use triplea_sim::trace::TraceConfig;
use triplea_sim::Nanos;

use crate::config::{ArrayConfig, ArrayConfigBuilder, ConfigError, FaultConfig, ManagementMode};
use crate::federation::manager::Federation;
use crate::tenant::TenantId;

/// Member arrays a federation may hold.
pub const MAX_ARRAYS: u32 = 64;

/// Largest chunk the volume mapper will stripe by, in pages. Chunks are
/// cloned as single requests during inter-array migration, so the cap
/// bounds the burst one migration injects.
pub(crate) const MAX_CHUNK_PAGES: u64 = 4_096;

/// Geometry of one federated volume: how the volume address space
/// spreads over the member arrays.
///
/// With stripe width `W` and replication factor `R` the federation must
/// own exactly `W × R` arrays; see the module docs for the placement
/// function.
#[derive(Clone, Debug, PartialEq)]
pub struct VolumeSpec {
    /// Arrays a single copy stripes across (`W ≥ 1`).
    pub stripe_width: u32,
    /// Full copies of every chunk (`R ≥ 1`; `1` = striping only).
    pub replicas: u32,
    /// Pages per stripe chunk.
    pub chunk_pages: u64,
    /// Volume capacity in pages. `0` (the default) sizes the volume to
    /// fill the member arrays, less the migration-slot reserve.
    pub volume_pages: u64,
    /// Tenants bound to this volume; must name tenants declared in the
    /// member-array configuration. Empty = untenanted volume.
    pub tenants: Vec<TenantId>,
}

impl VolumeSpec {
    /// A striped, unreplicated volume over `width` arrays.
    pub fn striped(width: u32) -> Self {
        VolumeSpec {
            stripe_width: width,
            replicas: 1,
            chunk_pages: 64,
            volume_pages: 0,
            tenants: Vec::new(),
        }
    }

    /// A striped volume with `replicas` full copies (RAID-10 layout over
    /// `width × replicas` arrays).
    pub fn replicated(width: u32, replicas: u32) -> Self {
        VolumeSpec {
            replicas,
            ..VolumeSpec::striped(width)
        }
    }

    /// Sets the stripe chunk size, in pages.
    pub fn chunk_pages(mut self, pages: u64) -> Self {
        self.chunk_pages = pages;
        self
    }

    /// Sets an explicit volume capacity, in pages.
    pub fn volume_pages(mut self, pages: u64) -> Self {
        self.volume_pages = pages;
        self
    }

    /// Binds `tenant` to this volume; requests from unbound tenants are
    /// rejected at submission on tenant-enabled federations.
    pub fn bind_tenant(mut self, tenant: TenantId) -> Self {
        self.tenants.push(tenant);
        self
    }
}

/// The inter-array laggard policy: the Eq. 3 machinery lifted one level
/// up, where whole member arrays take the role FIMMs play inside one
/// box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaggardPolicy {
    /// Federation p99 budget, ns. An array whose cumulative p99 exceeds
    /// this *and* lags its best peer by [`LaggardPolicy::imbalance_milli`]
    /// is the federation's laggard. `0` disables the policy.
    pub sla_p99_ns: Nanos,
    /// Laggard threshold relative to the healthiest peer, in
    /// milli-units: `1500` flags an array once its p99 is 1.5× the best
    /// peer's (integer arithmetic keeps the comparison deterministic).
    pub imbalance_milli: u64,
    /// Epoch length of the federation scheduler, ns: member arrays are
    /// co-simulated in lockstep windows of this size, and the laggard
    /// detector samples once per epoch.
    pub epoch_ns: Nanos,
    /// Hot chunks shadow-cloned off the laggard per detection.
    pub max_chunks_per_epoch: u32,
    /// Migration-slot chunks reserved on every array for inbound clones;
    /// also the capacity check's reserve.
    pub migration_slots: u64,
    /// Epochs to hold off after a migration round before re-examining
    /// (the inter-array analogue of the Eq. 3 cooldown).
    pub cooldown_epochs: u32,
}

impl Default for LaggardPolicy {
    fn default() -> Self {
        LaggardPolicy {
            sla_p99_ns: 1_000_000,
            imbalance_milli: 1_300,
            epoch_ns: 500_000,
            max_chunks_per_epoch: 4,
            migration_slots: 64,
            cooldown_epochs: 2,
        }
    }
}

/// A validated federation configuration, as resolved by
/// [`FederationBuilder::build`]. Geometry fields (`chunks`, `rows`,
/// `volume_pages`) are derived and cross-checked against the member
/// array's capacity.
#[derive(Clone, Debug, PartialEq)]
pub struct FederationConfig {
    /// Configuration of each (homogeneous) member array. Per-array fault
    /// plans may differ via [`FederationBuilder::array_faults`].
    pub array: ArrayConfig,
    /// Member-array count (`= stripe_width × replicas`).
    pub arrays: u32,
    /// The volume geometry.
    pub volume: VolumeSpec,
    /// The inter-array laggard policy.
    pub policy: LaggardPolicy,
    /// Management mode of every member array.
    pub mode: ManagementMode,
    /// Volume chunks (`ceil(volume_pages / chunk_pages)`).
    pub chunks: u64,
    /// Array-local home rows (`ceil(chunks / stripe_width)`).
    pub rows: u64,
    /// Per-array fault-plan overrides `(array index, plan)`.
    pub fault_overrides: Vec<(u32, FaultConfig)>,
    /// Recorder attached to the volume manager, when tracing.
    pub(crate) trace: Option<TraceConfig>,
}

/// Returned by [`FederationBuilder::build`] so impossible federations
/// are rejected before any member array is assembled, in the style of
/// [`ConfigError`].
#[derive(Clone, Debug, PartialEq)]
pub enum FederationError {
    /// The member-array configuration itself failed validation.
    Array(ConfigError),
    /// `arrays == 0`.
    NoArrays,
    /// More member arrays than [`MAX_ARRAYS`].
    TooManyArrays {
        /// Requested count.
        count: u32,
        /// The supported maximum.
        max: u32,
    },
    /// Stripe width, replicas, or chunk size is zero.
    ZeroGeometry {
        /// Which geometry field was zero.
        field: &'static str,
    },
    /// Chunks above `MAX_CHUNK_PAGES` (4096) pages.
    ChunkTooLarge {
        /// Requested chunk size, pages.
        chunk_pages: u64,
        /// The supported maximum.
        max: u64,
    },
    /// `stripe_width × replicas` does not equal the member-array count.
    GeometryMismatch {
        /// Member arrays configured.
        arrays: u32,
        /// Requested stripe width.
        stripe_width: u32,
        /// Requested replication factor.
        replicas: u32,
    },
    /// The volume (home rows plus the migration-slot reserve) does not
    /// fit a member array.
    VolumeOverflow {
        /// Pages each array would need.
        needed_pages: u64,
        /// Pages each array actually has.
        array_pages: u64,
    },
    /// The derived volume holds no chunks at all.
    EmptyVolume,
    /// `policy.epoch_ns == 0`: the epoch scheduler cannot advance.
    ZeroEpoch,
    /// A volume tenant binding names a tenant outside the member-array
    /// tenant table.
    UnboundTenant {
        /// The tenant id the binding named.
        tenant: u32,
        /// Tenants the member-array configuration declares.
        tenants: usize,
    },
    /// A fault override addresses an array outside the federation.
    FaultOverrideOutOfRange {
        /// The array index the override named.
        array: u32,
        /// Member arrays configured.
        arrays: u32,
    },
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::Array(e) => write!(f, "member-array config invalid: {e}"),
            FederationError::NoArrays => write!(f, "a federation needs at least one member array"),
            FederationError::TooManyArrays { count, max } => {
                write!(f, "{count} member arrays configured; at most {max} supported")
            }
            FederationError::ZeroGeometry { field } => {
                write!(f, "volume geometry field `{field}` must be at least 1")
            }
            FederationError::ChunkTooLarge { chunk_pages, max } => {
                write!(f, "chunk of {chunk_pages} pages exceeds the {max}-page maximum")
            }
            FederationError::GeometryMismatch {
                arrays,
                stripe_width,
                replicas,
            } => write!(
                f,
                "stripe_width {stripe_width} × replicas {replicas} requires \
                 {} member arrays, but {arrays} are configured",
                stripe_width * replicas
            ),
            FederationError::VolumeOverflow {
                needed_pages,
                array_pages,
            } => write!(
                f,
                "volume needs {needed_pages} pages per member array \
                 (home rows + migration reserve), but each array has {array_pages}"
            ),
            FederationError::EmptyVolume => {
                write!(f, "derived volume geometry holds zero chunks")
            }
            FederationError::ZeroEpoch => {
                write!(f, "policy.epoch_ns must be at least 1 ns")
            }
            FederationError::UnboundTenant { tenant, tenants } => write!(
                f,
                "volume bound to tenant.{tenant}, but the member-array config declares \
                 {tenants} tenant(s)"
            ),
            FederationError::FaultOverrideOutOfRange { array, arrays } => write!(
                f,
                "fault override addresses array.{array}, but the federation has {arrays} arrays"
            ),
        }
    }
}

impl std::error::Error for FederationError {}

impl From<ConfigError> for FederationError {
    fn from(e: ConfigError) -> Self {
        FederationError::Array(e)
    }
}

/// Builder for a [`Federation`]; obtained from
/// [`SimulationBuilder::with_federation`](crate::SimulationBuilder::with_federation).
/// Validates the member-array configuration *and* the federation
/// geometry at [`build`](FederationBuilder::build) time.
#[derive(Clone, Debug)]
pub struct FederationBuilder {
    pub(crate) base: ArrayConfigBuilder,
    pub(crate) mode: ManagementMode,
    pub(crate) trace: Option<TraceConfig>,
    pub(crate) arrays: u32,
    pub(crate) volume: VolumeSpec,
    pub(crate) policy: LaggardPolicy,
    pub(crate) fault_overrides: Vec<(u32, FaultConfig)>,
}

impl FederationBuilder {
    /// Sets the member-array count.
    pub fn arrays(mut self, n: u32) -> Self {
        self.arrays = n;
        self
    }

    /// Sets the volume geometry.
    pub fn volume(mut self, spec: VolumeSpec) -> Self {
        self.volume = spec;
        self
    }

    /// Sets the inter-array laggard policy.
    pub fn policy(mut self, policy: LaggardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Applies typed edits to the shared member-array configuration.
    pub fn configure(mut self, f: impl FnOnce(ArrayConfigBuilder) -> ArrayConfigBuilder) -> Self {
        self.base = f(self.base);
        self
    }

    /// Sets the management mode of every member array.
    pub fn mode(mut self, mode: ManagementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs every member array on `n` worker threads via the
    /// conservative sharded executor. Federation results stay
    /// deterministic and identical for every `n`; members whose
    /// configuration cannot shard (e.g. a fault-storm override from
    /// [`array_faults`](FederationBuilder::array_faults)) fall back to
    /// the serial engine individually.
    pub fn workers(mut self, n: u32) -> Self {
        self.base = self.base.workers(n);
        self
    }

    /// Attaches a federation-level event recorder; the run's
    /// [`FederationRun::trace`](crate::FederationRun) then carries
    /// cross-array hop, laggard, and migration events plus
    /// `federation.array.N.*` metrics.
    pub fn with_recorder(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Replaces the fault plan of one member array — how a degraded-box
    /// scenario aims a fault storm at a single federation member.
    pub fn array_faults(mut self, array: u32, faults: FaultConfig) -> Self {
        self.fault_overrides.push((array, faults));
        self
    }

    /// Validates and assembles the federation.
    ///
    /// # Errors
    ///
    /// Returns the first [`FederationError`] found; nothing is
    /// constructed on failure.
    pub fn build(self) -> Result<Federation, FederationError> {
        let array = self.base.build()?;
        if self.arrays == 0 {
            return Err(FederationError::NoArrays);
        }
        if self.arrays > MAX_ARRAYS {
            return Err(FederationError::TooManyArrays {
                count: self.arrays,
                max: MAX_ARRAYS,
            });
        }
        let v = &self.volume;
        for (field, val) in [
            ("stripe_width", v.stripe_width as u64),
            ("replicas", v.replicas as u64),
            ("chunk_pages", v.chunk_pages),
        ] {
            if val == 0 {
                return Err(FederationError::ZeroGeometry { field });
            }
        }
        if v.chunk_pages > MAX_CHUNK_PAGES {
            return Err(FederationError::ChunkTooLarge {
                chunk_pages: v.chunk_pages,
                max: MAX_CHUNK_PAGES,
            });
        }
        if v.stripe_width * v.replicas != self.arrays {
            return Err(FederationError::GeometryMismatch {
                arrays: self.arrays,
                stripe_width: v.stripe_width,
                replicas: v.replicas,
            });
        }
        if self.policy.epoch_ns == 0 {
            return Err(FederationError::ZeroEpoch);
        }
        let tenants = array.tenants.len();
        for t in &v.tenants {
            if t.index() >= tenants {
                return Err(FederationError::UnboundTenant {
                    tenant: t.0,
                    tenants,
                });
            }
        }
        for &(a, _) in &self.fault_overrides {
            if a >= self.arrays {
                return Err(FederationError::FaultOverrideOutOfRange {
                    array: a,
                    arrays: self.arrays,
                });
            }
        }
        let array_pages = array.shape.total_pages();
        let w = v.stripe_width as u64;
        let reserve = self.policy.migration_slots * v.chunk_pages;
        let mut volume = self.volume;
        let (chunks, rows) = if volume.volume_pages == 0 {
            // Fill the member arrays, less the migration reserve.
            let rows = (array_pages.saturating_sub(reserve)) / volume.chunk_pages;
            let chunks = rows * w;
            volume.volume_pages = chunks * volume.chunk_pages;
            (chunks, rows)
        } else {
            let chunks = volume.volume_pages.div_ceil(volume.chunk_pages);
            let rows = chunks.div_ceil(w);
            let needed = rows * volume.chunk_pages + reserve;
            if needed > array_pages {
                return Err(FederationError::VolumeOverflow {
                    needed_pages: needed,
                    array_pages,
                });
            }
            (chunks, rows)
        };
        if chunks == 0 {
            return Err(FederationError::EmptyVolume);
        }
        let cfg = FederationConfig {
            array,
            arrays: self.arrays,
            volume,
            policy: self.policy,
            mode: self.mode,
            chunks,
            rows,
            fault_overrides: self.fault_overrides,
            trace: self.trace,
        };
        Ok(Federation::assemble(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    fn builder() -> FederationBuilder {
        Simulation::builder().small_test().with_federation(4)
    }

    #[test]
    fn geometry_must_match_array_count() {
        let err = builder()
            .volume(VolumeSpec::replicated(2, 3))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            FederationError::GeometryMismatch {
                arrays: 4,
                stripe_width: 2,
                replicas: 3
            }
        );
        assert!(err.to_string().contains("6 member arrays"), "{err}");
    }

    #[test]
    fn zero_geometry_fields_are_rejected() {
        let err = builder()
            .volume(VolumeSpec::striped(4).chunk_pages(0))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            FederationError::ZeroGeometry {
                field: "chunk_pages"
            }
        );
    }

    #[test]
    fn oversized_volume_is_rejected_with_capacity_math() {
        let err = builder()
            .volume(VolumeSpec::replicated(2, 2).volume_pages(u64::MAX / 2))
            .build()
            .unwrap_err();
        assert!(matches!(err, FederationError::VolumeOverflow { .. }), "{err:?}");
    }

    #[test]
    fn invalid_member_config_surfaces_as_array_error() {
        let err = builder()
            .configure(|c| c.fimms_per_cluster(0))
            .volume(VolumeSpec::replicated(2, 2))
            .build()
            .unwrap_err();
        assert!(matches!(err, FederationError::Array(_)), "{err:?}");
    }

    #[test]
    fn volume_tenants_must_exist_in_the_array_table() {
        let err = builder()
            .volume(VolumeSpec::replicated(2, 2).bind_tenant(TenantId(5)))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            FederationError::UnboundTenant {
                tenant: 5,
                tenants: 0
            }
        );
    }

    #[test]
    fn fault_override_must_address_a_member() {
        let err = builder()
            .volume(VolumeSpec::replicated(2, 2))
            .array_faults(9, FaultConfig::default())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            FederationError::FaultOverrideOutOfRange { array: 9, arrays: 4 }
        );
    }

    #[test]
    fn default_volume_fills_arrays_minus_reserve() {
        let fed = builder().volume(VolumeSpec::replicated(2, 2)).build().unwrap();
        let cfg = fed.config();
        let array_pages = cfg.array.shape.total_pages();
        let reserve = cfg.policy.migration_slots * cfg.volume.chunk_pages;
        assert!(cfg.chunks > 0);
        assert_eq!(cfg.rows, cfg.chunks / 2);
        assert!(cfg.rows * cfg.volume.chunk_pages + reserve <= array_pages);
        assert_eq!(
            cfg.volume.volume_pages,
            cfg.chunks * cfg.volume.chunk_pages
        );
    }
}
