//! Conservative sharded execution of one array simulation.
//!
//! Maps the generic executor in `triplea_sim::shard` onto the Triple-A
//! topology: **one shard per PCI-E switch domain** plus a **root
//! shard** modelling the host side of the root complex. Clusters on
//! different switches only ever interact through the RC (§6.1: data
//! never migrates across switches), so crossing a domain boundary
//! always costs at least `rc_route_ns` — exactly the lookahead
//! [`PcieParams::domain_lookahead_ns`](triplea_pcie::PcieParams::domain_lookahead_ns)
//! reports, and exactly what lets every domain simulate `[t, t + L)`
//! without hearing from its peers.
//!
//! # Division of labour
//!
//! The **root shard** owns everything host-side of the RC routing hop:
//! the global RC credit queue, per-request submit/grant/complete times,
//! and every completion-side accumulator (latency histograms,
//! breakdown sums, contention attribution, the latency time-series).
//! It dispatches an admitted request to the domain owning the
//! request's first page one `rc_route_ns` later.
//!
//! Each **domain shard** wraps a full [`Engine`] over the *global*
//! address space whose config zeroes `rc_route_ns` (its local RC is a
//! pass-through — the real hop already happened on the wire between
//! shards). Requests arrive as [`XMsg::Dispatch`] envelopes, run the
//! ordinary switch → endpoint → flash pipeline, and return their
//! completion one `rc_route_ns` after the domain-side response instant
//! — landing at the identical global time the serial engine would have
//! completed them.
//!
//! # What this is, and is not
//!
//! Sharded results are deterministic and **invariant to the worker
//! count** — that is the contract CI enforces. They are *not*
//! byte-identical to the serial engine: the partition gives each
//! domain its own FTL/autonomic state and its own RNG stream, the same
//! kind of divergence any real per-domain firmware would show. Golden
//! artifacts therefore always come from configs that never set
//! `workers`, which take the untouched serial path.

use triplea_flash::WearReport;
use triplea_ftl::{FtlStats, IntegrityError, LogicalPage};
use triplea_pcie::{Admission, CreditQueue};
use triplea_sim::shard::{run_conservative, Envelope, Outbox, Shard, ShardRunStats};
use triplea_sim::stats::{Histogram, TimeSeries};
use triplea_sim::{EventQueue, Nanos, SimTime};

use crate::array::{Array, Engine, VerifiedRun, GOLDEN};
use crate::autonomic::AutonomicStats;
use crate::config::{ArrayConfig, ManagementMode};
use crate::metrics::{FaultStats, RecoveryStats, RunReport};
use crate::request::{Breakdown, IoOp, Trace, TraceRequest};

/// `true` when `cfg` can run under the conservative domain partition.
///
/// The gate is a pure function of the configuration — never of the
/// trace or the worker count — so a config either always shards or
/// always falls back, and results stay worker-count-invariant.
/// Disqualifiers: any armed fault (fault RNG streams and power-loss
/// recovery are defined over the single global engine), tenants (the
/// weighted front door arbitrates globally at sub-lookahead
/// granularity), hot spares, a shared mapping cache (one cache would
/// be modelled as per-domain copies), a single-switch topology
/// (nothing to partition), and a zero RC routing latency (no
/// lookahead).
pub(crate) fn eligible(cfg: &ArrayConfig) -> bool {
    cfg.faults.is_quiet()
        && !cfg.tenants.is_active()
        && cfg.hot_spares == 0
        && cfg.mapping_cache_pages == 0
        && cfg.shape.topology.switches > 1
        && cfg.pcie.domain_lookahead_ns() > 0
}

/// Cross-shard message: the only traffic between the root and domains.
#[derive(Clone, Copy, Debug)]
enum XMsg {
    /// Root → domain: an admitted request, arriving at the switch side
    /// of the RC routing hop.
    Dispatch {
        /// Root-side request id.
        req: u32,
        op: IoOp,
        lpn: u64,
        pages: u32,
    },
    /// Domain → root: a finished request, arriving back at the host
    /// side of the RC routing hop.
    Return { req: u32, bd: Breakdown },
}

/// Root-shard event calendar entries.
#[derive(Clone, Copy, Debug)]
enum RootEv {
    /// Host submits request `id` (trace arrival).
    Submit(u32),
    /// Completion envelope for `req` matured at its arrival time.
    Return { req: u32, bd: Breakdown },
}

/// Host-side per-request state: enough to time the request and rebuild
/// the serial engine's completion accounting from the returned
/// [`Breakdown`].
#[derive(Clone, Copy, Debug)]
struct RootReq {
    op: IoOp,
    lpn: u64,
    pages: u32,
    submit: SimTime,
    /// When the RC credit was granted; `rc_stall = granted - submit`.
    granted: SimTime,
    finish: SimTime,
    done: bool,
}

/// The host + root-complex shard (shard index 0).
struct RootNode {
    rc: CreditQueue,
    rc_route: Nanos,
    pages_per_cluster: u64,
    clusters_per_switch: u32,
    collect_series: bool,
    queue: EventQueue<RootEv>,
    reqs: Vec<RootReq>,
    // Completion-side accumulators, mirroring the serial engine's.
    completed: u64,
    reads_done: u64,
    writes_done: u64,
    first_submit: SimTime,
    last_complete: SimTime,
    lat: Histogram,
    rlat: Histogram,
    wlat: Histogram,
    bd_sum: Breakdown,
    attr_link: u64,
    attr_storage: u64,
    series: TimeSeries,
    events: u64,
}

impl RootNode {
    fn new(cfg: &ArrayConfig) -> Self {
        RootNode {
            rc: CreditQueue::new("rc", cfg.pcie.rc_queue),
            rc_route: cfg.pcie.rc_route_ns,
            pages_per_cluster: cfg.shape.pages_per_cluster(),
            clusters_per_switch: cfg.shape.topology.clusters_per_switch,
            collect_series: cfg.collect_series,
            queue: EventQueue::new(),
            reqs: Vec::new(),
            completed: 0,
            reads_done: 0,
            writes_done: 0,
            first_submit: SimTime::MAX,
            last_complete: SimTime::ZERO,
            lat: Histogram::new(),
            rlat: Histogram::new(),
            wlat: Histogram::new(),
            bd_sum: Breakdown::default(),
            attr_link: 0,
            attr_storage: 0,
            series: TimeSeries::new(),
            events: 0,
        }
    }

    /// Shard index (1 + switch) owning `lpn`'s statically striped
    /// cluster. Migrations never cross switches, so whatever cluster a
    /// page currently lives on, its *switch* is static.
    fn shard_of(&self, lpn: u64) -> usize {
        let cluster = lpn / self.pages_per_cluster;
        1 + (cluster / self.clusters_per_switch as u64) as usize
    }

    /// Grants the RC credit to request `i` at `now` and ships it to its
    /// domain, one routing hop later — the same instant the serial
    /// engine would schedule its `SwAdmit`.
    fn grant(&mut self, now: SimTime, i: u32, out: &mut Outbox<XMsg>) {
        let rs = &mut self.reqs[i as usize];
        rs.granted = now;
        let dst = self.shard_of(self.reqs[i as usize].lpn);
        let rs = &self.reqs[i as usize];
        out.send(
            dst,
            now + self.rc_route,
            XMsg::Dispatch {
                req: i,
                op: rs.op,
                lpn: rs.lpn,
                pages: rs.pages,
            },
        );
    }

    /// Host-side completion at `now` (the instant the serial engine's
    /// `Complete` would fire): records every completion-side statistic
    /// the serial `on_complete` records, then re-grants the freed RC
    /// credit.
    fn complete(&mut self, now: SimTime, req: u32, bd: Breakdown, out: &mut Outbox<XMsg>) {
        let rs = &mut self.reqs[req as usize];
        debug_assert!(!rs.done, "request completed twice");
        rs.done = true;
        rs.finish = now;
        let total = now - rs.submit;
        let op = rs.op;
        let submit = rs.submit;
        // The domain's local RC is a zero-latency pass-through that
        // never queues (the global root admits at most `rc_queue`
        // requests), so the domain breakdown carries no rc_stall; the
        // host-side wait for the credit is accounted here.
        let mut bd = bd;
        bd.rc_stall += rs.granted - rs.submit;
        self.lat.record(total);
        match op {
            IoOp::Read => {
                self.rlat.record(total);
                self.reads_done += 1;
            }
            IoOp::Write => {
                self.wlat.record(total);
                self.writes_done += 1;
            }
        }
        self.bd_sum.accumulate(&bd);
        // Same root-cause decomposition as the serial engine.
        let own_link = bd.link_contention();
        let own_storage = bd.storage_contention();
        let own = own_link + own_storage;
        if own > 0 {
            let q = bd.queue_stall() as u128;
            self.attr_link += (q * own_link as u128 / own as u128) as u64;
            self.attr_storage += (q * own_storage as u128 / own as u128) as u64;
        }
        if self.collect_series {
            self.series.push(submit, total as f64 / 1_000.0);
        }
        self.completed += 1;
        self.last_complete = self.last_complete.max(now);
        if let Some(next) = self.rc.release() {
            self.grant(now, next as u32, out);
        }
    }
}

impl Shard for RootNode {
    type Msg = XMsg;

    fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn run_window(&mut self, horizon: SimTime, out: &mut Outbox<XMsg>) {
        while self.queue.peek_time().is_some_and(|t| t < horizon) {
            let (now, ev) = self.queue.pop().expect("peeked event present");
            self.events += 1;
            match ev {
                RootEv::Submit(i) => {
                    if let Admission::Admitted = self.rc.admit(i as u64) {
                        self.grant(now, i, out);
                    }
                }
                RootEv::Return { req, bd } => self.complete(now, req, bd, out),
            }
        }
    }

    fn deliver(&mut self, env: Envelope<XMsg>) {
        match env.msg {
            XMsg::Return { req, bd } => self.queue.push(env.at, RootEv::Return { req, bd }),
            XMsg::Dispatch { .. } => unreachable!("domains never dispatch to the root"),
        }
    }
}

/// One switch domain: a full engine over the global address space,
/// driven in conservative windows.
struct DomainNode {
    engine: Engine,
    /// Engine-local request id → root request id.
    root_ids: Vec<u32>,
    rc_route: Nanos,
    /// Reusable completion-drain buffer.
    scratch: Vec<(u32, SimTime, Breakdown)>,
}

impl Shard for DomainNode {
    type Msg = XMsg;

    fn next_event_time(&self) -> Option<SimTime> {
        self.engine.next_event_time()
    }

    fn run_window(&mut self, horizon: SimTime, out: &mut Outbox<XMsg>) {
        self.engine.process_until(horizon);
        self.engine.drain_completions(&mut self.scratch);
        for (local, finish, bd) in self.scratch.drain(..) {
            // The domain's `Complete` fires at the serial engine's
            // `RespAtRc` + 0 (its rc_route is zero); the real routing
            // hop back to the host happens on the wire here, so the
            // root completes at the serial engine's exact instant.
            out.send(
                0,
                finish + self.rc_route,
                XMsg::Return {
                    req: self.root_ids[local as usize],
                    bd,
                },
            );
        }
    }

    fn deliver(&mut self, env: Envelope<XMsg>) {
        match env.msg {
            XMsg::Dispatch {
                req,
                op,
                lpn,
                pages,
            } => {
                let r = TraceRequest::new(env.at, op, LogicalPage(lpn), pages);
                let local = self.engine.inject(&r);
                debug_assert_eq!(local as usize, self.root_ids.len());
                self.root_ids.push(req);
            }
            XMsg::Return { .. } => unreachable!("only the root receives returns"),
        }
    }
}

/// Either shard shape, so one executor drives both.
enum Node {
    Root(Box<RootNode>),
    Domain(Box<DomainNode>),
}

impl Shard for Node {
    type Msg = XMsg;

    fn next_event_time(&self) -> Option<SimTime> {
        match self {
            Node::Root(n) => n.next_event_time(),
            Node::Domain(n) => n.next_event_time(),
        }
    }

    fn run_window(&mut self, horizon: SimTime, out: &mut Outbox<XMsg>) {
        match self {
            Node::Root(n) => n.run_window(horizon, out),
            Node::Domain(n) => n.run_window(horizon, out),
        }
    }

    fn deliver(&mut self, env: Envelope<XMsg>) {
        match self {
            Node::Root(n) => n.deliver(env),
            Node::Domain(n) => n.deliver(env),
        }
    }
}

/// A sharded array run: shard 0 is the root, shards `1..=switches` the
/// domains. Built by `Array` when the config opts in (see
/// [`eligible`]); drives the same public surface as the serial engine
/// (`run_verified` or the incremental `ArrayRunner` protocol).
pub(crate) struct ShardedEngine {
    cfg: ArrayConfig,
    mode: ManagementMode,
    workers: usize,
    lookahead: Nanos,
    nodes: Vec<Node>,
    /// Cumulative executor counters across `step_until` calls.
    sync: ShardRunStats,
}

impl ShardedEngine {
    pub(crate) fn new(cfg: ArrayConfig, mode: ManagementMode, workers: u32) -> Box<ShardedEngine> {
        debug_assert!(eligible(&cfg), "caller checks eligibility");
        let lookahead = cfg.pcie.domain_lookahead_ns();
        let switches = cfg.shape.topology.switches;
        let mut nodes = Vec::with_capacity(switches as usize + 1);
        nodes.push(Node::Root(Box::new(RootNode::new(&cfg))));
        for d in 0..switches {
            let mut dc = cfg.clone();
            // The RC routing hop is modelled on the wire between the
            // root and domain shards; the domain's local RC must not
            // charge it again.
            dc.pcie.rc_route_ns = 0;
            // Completion-side series are recorded by the root.
            dc.collect_series = false;
            dc.workers = None;
            // Distinct deterministic RNG stream per domain manager.
            dc.seed = cfg.seed ^ (d as u64 + 1).wrapping_mul(GOLDEN);
            let mut engine = Array::build_engine(dc, mode);
            engine.enable_completion_log();
            nodes.push(Node::Domain(Box::new(DomainNode {
                engine,
                root_ids: Vec::new(),
                rc_route: cfg.pcie.rc_route_ns,
                scratch: Vec::new(),
            })));
        }
        Box::new(ShardedEngine {
            workers: workers.max(1) as usize,
            lookahead,
            nodes,
            sync: ShardRunStats::default(),
            cfg,
            mode,
        })
    }

    pub(crate) fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    pub(crate) fn mode(&self) -> ManagementMode {
        self.mode
    }

    fn root(&self) -> &RootNode {
        match &self.nodes[0] {
            Node::Root(r) => r,
            Node::Domain(_) => unreachable!("shard 0 is the root"),
        }
    }

    fn root_mut(&mut self) -> &mut RootNode {
        match &mut self.nodes[0] {
            Node::Root(r) => r,
            Node::Domain(_) => unreachable!("shard 0 is the root"),
        }
    }

    /// Enqueues one request at its arrival time; same contract as
    /// `ArrayRunner::submit` (the caller validates).
    pub(crate) fn submit(&mut self, r: &TraceRequest) -> u32 {
        let root = self.root_mut();
        let id = root.reqs.len() as u32;
        root.reqs.push(RootReq {
            op: r.op,
            lpn: r.lpn.0,
            pages: r.pages,
            submit: r.at,
            granted: SimTime::ZERO,
            finish: SimTime::ZERO,
            done: false,
        });
        root.queue.push(r.at, RootEv::Submit(id));
        root.first_submit = root.first_submit.min(r.at);
        id
    }

    /// Advances every shard conservatively until no event before `t`
    /// remains anywhere.
    pub(crate) fn step_until(&mut self, t: SimTime) {
        let stats = run_conservative(&mut self.nodes, self.lookahead, self.workers, t);
        self.sync.windows += stats.windows;
        self.sync.messages += stats.messages;
        self.sync.late_deliveries += stats.late_deliveries;
        self.sync.workers = stats.workers;
        debug_assert_eq!(stats.late_deliveries, 0, "conservative causality violated");
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.nodes.iter().all(|n| n.next_event_time().is_none())
    }

    pub(crate) fn completed(&self) -> u64 {
        self.root().completed
    }

    pub(crate) fn p99_ns(&self) -> u64 {
        self.root().lat.percentile(0.99)
    }

    pub(crate) fn is_done(&self, id: u32) -> bool {
        self.root().reqs[id as usize].done
    }

    pub(crate) fn finish_time(&self, id: u32) -> SimTime {
        self.root().reqs[id as usize].finish
    }

    /// The whole-trace fast path: validates and enqueues every request,
    /// then runs to completion.
    pub(crate) fn run_verified(mut self: Box<Self>, trace: &Trace) -> VerifiedRun {
        let total_pages = self.cfg.shape.total_pages();
        for (i, r) in trace.requests().iter().enumerate() {
            assert!(r.pages >= 1, "request {i} has zero pages");
            assert!(
                r.lpn.0 + r.pages as u64 <= total_pages,
                "request {i} exceeds the address space"
            );
            self.submit(r);
        }
        self.finish()
    }

    /// Drains everything, audits every domain's FTL metadata, and
    /// merges the per-shard accounting into one report.
    pub(crate) fn finish(mut self: Box<Self>) -> VerifiedRun {
        self.step_until(SimTime::MAX);
        let ShardedEngine {
            cfg, mode, nodes, ..
        } = *self;
        let mut it = nodes.into_iter();
        let Some(Node::Root(root)) = it.next() else {
            unreachable!("shard 0 is the root")
        };
        let total_clusters = cfg.shape.topology.total_clusters() as usize;
        let mut integrity: Result<(), IntegrityError> = Ok(());
        let mut events = root.events;
        let mut dropped_writes = 0u64;
        let mut per_cluster_requests = vec![0u64; total_clusters];
        let mut per_cluster_relocs_in = vec![0u64; total_clusters];
        let mut autonomic = AutonomicStats::default();
        let mut ftl = FtlStats::default();
        let mut wear = WearReport::default();
        let mut faults = FaultStats::default();
        for node in it {
            let Node::Domain(d) = node else {
                unreachable!("shards 1.. are domains")
            };
            if integrity.is_ok() {
                integrity = d.engine.check_integrity();
            }
            let rep = d.engine.into_report();
            events += rep.events;
            dropped_writes += rep.dropped_writes;
            for (a, b) in per_cluster_requests.iter_mut().zip(&rep.per_cluster_requests) {
                *a += b;
            }
            for (a, b) in per_cluster_relocs_in.iter_mut().zip(&rep.per_cluster_relocs_in) {
                *a += b;
            }
            add_autonomic(&mut autonomic, &rep.autonomic);
            add_ftl(&mut ftl, &rep.ftl);
            add_faults(&mut faults, &rep.faults);
            wear.merge(&rep.wear);
        }
        let report = RunReport {
            mode,
            completed: root.completed,
            reads: root.reads_done,
            writes: root.writes_done,
            first_submit: if root.first_submit == SimTime::MAX {
                SimTime::ZERO
            } else {
                root.first_submit
            },
            last_complete: root.last_complete,
            latency: root.lat,
            read_latency: root.rlat,
            write_latency: root.wlat,
            bd_sum: root.bd_sum,
            attr_link: root.attr_link,
            attr_storage: root.attr_storage,
            series: root.series,
            per_cluster_requests,
            per_cluster_relocs_in,
            dropped_writes,
            autonomic,
            ftl,
            wear,
            faults,
            recovery: RecoveryStats::default(),
            tenants: Vec::new(),
            events,
        };
        VerifiedRun {
            report,
            trace: None,
            integrity,
        }
    }
}

fn add_autonomic(a: &mut AutonomicStats, b: &AutonomicStats) {
    a.hot_detections += b.hot_detections;
    a.migrations_started += b.migrations_started;
    a.migrations_completed += b.migrations_completed;
    a.pages_migrated += b.pages_migrated;
    a.laggard_detections += b.laggard_detections;
    a.pages_reshaped += b.pages_reshaped;
    a.write_redirects += b.write_redirects;
    a.escalations += b.escalations;
    a.no_cold_target += b.no_cold_target;
}

fn add_ftl(a: &mut FtlStats, b: &FtlStats) {
    a.host_writes += b.host_writes;
    a.migration_writes += b.migration_writes;
    a.gc_writes += b.gc_writes;
    a.invalidations += b.invalidations;
    a.gc_erases += b.gc_erases;
}

fn add_faults(a: &mut FaultStats, b: &FaultStats) {
    a.transient_read_faults += b.transient_read_faults;
    a.prog_failures += b.prog_failures;
    a.erase_failures += b.erase_failures;
    a.blocks_retired_by_fault += b.blocks_retired_by_fault;
    a.fimm_deaths += b.fimm_deaths;
    a.fimm_slowdowns += b.fimm_slowdowns;
    a.degraded_reads += b.degraded_reads;
    a.unserviceable_reads += b.unserviceable_reads;
    a.fault_write_redirects += b.fault_write_redirects;
    a.tlp_replays += b.tlp_replays;
    a.migration_rollbacks += b.migration_rollbacks;
    a.gc_failed_erases += b.gc_failed_erases;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mixed read/write trace spanning both switch domains of
    /// `small_test`, including multi-page requests that straddle
    /// cluster (and domain-region) boundaries.
    fn cross_domain_trace(n: u64) -> Trace {
        let cfg = ArrayConfig::small_test();
        let total = cfg.shape.total_pages();
        let per_cluster = cfg.shape.pages_per_cluster();
        (0..n)
            .map(|i| {
                let op = if i % 3 == 0 { IoOp::Write } else { IoOp::Read };
                // Walk the whole address space; every 7th request sits
                // right at a cluster boundary with 4 pages, straddling
                // into the next region.
                let lpn = (i * 97) % (total - 4);
                let lpn = if i % 7 == 0 {
                    (lpn / per_cluster) * per_cluster + per_cluster - 2
                } else {
                    lpn
                };
                TraceRequest::new(
                    SimTime::from_nanos(i * 900),
                    op,
                    LogicalPage(lpn.min(total - 4)),
                    if i % 7 == 0 { 4 } else { 1 },
                )
            })
            .collect()
    }

    fn run_sharded(workers: u32, n: u64) -> RunReport {
        let mut cfg = ArrayConfig::small_test();
        cfg.workers = Some(workers);
        let out = crate::array::Array::new(cfg, ManagementMode::Autonomic)
            .run_verified(&cross_domain_trace(n));
        out.integrity.expect("sharded run keeps FTL metadata intact");
        out.report
    }

    #[test]
    fn small_test_config_is_eligible() {
        // small_test spans multiple switches and keeps faults quiet.
        assert!(eligible(&ArrayConfig::small_test()));
    }

    #[test]
    fn single_switch_and_zero_lookahead_fall_back() {
        let mut cfg = ArrayConfig::small_test();
        cfg.shape.topology.switches = 1;
        assert!(!eligible(&cfg));

        let mut cfg = ArrayConfig::small_test();
        cfg.pcie.rc_route_ns = 0;
        assert!(!eligible(&cfg));
    }

    #[test]
    fn shard_of_maps_switch_major_regions() {
        let cfg = ArrayConfig::small_test();
        let root = RootNode::new(&cfg);
        let per_cluster = cfg.shape.pages_per_cluster();
        let cps = cfg.shape.topology.clusters_per_switch as u64;
        assert_eq!(root.shard_of(0), 1);
        assert_eq!(root.shard_of(per_cluster * cps - 1), 1);
        assert_eq!(root.shard_of(per_cluster * cps), 2);
    }

    #[test]
    fn sharded_results_invariant_to_worker_count() {
        let one = run_sharded(1, 600);
        assert_eq!(one.completed(), 600);
        for workers in [2, 3, 8] {
            let many = run_sharded(workers, 600);
            assert_eq!(one, many, "report differs at {workers} workers");
        }
    }

    #[test]
    fn sharded_completions_match_serial_count() {
        let serial = crate::array::Array::new(ArrayConfig::small_test(), ManagementMode::Autonomic)
            .run(&cross_domain_trace(400));
        let sharded = run_sharded(2, 400);
        assert_eq!(serial.completed(), sharded.completed());
        assert_eq!(serial.reads(), sharded.reads());
        assert_eq!(serial.writes(), sharded.writes());
        // Latencies agree closely (the partition only re-homes FTL and
        // autonomic state, not the pipeline timing model).
        let a = serial.mean_latency_us();
        let b = sharded.mean_latency_us();
        assert!(
            (a - b).abs() / a < 0.05,
            "serial {a}us vs sharded {b}us diverge more than 5%"
        );
    }
}
