//! Aggregated results of one simulation run.

use triplea_flash::WearReport;
use triplea_ftl::FtlStats;
use triplea_sim::stats::{Histogram, TimeSeries};
use triplea_sim::SimTime;

use crate::autonomic::AutonomicStats;
use crate::config::ManagementMode;
use crate::request::Breakdown;
use crate::tenant::TenantStats;

/// Fault-injection and degraded-mode activity observed during one run.
///
/// All-zero (see [`FaultStats::any`]) whenever the configured
/// [`FaultConfig`](crate::FaultConfig) is quiet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct FaultStats {
    /// Read commands that failed ECC and were re-issued (flash layer).
    pub transient_read_faults: u64,
    /// Program commands that hard-failed at the NAND.
    pub prog_failures: u64,
    /// Erase commands that hard-failed at the NAND.
    pub erase_failures: u64,
    /// Blocks retired as grown bad blocks by those hard failures.
    pub blocks_retired_by_fault: u64,
    /// Scheduled whole-FIMM deaths that fired during the run.
    pub fimm_deaths: u64,
    /// Scheduled whole-FIMM slowdowns that fired during the run.
    pub fimm_slowdowns: u64,
    /// Host reads served by a live sibling because the home FIMM died.
    pub degraded_reads: u64,
    /// Reads that could not be served anywhere (every module dead).
    pub unserviceable_reads: u64,
    /// Writes redirected away from a failed module or bad block.
    pub fault_write_redirects: u64,
    /// Corrupted TLPs replayed on the PCI-E fabric.
    pub tlp_replays: u64,
    /// Migrations/reshapes of a page rolled back mid-copy; the original
    /// mapping was kept and no data was lost.
    pub migration_rollbacks: u64,
    /// GC victim blocks quarantined because their erase hard-failed.
    pub gc_failed_erases: u64,
}

impl FaultStats {
    /// `true` when any fault or degraded-mode event was recorded.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

impl std::fmt::Display for FaultStats {
    /// A one-line summary; `"no faults"` when the run was quiet.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.any() {
            return write!(f, "no faults");
        }
        write!(
            f,
            "{} transient reads, {} prog fails, {} erase fails, {} bad blocks, \
             {} FIMM deaths, {} slowdowns, {} degraded reads, {} unserviceable, \
             {} write redirects, {} tlp replays, {} rollbacks, {} gc erase fails",
            self.transient_read_faults,
            self.prog_failures,
            self.erase_failures,
            self.blocks_retired_by_fault,
            self.fimm_deaths,
            self.fimm_slowdowns,
            self.degraded_reads,
            self.unserviceable_reads,
            self.fault_write_redirects,
            self.tlp_replays,
            self.migration_rollbacks,
            self.gc_failed_erases
        )
    }
}

/// Crash-recovery and self-healing activity observed during one run:
/// power-loss remounts (journal replay) and hot-spare rebuilds.
///
/// All-zero (see [`RecoveryStats::any`]) when no power loss was
/// scheduled and no rebuild ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct RecoveryStats {
    /// Whole-array power cuts survived.
    pub power_losses: u64,
    /// Flushed journal records replayed by mount-time recovery scans.
    pub journal_replayed: u64,
    /// Un-flushed journal records lost to the cut.
    pub journal_dropped: u64,
    /// Mid-flight migration clones rolled back by recovery scans.
    pub aborted_clones: u64,
    /// Requests that were in flight at the cut and never completed.
    pub lost_inflight_requests: u64,
    /// Queued requests re-submitted after the remount finished.
    pub requeued_requests: u64,
    /// Total simulated time the array spent remounting.
    pub remount_ns: u64,
    /// Hot-spare rebuilds completed.
    pub rebuilds_completed: u64,
    /// Live pages copied onto spares by rebuilds.
    pub rebuild_pages: u64,
    /// Summed duration of completed rebuilds (death → spare swapped in).
    pub rebuild_ns: u64,
    /// p99 end-to-end latency (ns) of host requests that completed while
    /// a module was dead and its rebuild still running — the
    /// degraded-mode service quality.
    pub degraded_p99_ns: u64,
}

impl RecoveryStats {
    /// `true` when any recovery activity was recorded.
    pub fn any(&self) -> bool {
        *self != RecoveryStats::default()
    }
}

impl std::fmt::Display for RecoveryStats {
    /// A one-line summary; `"no recovery activity"` when idle.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.any() {
            return write!(f, "no recovery activity");
        }
        write!(
            f,
            "{} power losses ({} replayed, {} dropped, {} clones aborted, \
             {} lost, {} requeued, {}ns remount), {} rebuilds ({} pages, \
             {}ns, degraded p99 {}ns)",
            self.power_losses,
            self.journal_replayed,
            self.journal_dropped,
            self.aborted_clones,
            self.lost_inflight_requests,
            self.requeued_requests,
            self.remount_ns,
            self.rebuilds_completed,
            self.rebuild_pages,
            self.rebuild_ns,
            self.degraded_p99_ns
        )
    }
}

/// Everything measured during a run; the benchmark harness derives every
/// table row and figure series from this.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    pub(crate) mode: ManagementMode,
    pub(crate) completed: u64,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
    pub(crate) first_submit: SimTime,
    pub(crate) last_complete: SimTime,
    pub(crate) latency: Histogram,
    pub(crate) read_latency: Histogram,
    pub(crate) write_latency: Histogram,
    pub(crate) bd_sum: Breakdown,
    pub(crate) attr_link: u64,
    pub(crate) attr_storage: u64,
    pub(crate) series: TimeSeries,
    pub(crate) per_cluster_requests: Vec<u64>,
    pub(crate) per_cluster_relocs_in: Vec<u64>,
    pub(crate) dropped_writes: u64,
    pub(crate) autonomic: AutonomicStats,
    pub(crate) ftl: FtlStats,
    pub(crate) wear: WearReport,
    pub(crate) faults: FaultStats,
    pub(crate) recovery: RecoveryStats,
    /// One entry per configured tenant, in tenant-id order; empty on
    /// untenanted runs.
    pub(crate) tenants: Vec<TenantStats>,
    pub(crate) events: u64,
}

impl RunReport {
    /// Which management mode produced this report.
    pub fn mode(&self) -> ManagementMode {
        self.mode
    }

    /// Requests completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Completed reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Completed writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Wall-clock span from first submission to last completion.
    pub fn makespan(&self) -> SimTime {
        SimTime::from_nanos(self.last_complete.saturating_since(self.first_submit))
    }

    /// Sustained I/O operations per second over the makespan.
    pub fn iops(&self) -> f64 {
        let secs = self.makespan().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Mean end-to-end latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }

    /// Latency quantile in microseconds.
    pub fn latency_percentile_us(&self, p: f64) -> f64 {
        self.latency.percentile(p) as f64 / 1_000.0
    }

    /// Full latency histogram (nanoseconds).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency
    }

    /// Read-only latency histogram.
    pub fn read_latency_histogram(&self) -> &Histogram {
        &self.read_latency
    }

    /// Write-only latency histogram.
    pub fn write_latency_histogram(&self) -> &Histogram {
        &self.write_latency
    }

    /// Latency CDF points `(microseconds, fraction)` — Figures 1 and 11.
    pub fn latency_cdf_us(&self) -> Vec<(f64, f64)> {
        self.latency
            .cdf_points()
            .into_iter()
            .map(|(ns, f)| (ns as f64 / 1_000.0, f))
            .collect()
    }

    fn per_req(&self, total: u64) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            total as f64 / self.completed as f64 / 1_000.0
        }
    }

    /// Mean link-contention time per request, µs (Figure 10a, Table 2):
    /// direct waits on shared buses/links *plus* the share of upstream
    /// queue-stall time those waits caused. The paper uses the same
    /// root-cause decomposition — its Table 2 queue-stall column equals
    /// link-contention + storage-contention.
    pub fn avg_link_contention_us(&self) -> f64 {
        self.per_req(self.bd_sum.link_contention() + self.attr_link)
    }

    /// Mean storage-contention time per request, µs (Figure 10b):
    /// direct waits on busy dies / full write buffers plus the share of
    /// upstream queue-stall time they caused.
    pub fn avg_storage_contention_us(&self) -> f64 {
        self.per_req(self.bd_sum.storage_contention() + self.attr_storage)
    }

    /// Mean *direct* link wait per request (bus + PCI-E only, no
    /// queue-stall attribution), µs — the Figure 15 stack component.
    pub fn avg_direct_link_wait_us(&self) -> f64 {
        self.per_req(self.bd_sum.link_contention())
    }

    /// Mean *direct* storage wait per request, µs (Figure 15).
    pub fn avg_direct_storage_wait_us(&self) -> f64 {
        self.per_req(self.bd_sum.storage_contention())
    }

    /// Mean queue-stall time per request, µs (Figure 10c).
    pub fn avg_queue_stall_us(&self) -> f64 {
        self.per_req(self.bd_sum.queue_stall())
    }

    /// Mean RC-queue stall per request, µs (Figure 15).
    pub fn avg_rc_stall_us(&self) -> f64 {
        self.per_req(self.bd_sum.rc_stall)
    }

    /// Mean switch-level stall per request, µs (Figure 15).
    pub fn avg_switch_stall_us(&self) -> f64 {
        self.per_req(self.bd_sum.switch_stall)
    }

    /// Mean pure flash service time per request, µs (Figure 15's "FIMM
    /// throughput" component).
    pub fn avg_fimm_service_us(&self) -> f64 {
        self.per_req(self.bd_sum.fimm_service)
    }

    /// Residual per-request time not covered by the other buckets
    /// (network serialisation, routing, propagation, device layers), µs.
    pub fn avg_network_us(&self) -> f64 {
        let accounted = self.bd_sum.queue_stall()
            + self.bd_sum.link_contention()
            + self.bd_sum.storage_contention()
            + self.bd_sum.fimm_service;
        let total = (self.latency.mean() * self.completed as f64) as u64;
        self.per_req(total.saturating_sub(accounted))
    }

    /// The `(submit time, latency µs)` series, if collection was enabled
    /// (Figure 16).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Requests routed to each cluster (global cluster index).
    pub fn per_cluster_requests(&self) -> &[u64] {
        &self.per_cluster_requests
    }

    /// Pages relocated *into* each cluster by migration or reshaping —
    /// diagnoses where the autonomic manager is sending data.
    pub fn per_cluster_relocations_in(&self) -> &[u64] {
        &self.per_cluster_relocs_in
    }

    /// Number of clusters that received at least `frac` of all requests
    /// — the paper's hot-cluster census (Table 1 uses 10 %).
    pub fn hot_cluster_count(&self, frac: f64) -> usize {
        let total: u64 = self.per_cluster_requests.iter().sum();
        if total == 0 {
            return 0;
        }
        self.per_cluster_requests
            .iter()
            .filter(|&&c| c as f64 / total as f64 >= frac)
            .count()
    }

    /// Fraction of I/O heading to clusters that qualify as hot at
    /// `frac` (Table 1's last column).
    pub fn hot_io_ratio(&self, frac: f64) -> f64 {
        let total: u64 = self.per_cluster_requests.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let hot: u64 = self
            .per_cluster_requests
            .iter()
            .filter(|&&c| c as f64 / total as f64 >= frac)
            .sum();
        hot as f64 / total as f64
    }

    /// Autonomic-management activity counters.
    pub fn autonomic_stats(&self) -> &AutonomicStats {
        &self.autonomic
    }

    /// FTL activity counters (host vs migration vs GC writes — §6.5).
    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl
    }

    /// Array-wide NAND wear report.
    pub fn wear(&self) -> WearReport {
        self.wear
    }

    /// Fault-injection and degraded-mode activity counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Crash-recovery activity: power-loss remounts and hot-spare
    /// rebuilds.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Per-tenant results, one entry per configured tenant in
    /// tenant-id order. Empty when the array ran untenanted.
    pub fn tenant_stats(&self) -> &[TenantStats] {
        &self.tenants
    }

    /// Total SLA violations across every tenant.
    pub fn sla_violations(&self) -> u64 {
        self.tenants.iter().map(|t| t.violations).sum()
    }

    /// Simulator events processed (diagnostics / perf benches).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Write pages dropped because the target FIMM was at end of life
    /// (every block retired; GC could reclaim nothing). Always zero
    /// until the flash wears out.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped_writes
    }

    /// Extra writes induced by migration/reshaping relative to host
    /// writes, as a fraction (§6.5: paper reports up to 34 %).
    /// (The `Display` impl prints a human-readable summary.)
    pub fn migration_write_overhead(&self) -> f64 {
        if self.ftl.host_writes == 0 {
            if self.ftl.migration_writes > 0 {
                return 1.0;
            }
            return 0.0;
        }
        self.ftl.migration_writes as f64 / self.ftl.host_writes as f64
    }
}

impl std::fmt::Display for RunReport {
    /// A compact multi-line summary, convenient for examples and logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} requests ({} reads / {} writes) over {}",
            self.mode,
            self.completed,
            self.reads,
            self.writes,
            self.makespan()
        )?;
        writeln!(
            f,
            "  IOPS {:.0} | latency mean {:.1}us p99 {:.1}us",
            self.iops(),
            self.mean_latency_us(),
            self.latency_percentile_us(0.99)
        )?;
        write!(
            f,
            "  contention/req: link {:.1}us storage {:.1}us queue-stall {:.1}us",
            self.avg_link_contention_us(),
            self.avg_storage_contention_us(),
            self.avg_queue_stall_us()
        )?;
        if self.autonomic.migrations_started > 0 || self.autonomic.pages_reshaped > 0 {
            write!(
                f,
                "
  autonomic: {} migrations ({} pages), {} reshaped, {} write redirects",
                self.autonomic.migrations_started,
                self.autonomic.pages_migrated,
                self.autonomic.pages_reshaped,
                self.autonomic.write_redirects
            )?;
        }
        if self.faults.any() {
            write!(
                f,
                "
  faults: {} transient reads, {} prog fails, {} erase fails, {} bad blocks, {} tlp replays, {} degraded reads, {} rollbacks",
                self.faults.transient_read_faults,
                self.faults.prog_failures,
                self.faults.erase_failures,
                self.faults.blocks_retired_by_fault,
                self.faults.tlp_replays,
                self.faults.degraded_reads,
                self.faults.migration_rollbacks
            )?;
        }
        if self.recovery.any() {
            write!(
                f,
                "
  recovery: {}",
                self.recovery
            )?;
        }
        // A single tenant is just the anonymous stream with a name; the
        // per-tenant section only earns its lines when there is real
        // multi-tenancy to break down (and the quiet goldens stay put).
        if self.tenants.len() >= 2 {
            for t in &self.tenants {
                write!(
                    f,
                    "
  tenant.{}: w{} {} done ({} rd / {} wr), p99 {:.1}us (target {:.1}us), {} violations ({:.2}%)",
                    t.tenant,
                    t.weight,
                    t.completed,
                    t.reads,
                    t.writes,
                    t.p99_ns as f64 / 1_000.0,
                    t.sla_p99_ns as f64 / 1_000.0,
                    t.violations,
                    t.violation_rate() * 100.0
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> RunReport {
        RunReport {
            mode: ManagementMode::NonAutonomic,
            completed: 0,
            reads: 0,
            writes: 0,
            first_submit: SimTime::ZERO,
            last_complete: SimTime::ZERO,
            latency: Histogram::new(),
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            bd_sum: Breakdown::default(),
            attr_link: 0,
            attr_storage: 0,
            series: TimeSeries::new(),
            per_cluster_requests: vec![0; 4],
            per_cluster_relocs_in: vec![0; 4],
            dropped_writes: 0,
            autonomic: AutonomicStats::default(),
            ftl: FtlStats::default(),
            wear: WearReport::default(),
            faults: FaultStats::default(),
            recovery: RecoveryStats::default(),
            tenants: Vec::new(),
            events: 0,
        }
    }

    #[test]
    fn empty_report_is_safe() {
        let r = empty_report();
        assert_eq!(r.iops(), 0.0);
        assert_eq!(r.mean_latency_us(), 0.0);
        assert_eq!(r.hot_cluster_count(0.1), 0);
        assert_eq!(r.hot_io_ratio(0.1), 0.0);
        assert_eq!(r.avg_network_us(), 0.0);
        assert_eq!(r.migration_write_overhead(), 0.0);
    }

    #[test]
    fn hot_cluster_census() {
        let mut r = empty_report();
        r.per_cluster_requests = vec![70, 20, 5, 5];
        assert_eq!(r.hot_cluster_count(0.10), 2);
        assert!((r.hot_io_ratio(0.10) - 0.9).abs() < 1e-12);
        assert_eq!(r.hot_cluster_count(0.5), 1);
    }

    #[test]
    fn iops_from_makespan() {
        let mut r = empty_report();
        r.completed = 1_000;
        r.first_submit = SimTime::ZERO;
        r.last_complete = SimTime::from_ms(100);
        assert!((r.iops() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_summary_is_nonempty_and_mentions_mode() {
        let mut r = empty_report();
        r.completed = 10;
        r.reads = 10;
        let text = r.to_string();
        assert!(text.contains("non-autonomic"));
        assert!(text.contains("IOPS"));
        r.autonomic.migrations_started = 3;
        assert!(r.to_string().contains("3 migrations"));
    }

    #[test]
    fn fault_stats_render_only_when_present() {
        let mut r = empty_report();
        r.completed = 1;
        assert!(!r.fault_stats().any());
        assert!(!r.to_string().contains("faults:"));
        r.faults.transient_read_faults = 7;
        r.faults.migration_rollbacks = 2;
        assert!(r.fault_stats().any());
        let text = r.to_string();
        assert!(text.contains("7 transient reads"));
        assert!(text.contains("2 rollbacks"));
    }

    #[test]
    fn recovery_stats_render_only_when_present() {
        let mut r = empty_report();
        r.completed = 1;
        assert!(!r.recovery_stats().any());
        assert!(!r.to_string().contains("recovery:"));
        r.recovery.power_losses = 1;
        r.recovery.journal_replayed = 42;
        r.recovery.rebuilds_completed = 1;
        assert!(r.recovery_stats().any());
        let text = r.to_string();
        assert!(text.contains("1 power losses"));
        assert!(text.contains("42 replayed"));
        assert!(text.contains("1 rebuilds"));
    }

    #[test]
    fn tenant_section_renders_only_with_two_or_more() {
        let mut r = empty_report();
        r.completed = 10;
        let one = TenantStats {
            tenant: 0,
            weight: 8,
            sla_p99_ns: 200_000,
            completed: 10,
            reads: 10,
            violations: 3,
            p99_ns: 450_000,
            ..TenantStats::default()
        };
        r.tenants = vec![one];
        assert!(
            !r.to_string().contains("tenant.0"),
            "a lone tenant must keep the quiet summary"
        );
        assert_eq!(r.tenant_stats().len(), 1);
        assert_eq!(r.sla_violations(), 3);
        let two = TenantStats {
            tenant: 1,
            weight: 1,
            sla_p99_ns: 5_000_000,
            completed: 4,
            writes: 4,
            ..TenantStats::default()
        };
        r.tenants.push(two);
        let text = r.to_string();
        assert!(text.contains("tenant.0: w8 10 done"));
        assert!(text.contains("3 violations (30.00%)"));
        assert!(text.contains("tenant.1: w1 4 done"));
    }

    #[test]
    fn migration_overhead_ratio() {
        let mut r = empty_report();
        r.ftl.host_writes = 100;
        r.ftl.migration_writes = 34;
        assert!((r.migration_write_overhead() - 0.34).abs() < 1e-12);
        r.ftl.host_writes = 0;
        assert_eq!(r.migration_write_overhead(), 1.0);
    }
}
