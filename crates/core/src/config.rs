//! Array configuration.

use triplea_fimm::FimmFaultKind;
use triplea_flash::{FlashFaultProfile, FlashTiming};
use triplea_ftl::{ArrayShape, GcPolicy};
use triplea_pcie::{PcieFaultProfile, PcieParams, Topology};
use triplea_sim::Nanos;

/// Whether the array runs the autonomic management module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum ManagementMode {
    /// The paper's baseline: no contention detection, static layout.
    NonAutonomic,
    /// Full Triple-A: hot-cluster migration + laggard reshaping.
    Autonomic,
}

impl std::fmt::Display for ManagementMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ManagementMode::NonAutonomic => "non-autonomic",
            ManagementMode::Autonomic => "triple-a",
        })
    }
}

/// Which laggard detector(s) run (paper §4.2 offers two strategies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LaggardStrategy {
    /// Eq. 3: per-FIMM stalled-work estimate against the SLA budget.
    LatencyMonitoring,
    /// Count stalled queue entries per FIMM when the EP queue fills.
    QueueExamination,
    /// Run both detectors (default).
    Both,
}

impl LaggardStrategy {
    /// `true` when Eq. 3 latency monitoring is active.
    pub fn monitors_latency(self) -> bool {
        matches!(
            self,
            LaggardStrategy::LatencyMonitoring | LaggardStrategy::Both
        )
    }

    /// `true` when queue examination is active.
    pub fn examines_queue(self) -> bool {
        matches!(
            self,
            LaggardStrategy::QueueExamination | LaggardStrategy::Both
        )
    }
}

/// Tunables of the autonomic management module (paper §4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutonomicParams {
    /// SLA/QoS queueing budget (`t_SLA` in Eq. 3).
    ///
    /// The paper uses 3.3 µs with its own (much faster) timing
    /// constants; we scale the default to ≈3.5 stalled pages of work
    /// (`150 µs` at the default `t_dma + t_exe` ≈ 43.6 µs) so the
    /// detector keeps the same *intent* — "a few requests' worth of
    /// stalled work" — under realistic MLC latencies.
    pub sla_ns: Nanos,
    /// Eq. 1 additionally requires the cluster's shared bus to actually
    /// be the bottleneck ("the local shared bus is always busy", §4.1):
    /// recent bus utilization must exceed this fraction before a hot
    /// detection can fire.
    pub hot_bus_threshold: f64,
    /// Eq. 2 cold-cluster test: a sibling qualifies as migration target
    /// when its recent bus utilization is below this fraction.
    ///
    /// The paper's printed Eq. 2 reduces to "less than a single FIMM's
    /// average use of the shared bus"; we express that directly as a
    /// utilization threshold.
    pub cold_bus_threshold: f64,
    /// Use *naive* migration (re-read the data from the hot cluster)
    /// instead of shadow cloning — the Figure 16b ablation.
    pub naive_migration: bool,
    /// Laggard detection strategy.
    pub laggard: LaggardStrategy,
    /// Minimum time between laggard detections on the same FIMM
    /// (debounce so one burst counts once).
    pub laggard_cooldown_ns: Nanos,
    /// Minimum time between "all FIMMs are laggards" escalations on the
    /// same cluster.
    pub escalation_cooldown_ns: Nanos,
    /// A FIMM only counts as a laggard when its stalled-read backlog
    /// exceeds the least-loaded sibling FIMM's by this factor — uniform
    /// pressure is a link problem, not a layout problem.
    pub laggard_imbalance: f64,
    /// Granularity of inter-cluster data migration, in pages.
    ///
    /// `1` (default) migrates exactly the straggler request's pages —
    /// the paper's "corresponding data", fully covered by shadow
    /// cloning. Larger power-of-two extents prefetch neighbouring pages
    /// at the cost of re-reading them from the hot cluster (an ablation
    /// knob; see the `ablation` bench).
    pub migration_extent_pages: u32,
    /// Maximum pages concurrently being migrated/reshaped; further
    /// detections are ignored until background programs drain, bounding
    /// the interference of relocation with foreground I/O.
    pub max_inflight_reloc_pages: usize,
    /// Break ties among equally-cold migration targets toward the
    /// least-worn cluster (§6.7's global wear-levelling view).
    pub wear_aware: bool,
}

impl Default for AutonomicParams {
    fn default() -> Self {
        AutonomicParams {
            sla_ns: 150_000,
            hot_bus_threshold: 0.7,
            cold_bus_threshold: 0.25,
            naive_migration: false,
            laggard: LaggardStrategy::Both,
            laggard_cooldown_ns: 200_000,
            escalation_cooldown_ns: 500_000,
            laggard_imbalance: 2.0,
            migration_extent_pages: 1,
            max_inflight_reloc_pages: 256,
            wear_aware: true,
        }
    }
}

/// Maximum number of scheduled whole-FIMM fault events per run.
///
/// Bounded (rather than a `Vec`) so [`ArrayConfig`] stays `Copy`.
pub const MAX_FIMM_FAULT_EVENTS: usize = 8;

/// A scheduled whole-module fault: at `at_ns`, the named FIMM dies or
/// becomes a laggard (paper §4.2's "worn-out or broken flash" scenario).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FimmFaultEvent {
    /// Global cluster index of the victim module.
    pub cluster: u32,
    /// FIMM index within the cluster.
    pub fimm: u32,
    /// Simulation time at which the fault fires (permanent thereafter).
    pub at_ns: Nanos,
    /// What happens: death or a latency-scale slowdown.
    pub kind: FimmFaultKind,
}

/// Deterministic fault-injection configuration for a whole run.
///
/// The default is *quiet*: every probability zero and no scheduled
/// events. A quiet config consumes no randomness and leaves every
/// simulated timing untouched, so fault-free runs are bit-identical to
/// builds that predate fault injection.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Per-command NAND fault probabilities, applied to every package.
    pub flash: FlashFaultProfile,
    /// TLP-corruption injection, applied to every switch link direction.
    pub pcie: PcieFaultProfile,
    /// Scheduled whole-FIMM failures/slowdowns.
    pub fimm_events: [Option<FimmFaultEvent>; MAX_FIMM_FAULT_EVENTS],
    /// Master seed; per-package and per-link RNG streams derive from it,
    /// so equal seeds reproduce the exact same fault pattern.
    pub seed: u64,
}

impl FaultConfig {
    /// `true` when nothing can ever fire: no probabilities, no events.
    pub fn is_quiet(&self) -> bool {
        self.flash.is_quiet() && self.pcie.is_quiet() && self.fimm_events.iter().all(|e| e.is_none())
    }

    /// Adds a scheduled FIMM fault in the first free slot.
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_FIMM_FAULT_EVENTS`] slots are taken.
    pub fn with_fimm_event(mut self, ev: FimmFaultEvent) -> Self {
        let slot = self
            .fimm_events
            .iter()
            .position(|e| e.is_none())
            .expect("no free FIMM fault-event slot");
        self.fimm_events[slot] = Some(ev);
        self
    }
}

/// Complete configuration of one all-flash array instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrayConfig {
    /// Physical dimensions (network × FIMMs × packages × geometry).
    pub shape: ArrayShape,
    /// PCI-E fabric parameters.
    pub pcie: PcieParams,
    /// NAND and ONFi timing.
    pub flash_timing: FlashTiming,
    /// Autonomic-management tunables.
    pub autonomic: AutonomicParams,
    /// Write-back buffer capacity in pages per cluster (§4.2: writes
    /// return immediately while buffered; §6.6: the DRAM removed from
    /// individual SSDs is relocated to the management module, so the
    /// per-cluster buffer is DRAM-scale, not queue-scale).
    pub write_buffer_pages: usize,
    /// Trigger background GC when a FIMM's free pool drops below this
    /// many blocks.
    pub gc_threshold_blocks: u64,
    /// DFTL-style mapping-cache size in translation pages; `0` (the
    /// Triple-A default) keeps the whole map in the management module's
    /// relocated DRAM (§6.6) and translations are free. Non-zero sizes
    /// charge a flash read per translation-page miss.
    pub mapping_cache_pages: usize,
    /// Opportunistic array-level GC (§8 future work, following the
    /// authors' companion work on taking GC off the critical path):
    /// when a cluster's bus is quiet, reclaim blocks *before* the free
    /// pool hits the hard `gc_threshold_blocks` limit.
    pub opportunistic_gc: bool,
    /// GC victim-selection policy (greedy / cost-benefit / FIFO).
    pub gc_policy: GcPolicy,
    /// Seed for the simulator's internal tie-breaking RNG.
    pub seed: u64,
    /// Record the per-request `(submit, latency)` series (Figure 16).
    pub collect_series: bool,
    /// Deterministic fault injection (quiet by default).
    pub faults: FaultConfig,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig {
            shape: ArrayShape::default(),
            pcie: PcieParams::default(),
            flash_timing: FlashTiming::default(),
            autonomic: AutonomicParams::default(),
            write_buffer_pages: 2_048,
            gc_threshold_blocks: 4,
            mapping_cache_pages: 0,
            opportunistic_gc: false,
            gc_policy: GcPolicy::Greedy,
            seed: 0xAAA_2014,
            collect_series: false,
            faults: FaultConfig::default(),
        }
    }
}

impl ArrayConfig {
    /// The paper's §5.1 baseline: a 4×16 network of 4-FIMM clusters
    /// (16 TB).
    pub fn paper_baseline() -> Self {
        ArrayConfig::default()
    }

    /// A small 2×4 array with tiny flash geometry: fast to simulate,
    /// used throughout tests and doc examples.
    pub fn small_test() -> Self {
        ArrayConfig {
            shape: ArrayShape::small_test(),
            collect_series: true,
            ..ArrayConfig::default()
        }
    }

    /// Same array with a different network width (the §6.4 sensitivity
    /// sweeps: 8–20 clusters per switch).
    pub fn with_clusters_per_switch(mut self, n: u32) -> Self {
        self.shape.topology = Topology {
            switches: self.shape.topology.switches,
            clusters_per_switch: n,
        };
        self
    }

    /// Returns the config with the series recorder enabled/disabled.
    pub fn with_series(mut self, on: bool) -> Self {
        self.collect_series = on;
        self
    }

    /// Eq. 1 hot-cluster latency threshold for a request of `npages`
    /// pages: `t_DMA·(n_page + n_FIMM − 1) + t_exe·n_page`.
    pub fn eq1_threshold_ns(&self, npages: u32) -> Nanos {
        let t_dma = self.flash_timing.dma_nanos(self.shape.flash.page_size);
        let t_exe = self.flash_timing.exe_nanos(triplea_flash::OpKind::Read);
        t_dma * (npages as u64 + self.shape.fimms_per_cluster as u64 - 1) + t_exe * npages as u64
    }

    /// Eq. 3 stalled-work estimate for `pending_pages` pages queued on
    /// one FIMM: `Σ (t_DMA + t_exe)·n_page`.
    pub fn eq3_backlog_ns(&self, pending_pages: u64) -> Nanos {
        let t_dma = self.flash_timing.dma_nanos(self.shape.flash.page_size);
        let t_exe = self.flash_timing.exe_nanos(triplea_flash::OpKind::Read);
        (t_dma + t_exe) * pending_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_baseline() {
        let c = ArrayConfig::paper_baseline();
        assert_eq!(c.shape.topology.total_clusters(), 64);
        assert_eq!(c.autonomic.sla_ns, 150_000);
        assert_eq!(c.shape.fimms_per_cluster, 4);
    }

    #[test]
    fn eq1_threshold_formula() {
        let c = ArrayConfig::paper_baseline();
        let t_dma = 2_560;
        let t_exe = 26_000;
        assert_eq!(c.eq1_threshold_ns(1), t_dma * 4 + t_exe);
        assert_eq!(c.eq1_threshold_ns(4), t_dma * 7 + t_exe * 4);
    }

    #[test]
    fn eq3_backlog_scales_linearly() {
        let c = ArrayConfig::paper_baseline();
        assert_eq!(c.eq3_backlog_ns(0), 0);
        assert_eq!(c.eq3_backlog_ns(2), 2 * c.eq3_backlog_ns(1));
    }

    #[test]
    fn network_width_builder() {
        let c = ArrayConfig::paper_baseline().with_clusters_per_switch(20);
        assert_eq!(c.shape.topology.total_clusters(), 80);
    }

    #[test]
    fn laggard_strategy_flags() {
        assert!(LaggardStrategy::Both.monitors_latency());
        assert!(LaggardStrategy::Both.examines_queue());
        assert!(!LaggardStrategy::QueueExamination.monitors_latency());
        assert!(!LaggardStrategy::LatencyMonitoring.examines_queue());
    }

    #[test]
    fn mode_display() {
        assert_eq!(ManagementMode::Autonomic.to_string(), "triple-a");
        assert_eq!(ManagementMode::NonAutonomic.to_string(), "non-autonomic");
    }

    #[test]
    fn default_fault_config_is_quiet() {
        assert!(FaultConfig::default().is_quiet());
        assert!(ArrayConfig::default().faults.is_quiet());
        assert!(ArrayConfig::small_test().faults.is_quiet());
    }

    #[test]
    fn fault_events_fill_free_slots() {
        let ev = FimmFaultEvent {
            cluster: 0,
            fimm: 1,
            at_ns: 5_000,
            kind: FimmFaultKind::Dead,
        };
        let fc = FaultConfig::default().with_fimm_event(ev).with_fimm_event(FimmFaultEvent {
            fimm: 2,
            kind: FimmFaultKind::Slowdown(4),
            ..ev
        });
        assert!(!fc.is_quiet());
        assert_eq!(fc.fimm_events[0], Some(ev));
        assert_eq!(fc.fimm_events[1].unwrap().fimm, 2);
        assert!(fc.fimm_events[2].is_none());
    }

    #[test]
    #[should_panic(expected = "no free FIMM fault-event slot")]
    fn fault_event_slots_are_bounded() {
        let ev = FimmFaultEvent {
            cluster: 0,
            fimm: 0,
            at_ns: 0,
            kind: FimmFaultKind::Dead,
        };
        let mut fc = FaultConfig::default();
        for _ in 0..=MAX_FIMM_FAULT_EVENTS {
            fc = fc.with_fimm_event(ev);
        }
    }

    #[test]
    fn nonzero_probability_is_not_quiet() {
        let mut fc = FaultConfig::default();
        fc.flash.read_transient_prob = 1e-3;
        assert!(!fc.is_quiet());
        let mut fc = FaultConfig::default();
        fc.pcie.corrupt_prob = 1e-3;
        assert!(!fc.is_quiet());
    }
}
