//! Array configuration.

use triplea_fimm::FimmFaultKind;
use triplea_flash::{FlashFaultProfile, FlashTiming};
use triplea_ftl::{ArrayShape, GcPolicy};
use triplea_pcie::{PcieFaultProfile, PcieParams, Topology};
use triplea_sim::Nanos;

use crate::tenant::{TenantConfig, TenantSpec};

/// Whether the array runs the autonomic management module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum ManagementMode {
    /// The paper's baseline: no contention detection, static layout.
    NonAutonomic,
    /// Full Triple-A: hot-cluster migration + laggard reshaping.
    Autonomic,
}

impl std::fmt::Display for ManagementMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ManagementMode::NonAutonomic => "non-autonomic",
            ManagementMode::Autonomic => "triple-a",
        })
    }
}

/// Which laggard detector(s) run (paper §4.2 offers two strategies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LaggardStrategy {
    /// Eq. 3: per-FIMM stalled-work estimate against the SLA budget.
    LatencyMonitoring,
    /// Count stalled queue entries per FIMM when the EP queue fills.
    QueueExamination,
    /// Run both detectors (default).
    Both,
}

impl LaggardStrategy {
    /// `true` when Eq. 3 latency monitoring is active.
    pub fn monitors_latency(self) -> bool {
        matches!(
            self,
            LaggardStrategy::LatencyMonitoring | LaggardStrategy::Both
        )
    }

    /// `true` when queue examination is active.
    pub fn examines_queue(self) -> bool {
        matches!(
            self,
            LaggardStrategy::QueueExamination | LaggardStrategy::Both
        )
    }
}

/// Tunables of the autonomic management module (paper §4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutonomicParams {
    /// SLA/QoS queueing budget (`t_SLA` in Eq. 3).
    ///
    /// The paper uses 3.3 µs with its own (much faster) timing
    /// constants; we scale the default to ≈3.5 stalled pages of work
    /// (`150 µs` at the default `t_dma + t_exe` ≈ 43.6 µs) so the
    /// detector keeps the same *intent* — "a few requests' worth of
    /// stalled work" — under realistic MLC latencies.
    pub sla_ns: Nanos,
    /// Eq. 1 additionally requires the cluster's shared bus to actually
    /// be the bottleneck ("the local shared bus is always busy", §4.1):
    /// recent bus utilization must exceed this fraction before a hot
    /// detection can fire.
    pub hot_bus_threshold: f64,
    /// Eq. 2 cold-cluster test: a sibling qualifies as migration target
    /// when its recent bus utilization is below this fraction.
    ///
    /// The paper's printed Eq. 2 reduces to "less than a single FIMM's
    /// average use of the shared bus"; we express that directly as a
    /// utilization threshold.
    pub cold_bus_threshold: f64,
    /// Use *naive* migration (re-read the data from the hot cluster)
    /// instead of shadow cloning — the Figure 16b ablation.
    pub naive_migration: bool,
    /// Laggard detection strategy.
    pub laggard: LaggardStrategy,
    /// Minimum time between laggard detections on the same FIMM
    /// (debounce so one burst counts once).
    pub laggard_cooldown_ns: Nanos,
    /// Minimum time between "all FIMMs are laggards" escalations on the
    /// same cluster.
    pub escalation_cooldown_ns: Nanos,
    /// A FIMM only counts as a laggard when its stalled-read backlog
    /// exceeds the least-loaded sibling FIMM's by this factor — uniform
    /// pressure is a link problem, not a layout problem.
    pub laggard_imbalance: f64,
    /// Granularity of inter-cluster data migration, in pages.
    ///
    /// `1` (default) migrates exactly the straggler request's pages —
    /// the paper's "corresponding data", fully covered by shadow
    /// cloning. Larger power-of-two extents prefetch neighbouring pages
    /// at the cost of re-reading them from the hot cluster (an ablation
    /// knob; see the `ablation` bench).
    pub migration_extent_pages: u32,
    /// Maximum pages concurrently being migrated/reshaped; further
    /// detections are ignored until background programs drain, bounding
    /// the interference of relocation with foreground I/O.
    pub max_inflight_reloc_pages: usize,
    /// Break ties among equally-cold migration targets toward the
    /// least-worn cluster (§6.7's global wear-levelling view).
    pub wear_aware: bool,
}

impl Default for AutonomicParams {
    fn default() -> Self {
        AutonomicParams {
            sla_ns: 150_000,
            hot_bus_threshold: 0.7,
            cold_bus_threshold: 0.25,
            naive_migration: false,
            laggard: LaggardStrategy::Both,
            laggard_cooldown_ns: 200_000,
            escalation_cooldown_ns: 500_000,
            laggard_imbalance: 2.0,
            migration_extent_pages: 1,
            max_inflight_reloc_pages: 256,
            wear_aware: true,
        }
    }
}

/// Maximum number of scheduled whole-FIMM fault events per run.
///
/// Bounded (rather than a `Vec`) so [`FaultConfig`] stays `Copy`.
pub const MAX_FIMM_FAULT_EVENTS: usize = 8;

/// A scheduled whole-module fault: at `at_ns`, the named FIMM dies or
/// becomes a laggard (paper §4.2's "worn-out or broken flash" scenario).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FimmFaultEvent {
    /// Global cluster index of the victim module.
    pub cluster: u32,
    /// FIMM index within the cluster.
    pub fimm: u32,
    /// Simulation time at which the fault fires (permanent thereafter).
    pub at_ns: Nanos,
    /// What happens: death or a latency-scale slowdown.
    pub kind: FimmFaultKind,
}

/// A scheduled whole-array power cut: at `at_ns` the management module
/// loses its DRAM — the in-flight queue entries, the mapping cache, and
/// every un-flushed journal record — while flash contents persist. The
/// array then remounts: the FTL's recovery scan replays the flushed
/// journal onto the last checkpoint, and requests that had not yet been
/// submitted resume once the remount completes.
///
/// Configuring a power loss automatically enables metadata journaling in
/// the FTL with the cadence given here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLossEvent {
    /// Simulation time of the cut.
    pub at_ns: Nanos,
    /// Fixed remount cost: controller restart + checkpoint load.
    pub remount_base_ns: Nanos,
    /// Additional remount cost per flushed journal record replayed.
    pub replay_ns_per_record: Nanos,
    /// Journal group-commit cadence (records per flush).
    pub flush_every: u32,
    /// Flushed records between checkpoints.
    pub checkpoint_every: u32,
}

impl PowerLossEvent {
    /// A power cut at `at_ns` with default remount costs and journal
    /// cadence.
    pub fn at(at_ns: Nanos) -> Self {
        PowerLossEvent {
            at_ns,
            remount_base_ns: 2_000_000,
            replay_ns_per_record: 500,
            flush_every: 8,
            checkpoint_every: 4_096,
        }
    }
}

/// Deterministic fault-injection configuration for a whole run.
///
/// The default is *quiet*: every probability zero and no scheduled
/// events. A quiet config consumes no randomness and leaves every
/// simulated timing untouched, so fault-free runs are bit-identical to
/// builds that predate fault injection.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Per-command NAND fault probabilities, applied to every package.
    pub flash: FlashFaultProfile,
    /// TLP-corruption injection, applied to every switch link direction.
    pub pcie: PcieFaultProfile,
    /// Scheduled whole-FIMM failures/slowdowns.
    pub fimm_events: [Option<FimmFaultEvent>; MAX_FIMM_FAULT_EVENTS],
    /// Scheduled whole-array power cut (at most one per run).
    pub power_loss: Option<PowerLossEvent>,
    /// Master seed; per-package and per-link RNG streams derive from it,
    /// so equal seeds reproduce the exact same fault pattern.
    pub seed: u64,
}

impl FaultConfig {
    /// `true` when nothing can ever fire: no probabilities, no events.
    pub fn is_quiet(&self) -> bool {
        self.flash.is_quiet()
            && self.pcie.is_quiet()
            && self.fimm_events.iter().all(|e| e.is_none())
            && self.power_loss.is_none()
    }

    /// Schedules a whole-array power cut.
    pub fn with_power_loss(mut self, ev: PowerLossEvent) -> Self {
        self.power_loss = Some(ev);
        self
    }

    /// Adds a scheduled FIMM fault in the first free slot.
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_FIMM_FAULT_EVENTS`] slots are taken.
    pub fn with_fimm_event(mut self, ev: FimmFaultEvent) -> Self {
        let slot = self
            .fimm_events
            .iter()
            .position(|e| e.is_none())
            .expect("no free FIMM fault-event slot");
        self.fimm_events[slot] = Some(ev);
        self
    }

    /// Adds a scheduled FIMM fault in the first free slot, or reports
    /// [`FaultScheduleFull`] when all [`MAX_FIMM_FAULT_EVENTS`] slots
    /// are taken — the non-panicking hook scenario drivers use when a
    /// generated failure storm may exceed the schedule's capacity.
    pub fn try_with_fimm_event(mut self, ev: FimmFaultEvent) -> Result<Self, FaultScheduleFull> {
        match self.fimm_events.iter().position(|e| e.is_none()) {
            Some(slot) => {
                self.fimm_events[slot] = Some(ev);
                Ok(self)
            }
            None => Err(FaultScheduleFull { dropped: ev }),
        }
    }

    /// Number of FIMM fault-event slots still free.
    pub fn free_fimm_event_slots(&self) -> usize {
        self.fimm_events.iter().filter(|e| e.is_none()).count()
    }
}

/// Error from [`FaultConfig::try_with_fimm_event`]: every one of the
/// [`MAX_FIMM_FAULT_EVENTS`] schedule slots is already occupied.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultScheduleFull {
    /// The event that could not be scheduled.
    pub dropped: FimmFaultEvent,
}

impl std::fmt::Display for FaultScheduleFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FIMM fault schedule full ({MAX_FIMM_FAULT_EVENTS} slots): dropped event at {} ns \
             for cluster {} fimm {}",
            self.dropped.at_ns, self.dropped.cluster, self.dropped.fimm
        )
    }
}

impl std::error::Error for FaultScheduleFull {}

/// A validation failure for an [`ArrayConfig`] under construction.
///
/// Returned by [`ArrayConfigBuilder::build`] and [`ArrayConfig::validate`]
/// so that impossible geometries are rejected before a simulation is
/// built, instead of panicking (or silently misbehaving) mid-run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// A structural dimension (switches, clusters, FIMMs, packages,
    /// dies, …) is zero, so the array has no hardware to simulate.
    ZeroDimension {
        /// Which dimension is zero.
        field: &'static str,
    },
    /// A credit-queue depth is zero; flow control would deadlock on the
    /// first request.
    ZeroQueueDepth {
        /// Which queue (root complex, switch, or endpoint).
        queue: &'static str,
    },
    /// A fraction-valued tunable (bus-utilization threshold, fault
    /// probability) falls outside `[0, 1]`.
    ThresholdOutOfRange {
        /// Which tunable.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The Eq. 2 cold-cluster threshold is not below the Eq. 1 hot
    /// threshold, so a cluster could be hot and a migration target at
    /// once and data would ping-pong.
    ColdNotBelowHot {
        /// Configured cold-bus threshold.
        cold: f64,
        /// Configured hot-bus threshold.
        hot: f64,
    },
    /// A scheduled FIMM fault event names a cluster or FIMM outside the
    /// configured topology fan-out.
    FaultEventOutOfRange {
        /// Slot index of the offending event.
        index: usize,
        /// Its (global) cluster index.
        cluster: u32,
        /// Its FIMM index.
        fimm: u32,
    },
    /// The migration extent is zero or exceeds the relocation in-flight
    /// budget, so autonomic migration could never move a single extent.
    BadMigrationExtent {
        /// Configured extent in pages.
        extent_pages: u32,
        /// Configured in-flight relocation budget in pages.
        max_inflight: usize,
    },
    /// A tenant spec carries a zero weight, p99 target, or queue depth —
    /// the tenant could never be scheduled (or never admitted).
    BadTenantSpec {
        /// Index of the offending tenant in the configured table.
        index: usize,
        /// Which field is zero (`weight`, `sla_p99_ns`, or `qd_limit`).
        field: &'static str,
    },
    /// More tenants than the front door supports.
    TooManyTenants {
        /// Configured tenant count.
        count: usize,
        /// Supported maximum ([`MAX_TENANTS`]).
        max: usize,
    },
    /// A workload binding names a tenant outside the configured table.
    UnboundTenant {
        /// The tenant id the binding named.
        tenant: u32,
        /// Number of tenants the configuration actually declares.
        tenants: usize,
    },
    /// Sharded execution was requested with zero workers; omit
    /// [`ArrayConfigBuilder::workers`] instead to run the serial engine.
    ZeroWorkers,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDimension { field } => {
                write!(f, "array dimension `{field}` must be nonzero")
            }
            ConfigError::ZeroQueueDepth { queue } => {
                write!(f, "queue depth `{queue}` must be nonzero")
            }
            ConfigError::ThresholdOutOfRange { field, value } => {
                write!(f, "`{field}` = {value} is outside [0, 1]")
            }
            ConfigError::ColdNotBelowHot { cold, hot } => {
                write!(
                    f,
                    "cold-bus threshold {cold} must be below hot-bus threshold {hot}"
                )
            }
            ConfigError::FaultEventOutOfRange {
                index,
                cluster,
                fimm,
            } => {
                write!(
                    f,
                    "FIMM fault event #{index} targets cluster {cluster} fimm {fimm}, \
                     outside the configured topology"
                )
            }
            ConfigError::BadMigrationExtent {
                extent_pages,
                max_inflight,
            } => {
                write!(
                    f,
                    "migration extent of {extent_pages} pages cannot fit the \
                     in-flight relocation budget of {max_inflight} pages"
                )
            }
            ConfigError::BadTenantSpec { index, field } => {
                write!(f, "tenant #{index}: `{field}` must be nonzero")
            }
            ConfigError::TooManyTenants { count, max } => {
                write!(f, "{count} tenants configured; the front door supports at most {max}")
            }
            ConfigError::UnboundTenant { tenant, tenants } => {
                write!(
                    f,
                    "workload bound to tenant.{tenant}, but the config declares \
                     only {tenants} tenant(s)"
                )
            }
            ConfigError::ZeroWorkers => {
                write!(
                    f,
                    "worker count must be nonzero (omit `.workers` for the serial engine)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Maximum tenants the front door supports; well above the 1000-tenant
/// experiments, merely a guard against absurd metric/lane fan-out.
pub const MAX_TENANTS: usize = 65_536;

/// Complete configuration of one all-flash array instance.
///
/// Prefer constructing these through [`ArrayConfig::builder`] (or
/// [`ArrayConfig::small_builder`] in tests), which validates cross-field
/// invariants and returns a typed [`ConfigError`]; writing a bare struct
/// literal skips validation and is discouraged outside this crate.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayConfig {
    /// Physical dimensions (network × FIMMs × packages × geometry).
    pub shape: ArrayShape,
    /// PCI-E fabric parameters.
    pub pcie: PcieParams,
    /// NAND and ONFi timing.
    pub flash_timing: FlashTiming,
    /// Autonomic-management tunables.
    pub autonomic: AutonomicParams,
    /// Write-back buffer capacity in pages per cluster (§4.2: writes
    /// return immediately while buffered; §6.6: the DRAM removed from
    /// individual SSDs is relocated to the management module, so the
    /// per-cluster buffer is DRAM-scale, not queue-scale).
    pub write_buffer_pages: usize,
    /// Trigger background GC when a FIMM's free pool drops below this
    /// many blocks.
    pub gc_threshold_blocks: u64,
    /// DFTL-style mapping-cache size in translation pages; `0` (the
    /// Triple-A default) keeps the whole map in the management module's
    /// relocated DRAM (§6.6) and translations are free. Non-zero sizes
    /// charge a flash read per translation-page miss.
    pub mapping_cache_pages: usize,
    /// Opportunistic array-level GC (§8 future work, following the
    /// authors' companion work on taking GC off the critical path):
    /// when a cluster's bus is quiet, reclaim blocks *before* the free
    /// pool hits the hard `gc_threshold_blocks` limit.
    pub opportunistic_gc: bool,
    /// GC victim-selection policy (greedy / cost-benefit / FIFO).
    pub gc_policy: GcPolicy,
    /// Hot-spare FIMMs kept powered but unused. When a scheduled fault
    /// kills a module and a spare remains, the autonomic layer rebuilds
    /// the dead module's pages onto the spare in the background (reading
    /// survivors' copies via recovery reads), then swaps the spare into
    /// the dead module's slot. `0` (default) disables rebuild: dead
    /// modules stay dead and reads fail over to siblings forever.
    pub hot_spares: u32,
    /// Seed for the simulator's internal tie-breaking RNG.
    pub seed: u64,
    /// Record the per-request `(submit, latency)` series (Figure 16).
    pub collect_series: bool,
    /// Deterministic fault injection (quiet by default).
    pub faults: FaultConfig,
    /// Multi-tenant front door: per-tenant submission lanes with
    /// weighted-fair arbitration and admission control. Empty (default)
    /// bypasses the front door entirely — requests flow through the
    /// root-complex credit queue exactly as on an untenanted build.
    pub tenants: TenantConfig,
    /// Worker threads for the sharded event loop (one shard per switch
    /// domain, conservatively synchronised with the PCI-E lookahead).
    /// `None` (default) runs the classic serial engine, bit-identical
    /// to every previous release. `Some(n)` opts into sharded execution
    /// whose results are invariant to `n`; configurations the sharder
    /// cannot partition (active fault plans, tenanted front door,
    /// hot spares, a bounded mapping cache, or a zero-latency root
    /// complex) fall back to the serial engine.
    pub workers: Option<u32>,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig {
            shape: ArrayShape::default(),
            pcie: PcieParams::default(),
            flash_timing: FlashTiming::default(),
            autonomic: AutonomicParams::default(),
            write_buffer_pages: 2_048,
            gc_threshold_blocks: 4,
            mapping_cache_pages: 0,
            opportunistic_gc: false,
            gc_policy: GcPolicy::Greedy,
            hot_spares: 0,
            seed: 0xAAA_2014,
            collect_series: false,
            faults: FaultConfig::default(),
            tenants: TenantConfig::none(),
            workers: None,
        }
    }
}

impl ArrayConfig {
    /// The paper's §5.1 baseline: a 4×16 network of 4-FIMM clusters
    /// (16 TB).
    pub fn paper_baseline() -> Self {
        ArrayConfig::default()
    }

    /// A small 2×4 array with tiny flash geometry: fast to simulate,
    /// used throughout tests and doc examples.
    pub fn small_test() -> Self {
        ArrayConfig {
            shape: ArrayShape::small_test(),
            collect_series: true,
            ..ArrayConfig::default()
        }
    }

    /// Same array with a different network width (the §6.4 sensitivity
    /// sweeps: 8–20 clusters per switch).
    pub fn with_clusters_per_switch(mut self, n: u32) -> Self {
        self.shape.topology = Topology {
            switches: self.shape.topology.switches,
            clusters_per_switch: n,
        };
        self
    }

    /// Returns the config with the series recorder enabled/disabled.
    pub fn with_series(mut self, on: bool) -> Self {
        self.collect_series = on;
        self
    }

    /// Eq. 1 hot-cluster latency threshold for a request of `npages`
    /// pages: `t_DMA·(n_page + n_FIMM − 1) + t_exe·n_page`.
    pub fn eq1_threshold_ns(&self, npages: u32) -> Nanos {
        let t_dma = self.flash_timing.dma_nanos(self.shape.flash.page_size);
        let t_exe = self.flash_timing.exe_nanos(triplea_flash::OpKind::Read);
        t_dma * (npages as u64 + self.shape.fimms_per_cluster as u64 - 1) + t_exe * npages as u64
    }

    /// Eq. 3 stalled-work estimate for `pending_pages` pages queued on
    /// one FIMM: `Σ (t_DMA + t_exe)·n_page`.
    pub fn eq3_backlog_ns(&self, pending_pages: u64) -> Nanos {
        let t_dma = self.flash_timing.dma_nanos(self.shape.flash.page_size);
        let t_exe = self.flash_timing.exe_nanos(triplea_flash::OpKind::Read);
        (t_dma + t_exe) * pending_pages
    }

    /// A validating builder seeded with the paper's §5.1 baseline.
    pub fn builder() -> ArrayConfigBuilder {
        ArrayConfigBuilder::from_base(ArrayConfig::paper_baseline())
    }

    /// A validating builder seeded with the small 2×4 test array.
    pub fn small_builder() -> ArrayConfigBuilder {
        ArrayConfigBuilder::from_base(ArrayConfig::small_test())
    }

    /// Checks every cross-field invariant the builder enforces.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found, in a deterministic order
    /// (dimensions, queues, thresholds, fault probabilities, fault
    /// events, migration extent).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let dims: [(&'static str, u64); 7] = [
            ("topology.switches", self.shape.topology.switches as u64),
            (
                "topology.clusters_per_switch",
                self.shape.topology.clusters_per_switch as u64,
            ),
            ("fimms_per_cluster", self.shape.fimms_per_cluster as u64),
            ("packages_per_fimm", self.shape.packages_per_fimm as u64),
            ("flash.dies", self.shape.flash.dies as u64),
            ("pcie.lanes", self.pcie.lanes as u64),
            ("write_buffer_pages", self.write_buffer_pages as u64),
        ];
        for (field, v) in dims {
            if v == 0 {
                return Err(ConfigError::ZeroDimension { field });
            }
        }
        let queues: [(&'static str, usize); 3] = [
            ("pcie.rc_queue", self.pcie.rc_queue),
            ("pcie.switch_queue", self.pcie.switch_queue),
            ("pcie.ep_queue", self.pcie.ep_queue),
        ];
        for (queue, v) in queues {
            if v == 0 {
                return Err(ConfigError::ZeroQueueDepth { queue });
            }
        }
        let fractions: [(&'static str, f64); 6] = [
            ("autonomic.hot_bus_threshold", self.autonomic.hot_bus_threshold),
            ("autonomic.cold_bus_threshold", self.autonomic.cold_bus_threshold),
            ("faults.flash.read_transient_prob", self.faults.flash.read_transient_prob),
            ("faults.flash.prog_fail_prob", self.faults.flash.prog_fail_prob),
            ("faults.flash.erase_fail_prob", self.faults.flash.erase_fail_prob),
            ("faults.pcie.corrupt_prob", self.faults.pcie.corrupt_prob),
        ];
        for (field, value) in fractions {
            if !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::ThresholdOutOfRange { field, value });
            }
        }
        if self.autonomic.cold_bus_threshold >= self.autonomic.hot_bus_threshold {
            return Err(ConfigError::ColdNotBelowHot {
                cold: self.autonomic.cold_bus_threshold,
                hot: self.autonomic.hot_bus_threshold,
            });
        }
        let total_clusters = self.shape.topology.total_clusters();
        for (index, ev) in self.faults.fimm_events.iter().enumerate() {
            if let Some(ev) = ev {
                if ev.cluster >= total_clusters || ev.fimm >= self.shape.fimms_per_cluster {
                    return Err(ConfigError::FaultEventOutOfRange {
                        index,
                        cluster: ev.cluster,
                        fimm: ev.fimm,
                    });
                }
            }
        }
        if self.autonomic.migration_extent_pages == 0
            || self.autonomic.migration_extent_pages as usize
                > self.autonomic.max_inflight_reloc_pages
        {
            return Err(ConfigError::BadMigrationExtent {
                extent_pages: self.autonomic.migration_extent_pages,
                max_inflight: self.autonomic.max_inflight_reloc_pages,
            });
        }
        if self.tenants.len() > MAX_TENANTS {
            return Err(ConfigError::TooManyTenants {
                count: self.tenants.len(),
                max: MAX_TENANTS,
            });
        }
        for (index, spec) in self.tenants.specs().iter().enumerate() {
            let field = if spec.weight == 0 {
                Some("weight")
            } else if spec.sla_p99_ns == 0 {
                Some("sla_p99_ns")
            } else if spec.qd_limit == 0 {
                Some("qd_limit")
            } else {
                None
            };
            if let Some(field) = field {
                return Err(ConfigError::BadTenantSpec { index, field });
            }
        }
        if self.workers == Some(0) {
            return Err(ConfigError::ZeroWorkers);
        }
        Ok(())
    }
}

/// Validating builder for [`ArrayConfig`]; see [`ArrayConfig::builder`].
///
/// Typed setters cover the knobs experiments actually sweep; anything
/// else goes through [`ArrayConfigBuilder::tune`], which still funnels
/// the result through [`ArrayConfig::validate`] at
/// [`build`](ArrayConfigBuilder::build) time.
#[derive(Clone, Debug)]
pub struct ArrayConfigBuilder {
    cfg: ArrayConfig,
}

impl ArrayConfigBuilder {
    /// A builder starting from an existing (presumed-sane) config.
    pub fn from_base(cfg: ArrayConfig) -> Self {
        ArrayConfigBuilder { cfg }
    }

    /// Sets the PCI-E network shape.
    pub fn topology(mut self, switches: u32, clusters_per_switch: u32) -> Self {
        self.cfg.shape.topology = Topology {
            switches,
            clusters_per_switch,
        };
        self
    }

    /// Sets the network width, keeping the switch count (the §6.4
    /// sensitivity sweeps: 8–20 clusters per switch).
    pub fn clusters_per_switch(mut self, n: u32) -> Self {
        self.cfg.shape.topology.clusters_per_switch = n;
        self
    }

    /// Sets the number of FIMMs on each cluster's shared bus.
    pub fn fimms_per_cluster(mut self, n: u32) -> Self {
        self.cfg.shape.fimms_per_cluster = n;
        self
    }

    /// Sets the root-complex / switch / endpoint credit-queue depths.
    pub fn queue_depths(mut self, rc: usize, switch: usize, ep: usize) -> Self {
        self.cfg.pcie.rc_queue = rc;
        self.cfg.pcie.switch_queue = switch;
        self.cfg.pcie.ep_queue = ep;
        self
    }

    /// Replaces the autonomic-management tunables wholesale.
    pub fn autonomic(mut self, params: AutonomicParams) -> Self {
        self.cfg.autonomic = params;
        self
    }

    /// Sets the per-cluster write-back buffer capacity in pages.
    pub fn write_buffer_pages(mut self, pages: usize) -> Self {
        self.cfg.write_buffer_pages = pages;
        self
    }

    /// Sets the DFTL-style mapping-cache size (0 = full map in DRAM).
    pub fn mapping_cache_pages(mut self, pages: usize) -> Self {
        self.cfg.mapping_cache_pages = pages;
        self
    }

    /// Sets the GC victim-selection policy.
    pub fn gc_policy(mut self, policy: GcPolicy) -> Self {
        self.cfg.gc_policy = policy;
        self
    }

    /// Sets the number of hot-spare FIMMs available for rebuild.
    pub fn hot_spares(mut self, n: u32) -> Self {
        self.cfg.hot_spares = n;
        self
    }

    /// Sets the simulator tie-breaking RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Enables/disables the per-request latency series recorder.
    pub fn collect_series(mut self, on: bool) -> Self {
        self.cfg.collect_series = on;
        self
    }

    /// Installs a deterministic fault-injection plan.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Configures the multi-tenant front door: tenant `i` gets the
    /// `i`-th spec. An empty iterator keeps the untenanted default
    /// path. Specs are validated (nonzero weight, p99 target, and
    /// queue depth) at [`build`](ArrayConfigBuilder::build) time.
    ///
    /// ```
    /// use triplea_core::{ArrayConfig, TenantSpec};
    ///
    /// let cfg = ArrayConfig::small_builder()
    ///     .with_tenants([TenantSpec::interactive(), TenantSpec::batch()])
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.tenants.len(), 2);
    /// ```
    pub fn with_tenants(mut self, specs: impl IntoIterator<Item = TenantSpec>) -> Self {
        self.cfg.tenants = specs.into_iter().collect();
        self
    }

    /// Opts into the sharded event loop with `n` worker threads. The
    /// run's results are invariant to `n` — workers only change
    /// wall-clock time — and `n = 0` is rejected at
    /// [`build`](ArrayConfigBuilder::build) time with
    /// [`ConfigError::ZeroWorkers`].
    ///
    /// ```
    /// use triplea_core::ArrayConfig;
    ///
    /// let cfg = ArrayConfig::small_builder().workers(4).build().unwrap();
    /// assert_eq!(cfg.workers, Some(4));
    /// ```
    pub fn workers(mut self, n: u32) -> Self {
        self.cfg.workers = Some(n);
        self
    }

    /// Escape hatch for fields without a dedicated setter: `f` mutates
    /// the config in place and the result is still validated by
    /// [`build`](ArrayConfigBuilder::build).
    pub fn tune(mut self, f: impl FnOnce(&mut ArrayConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] violated; see [`ArrayConfig::validate`].
    pub fn build(self) -> Result<ArrayConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_baseline() {
        let c = ArrayConfig::paper_baseline();
        assert_eq!(c.shape.topology.total_clusters(), 64);
        assert_eq!(c.autonomic.sla_ns, 150_000);
        assert_eq!(c.shape.fimms_per_cluster, 4);
    }

    #[test]
    fn eq1_threshold_formula() {
        let c = ArrayConfig::paper_baseline();
        let t_dma = 2_560;
        let t_exe = 26_000;
        assert_eq!(c.eq1_threshold_ns(1), t_dma * 4 + t_exe);
        assert_eq!(c.eq1_threshold_ns(4), t_dma * 7 + t_exe * 4);
    }

    #[test]
    fn eq3_backlog_scales_linearly() {
        let c = ArrayConfig::paper_baseline();
        assert_eq!(c.eq3_backlog_ns(0), 0);
        assert_eq!(c.eq3_backlog_ns(2), 2 * c.eq3_backlog_ns(1));
    }

    #[test]
    fn network_width_builder() {
        let c = ArrayConfig::paper_baseline().with_clusters_per_switch(20);
        assert_eq!(c.shape.topology.total_clusters(), 80);
    }

    #[test]
    fn laggard_strategy_flags() {
        assert!(LaggardStrategy::Both.monitors_latency());
        assert!(LaggardStrategy::Both.examines_queue());
        assert!(!LaggardStrategy::QueueExamination.monitors_latency());
        assert!(!LaggardStrategy::LatencyMonitoring.examines_queue());
    }

    #[test]
    fn mode_display() {
        assert_eq!(ManagementMode::Autonomic.to_string(), "triple-a");
        assert_eq!(ManagementMode::NonAutonomic.to_string(), "non-autonomic");
    }

    #[test]
    fn default_fault_config_is_quiet() {
        assert!(FaultConfig::default().is_quiet());
        assert!(ArrayConfig::default().faults.is_quiet());
        assert!(ArrayConfig::small_test().faults.is_quiet());
    }

    #[test]
    fn fault_events_fill_free_slots() {
        let ev = FimmFaultEvent {
            cluster: 0,
            fimm: 1,
            at_ns: 5_000,
            kind: FimmFaultKind::Dead,
        };
        let fc = FaultConfig::default().with_fimm_event(ev).with_fimm_event(FimmFaultEvent {
            fimm: 2,
            kind: FimmFaultKind::Slowdown(4),
            ..ev
        });
        assert!(!fc.is_quiet());
        assert_eq!(fc.fimm_events[0], Some(ev));
        assert_eq!(fc.fimm_events[1].unwrap().fimm, 2);
        assert!(fc.fimm_events[2].is_none());
    }

    #[test]
    #[should_panic(expected = "no free FIMM fault-event slot")]
    fn fault_event_slots_are_bounded() {
        let ev = FimmFaultEvent {
            cluster: 0,
            fimm: 0,
            at_ns: 0,
            kind: FimmFaultKind::Dead,
        };
        let mut fc = FaultConfig::default();
        for _ in 0..=MAX_FIMM_FAULT_EVENTS {
            fc = fc.with_fimm_event(ev);
        }
    }

    #[test]
    fn try_with_fimm_event_reports_full_schedule_instead_of_panicking() {
        let ev = FimmFaultEvent {
            cluster: 1,
            fimm: 0,
            at_ns: 1_000,
            kind: FimmFaultKind::Dead,
        };
        let mut fc = FaultConfig::default();
        for i in 0..MAX_FIMM_FAULT_EVENTS {
            assert_eq!(fc.free_fimm_event_slots(), MAX_FIMM_FAULT_EVENTS - i);
            fc = fc.try_with_fimm_event(ev).unwrap();
        }
        assert_eq!(fc.free_fimm_event_slots(), 0);
        let err = fc.try_with_fimm_event(ev).unwrap_err();
        assert_eq!(err.dropped, ev);
        assert!(err.to_string().contains("schedule full"), "{err}");
        assert!(fc.fimm_events.iter().all(|e| e.is_some()));
    }

    #[test]
    fn builder_accepts_baseline_and_small_test() {
        assert_eq!(
            ArrayConfig::builder().build().unwrap(),
            ArrayConfig::paper_baseline()
        );
        assert_eq!(
            ArrayConfig::small_builder().build().unwrap(),
            ArrayConfig::small_test()
        );
    }

    #[test]
    fn builder_rejects_zero_fanout() {
        let err = ArrayConfig::builder().fimms_per_cluster(0).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::ZeroDimension {
                field: "fimms_per_cluster"
            }
        );
        let err = ArrayConfig::builder().topology(0, 16).build().unwrap_err();
        assert!(matches!(err, ConfigError::ZeroDimension { .. }), "{err}");
    }

    #[test]
    fn builder_rejects_zero_workers() {
        let err = ArrayConfig::builder().workers(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroWorkers);
        assert!(err.to_string().contains("nonzero"), "{err}");
        assert_eq!(ArrayConfig::paper_baseline().workers, None);
        let cfg = ArrayConfig::builder().workers(8).build().unwrap();
        assert_eq!(cfg.workers, Some(8));
    }

    #[test]
    fn builder_rejects_zero_queue_depths() {
        let err = ArrayConfig::builder().queue_depths(800, 0, 64).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::ZeroQueueDepth {
                queue: "pcie.switch_queue"
            }
        );
    }

    #[test]
    fn builder_rejects_inverted_thresholds() {
        let err = ArrayConfig::builder()
            .tune(|c| {
                c.autonomic.hot_bus_threshold = 0.2;
                c.autonomic.cold_bus_threshold = 0.5;
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ColdNotBelowHot { cold: 0.5, hot: 0.2 });
        let err = ArrayConfig::builder()
            .tune(|c| c.autonomic.hot_bus_threshold = 1.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ThresholdOutOfRange { .. }), "{err}");
    }

    #[test]
    fn builder_rejects_out_of_range_fault_events() {
        let err = ArrayConfig::small_builder()
            .faults(FaultConfig::default().with_fimm_event(FimmFaultEvent {
                cluster: 0,
                fimm: 99,
                at_ns: 0,
                kind: FimmFaultKind::Dead,
            }))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::FaultEventOutOfRange {
                index: 0,
                cluster: 0,
                fimm: 99
            }
        );
        assert!(err.to_string().contains("fault event #0"), "{err}");
    }

    #[test]
    fn builder_rejects_oversized_migration_extent() {
        let err = ArrayConfig::builder()
            .tune(|c| {
                c.autonomic.migration_extent_pages = 512;
                c.autonomic.max_inflight_reloc_pages = 64;
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadMigrationExtent { .. }), "{err}");
    }

    #[test]
    fn builder_typed_setters_apply() {
        let c = ArrayConfig::builder()
            .topology(2, 8)
            .fimms_per_cluster(2)
            .queue_depths(100, 50, 32)
            .seed(7)
            .collect_series(true)
            .write_buffer_pages(64)
            .mapping_cache_pages(4)
            .gc_policy(GcPolicy::CostBenefit)
            .build()
            .unwrap();
        assert_eq!(c.shape.topology.total_clusters(), 16);
        assert_eq!(c.shape.fimms_per_cluster, 2);
        assert_eq!((c.pcie.rc_queue, c.pcie.switch_queue, c.pcie.ep_queue), (100, 50, 32));
        assert_eq!(c.seed, 7);
        assert!(c.collect_series);
        assert_eq!(c.gc_policy, GcPolicy::CostBenefit);
    }

    #[test]
    fn power_loss_breaks_quiet() {
        let fc = FaultConfig::default().with_power_loss(PowerLossEvent::at(9_000_000));
        assert!(!fc.is_quiet());
        let ev = fc.power_loss.unwrap();
        assert_eq!(ev.at_ns, 9_000_000);
        assert!(ev.remount_base_ns > 0);
        assert!(ev.flush_every >= 1 && ev.checkpoint_every >= 1);
    }

    #[test]
    fn hot_spares_builder() {
        let c = ArrayConfig::small_builder().hot_spares(2).build().unwrap();
        assert_eq!(c.hot_spares, 2);
        assert_eq!(ArrayConfig::default().hot_spares, 0);
    }

    #[test]
    fn with_tenants_builds_and_validates() {
        let c = ArrayConfig::small_builder()
            .with_tenants([TenantSpec::interactive(), TenantSpec::batch()])
            .build()
            .unwrap();
        assert!(c.tenants.is_active());
        assert_eq!(c.tenants.len(), 2);
        assert_eq!(c.tenants.specs()[0].weight, 8);
        assert!(!ArrayConfig::small_test().tenants.is_active());
    }

    #[test]
    fn tenant_specs_are_validated_in_order() {
        let bad = |spec: TenantSpec, field: &'static str| {
            let err = ArrayConfig::small_builder()
                .with_tenants([TenantSpec::interactive(), spec])
                .build()
                .unwrap_err();
            assert_eq!(err, ConfigError::BadTenantSpec { index: 1, field });
            assert!(err.to_string().contains("tenant #1"), "{err}");
        };
        bad(
            TenantSpec {
                weight: 0,
                ..TenantSpec::batch()
            },
            "weight",
        );
        bad(
            TenantSpec {
                sla_p99_ns: 0,
                ..TenantSpec::batch()
            },
            "sla_p99_ns",
        );
        bad(
            TenantSpec {
                qd_limit: 0,
                ..TenantSpec::batch()
            },
            "qd_limit",
        );
    }

    #[test]
    fn tenant_count_is_bounded() {
        let mut c = ArrayConfig::small_test();
        c.tenants = (0..=MAX_TENANTS).map(|_| TenantSpec::batch()).collect();
        let err = c.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::TooManyTenants {
                count: MAX_TENANTS + 1,
                max: MAX_TENANTS
            }
        );
        assert!(err.to_string().contains("at most"), "{err}");
    }

    #[test]
    fn nonzero_probability_is_not_quiet() {
        let mut fc = FaultConfig::default();
        fc.flash.read_transient_prob = 1e-3;
        assert!(!fc.is_quiet());
        let mut fc = FaultConfig::default();
        fc.pcie.corrupt_prob = 1e-3;
        assert!(!fc.is_quiet());
    }
}
