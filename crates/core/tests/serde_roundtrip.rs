//! A [`RunReport`] must survive JSON serialization losslessly: the
//! experiment harness persists reports into `results/*.json` and the
//! golden-snapshot suite compares those artifacts byte-for-byte.

use triplea_core::{
    Array, ArrayConfig, IoOp, ManagementMode, RunReport, TenantId, TenantSpec, Trace, TraceRequest,
};
use triplea_ftl::LogicalPage;
use triplea_sim::SimTime;

/// A short hot-cluster run on the small test array: enough traffic to
/// populate histograms, per-cluster counters, autonomic stats, and the
/// latency series (small_test enables series collection).
fn populated_report() -> RunReport {
    let cfg = ArrayConfig::small_test();
    let trace: Trace = (0..600)
        .map(|i| {
            TraceRequest::new(
                SimTime::from_us(i / 4),
                if i % 5 == 0 { IoOp::Write } else { IoOp::Read },
                LogicalPage((i % 64) * 8),
                1,
            )
        })
        .collect();
    Array::new(cfg, ManagementMode::Autonomic).run(&trace)
}

/// The same traffic split round-robin across a three-tenant table, so
/// the report carries a populated per-tenant section.
fn tenanted_report() -> RunReport {
    let mut cfg = ArrayConfig::small_test();
    cfg.tenants = [TenantSpec::interactive(), TenantSpec::batch(), TenantSpec::batch()]
        .into_iter()
        .collect();
    let trace: Trace = (0..600)
        .map(|i| {
            TraceRequest::for_tenant(
                TenantId((i % 3) as u32),
                SimTime::from_us(i / 4),
                if i % 5 == 0 { IoOp::Write } else { IoOp::Read },
                LogicalPage((i % 64) * 8),
                1,
            )
        })
        .collect();
    Array::new(cfg, ManagementMode::Autonomic).run(&trace)
}

#[test]
fn run_report_round_trips_losslessly_through_json() {
    let report = populated_report();
    assert!(report.completed() > 0, "run produced traffic");
    assert!(!report.series().is_empty(), "series was collected");

    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: RunReport = serde_json::from_str(&text).expect("report deserializes");

    // Field-for-field equality (PartialEq covers every private field,
    // including all three histograms and the latency series)...
    assert_eq!(back, report);
    // ...and the derived metrics the renderers consume agree exactly.
    assert_eq!(back.iops().to_bits(), report.iops().to_bits());
    assert_eq!(
        back.mean_latency_us().to_bits(),
        report.mean_latency_us().to_bits()
    );
    assert_eq!(
        back.latency_percentile_us(0.99).to_bits(),
        report.latency_percentile_us(0.99).to_bits()
    );
    assert_eq!(back.autonomic_stats(), report.autonomic_stats());
    assert_eq!(back.ftl_stats(), report.ftl_stats());
    assert_eq!(back.wear(), report.wear());
    assert_eq!(back.fault_stats(), report.fault_stats());

    // Serializing the reconstruction reproduces the exact bytes.
    let text2 = serde_json::to_string_pretty(&back).expect("round-tripped report serializes");
    assert_eq!(text2, text);
}

#[test]
fn tenant_stats_round_trip_losslessly_through_json() {
    let report = tenanted_report();
    let ts = report.tenant_stats();
    assert_eq!(ts.len(), 3, "three tenants configured");
    assert!(ts.iter().all(|t| t.completed > 0), "all lanes saw traffic");

    let text = serde_json::to_string_pretty(&report).expect("tenanted report serializes");
    let back: RunReport = serde_json::from_str(&text).expect("tenanted report deserializes");
    assert_eq!(back, report);
    assert_eq!(back.tenant_stats(), report.tenant_stats());
    assert_eq!(back.sla_violations(), report.sla_violations());

    let text2 = serde_json::to_string_pretty(&back).expect("round-tripped report serializes");
    assert_eq!(text2, text);
}

#[test]
fn mode_serializes_as_variant_name() {
    let v = serde_json::to_value(&ManagementMode::Autonomic);
    assert_eq!(v.as_str(), Some("Autonomic"));
    let back: ManagementMode =
        serde_json::from_value(&v).expect("mode deserializes from variant name");
    assert_eq!(back, ManagementMode::Autonomic);
    assert!(serde_json::from_value::<ManagementMode>(&serde_json::Value::Str(
        "Bogus".into()
    ))
    .is_err());
}
