//! FTL error type.

use triplea_pcie::ClusterId;

/// Errors surfaced by the host-side flash translation layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtlError {
    /// The target FIMM has no free blocks left; garbage collection must
    /// reclaim space before the write can proceed.
    OutOfSpace {
        /// Cluster of the exhausted FIMM.
        cluster: ClusterId,
        /// FIMM index within the cluster.
        fimm: u32,
    },
    /// A logical page outside the array's address space was used.
    AddressOutOfRange(u64),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::OutOfSpace { cluster, fimm } => {
                write!(f, "no free blocks on {cluster} fimm {fimm}; gc required")
            }
            FtlError::AddressOutOfRange(lpn) => {
                write!(f, "logical page {lpn} outside the array address space")
            }
        }
    }
}

impl std::error::Error for FtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = FtlError::OutOfSpace {
            cluster: ClusterId::default(),
            fimm: 3,
        };
        assert!(e.to_string().contains("fimm 3"));
        assert!(FtlError::AddressOutOfRange(9).to_string().contains('9'));
    }
}
