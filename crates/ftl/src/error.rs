//! FTL error types.

use triplea_pcie::ClusterId;

use crate::shape::{LogicalPage, PhysLoc};

/// Errors surfaced by the host-side flash translation layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtlError {
    /// The target FIMM has no free blocks left; garbage collection must
    /// reclaim space before the write can proceed.
    OutOfSpace {
        /// Cluster of the exhausted FIMM.
        cluster: ClusterId,
        /// FIMM index within the cluster.
        fimm: u32,
    },
    /// A logical page outside the array's address space was used.
    AddressOutOfRange(u64),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::OutOfSpace { cluster, fimm } => {
                write!(f, "no free blocks on {cluster} fimm {fimm}; gc required")
            }
            FtlError::AddressOutOfRange(lpn) => {
                write!(f, "logical page {lpn} outside the array address space")
            }
        }
    }
}

impl std::error::Error for FtlError {}

/// A mount-time recovery scan failure: the journal replay could not
/// reconstruct the pre-crash metadata. Either the replayed operation
/// itself failed, or it produced a different physical location than the
/// journal recorded — both indicate the journal and the checkpoint have
/// diverged and the metadata cannot be trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// Re-driving a journaled operation failed outright.
    Replay {
        /// Index of the failing record within the flushed journal.
        index: u64,
        /// The underlying FTL error.
        error: FtlError,
    },
    /// Replay succeeded but produced a result different from what the
    /// journal recorded at original execution time.
    Diverged {
        /// Index of the diverging record within the flushed journal.
        index: u64,
        /// The logical page whose replay diverged.
        lpn: LogicalPage,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Replay { index, error } => {
                write!(f, "journal replay failed at record {index}: {error}")
            }
            RecoveryError::Diverged { index, lpn } => {
                write!(
                    f,
                    "journal replay diverged at record {index} (lpn {})",
                    lpn.0
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// A metadata-integrity violation found by
/// [`Ftl::verify_integrity`](crate::Ftl::verify_integrity), identifying
/// exactly which logical page and physical location diverged.
///
/// The [`Display`](std::fmt::Display) rendering matches the prose the
/// checker has always produced, so log scrapers keep working; the typed
/// fields let callers dispatch on the failure class instead of parsing
/// strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// An LPN's mapped location falls outside the array geometry.
    OutOfRange {
        /// The logical page whose mapping is bad.
        lpn: LogicalPage,
        /// Where the map (incorrectly) points.
        loc: PhysLoc,
    },
    /// Two LPNs map to the same physical page — a duplication introduced
    /// by writes, GC, migration, or fault rollback.
    DoubleMapped {
        /// The physical page claimed twice.
        loc: PhysLoc,
        /// The LPN that was seen mapping there first.
        first: LogicalPage,
        /// The LPN found mapping there second.
        second: LogicalPage,
    },
    /// The map points at a page the block table does not record as
    /// holding that LPN — the page's data was lost or overwritten.
    LostPage {
        /// The logical page whose data is unreachable.
        lpn: LogicalPage,
        /// Where the map points.
        loc: PhysLoc,
        /// What the block table records at that physical page, if
        /// anything.
        listed: Option<LogicalPage>,
    },
    /// A live block-table entry does not round-trip through the map: the
    /// table lists the LPN at one place while the map points elsewhere.
    StaleBlockEntry {
        /// The logical page with the stale entry.
        lpn: LogicalPage,
        /// Global cluster index of the stale block-table entry.
        cluster: u32,
        /// FIMM index of the stale entry.
        fimm: u32,
        /// Package of the stale entry.
        package: u32,
        /// Die of the stale entry.
        die: u32,
        /// Block of the stale entry.
        block: u32,
        /// Page offset of the stale entry.
        page: u32,
        /// Where the map actually points for this LPN.
        map_loc: PhysLoc,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::OutOfRange { lpn, loc } => {
                write!(f, "lpn {} maps outside the array: {loc}", lpn.0)
            }
            IntegrityError::DoubleMapped { loc, first, second } => {
                write!(
                    f,
                    "physical page {loc} mapped by both lpn {} and lpn {}",
                    first.0, second.0
                )
            }
            IntegrityError::LostPage { lpn, loc, listed } => {
                write!(
                    f,
                    "lpn {} maps to {loc} but the block table records {listed:?} there",
                    lpn.0
                )
            }
            IntegrityError::StaleBlockEntry {
                lpn,
                cluster,
                fimm,
                package,
                die,
                block,
                page,
                map_loc,
            } => {
                write!(
                    f,
                    "block table lists lpn {} live at ({cluster}, {fimm}, \
                     ({package}, {die}, {block})) page {page} but the map points at {map_loc}",
                    lpn.0
                )
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = FtlError::OutOfSpace {
            cluster: ClusterId::default(),
            fimm: 3,
        };
        assert!(e.to_string().contains("fimm 3"));
        assert!(FtlError::AddressOutOfRange(9).to_string().contains('9'));
    }
}
