//! Demand-paged mapping cache (DFTL-style, the paper's ref. [19]).
//!
//! Triple-A's default keeps the entire logical→physical map in the
//! management module's relocated DRAM (§6.6), so translations are free.
//! This module models the alternative the FTL literature studies: only a
//! bounded number of *translation pages* (each covering a run of
//! consecutive LPNs) are cached, and a miss costs a flash read of the
//! map page. The array layer charges that read to the request.

use triplea_sim::FxHashMap;

/// Mapping entries covered by one cached translation page: a 4 KB page
/// of 8-byte entries.
pub const ENTRIES_PER_TRANSLATION_PAGE: u64 = 512;

/// An LRU cache of translation pages.
///
/// # Example
///
/// ```
/// use triplea_ftl::MappingCache;
///
/// let mut c = MappingCache::new(2);
/// assert!(!c.access(0));        // cold miss
/// assert!(c.access(1));         // same translation page
/// assert!(!c.access(10_000));   // different page
/// assert_eq!(c.stats(), (1, 2));
/// ```
#[derive(Clone, Debug)]
pub struct MappingCache {
    capacity: usize,
    /// translation-page id → last-use tick
    resident: FxHashMap<u64, u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl MappingCache {
    /// Creates a cache holding `capacity` translation pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (use `Option<MappingCache>` to model a
    /// full in-DRAM map).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mapping cache needs capacity");
        MappingCache {
            capacity,
            resident: FxHashMap::default(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches the translation page covering `lpn`; returns `true` on a
    /// hit. On a miss the LRU resident page is evicted and the new page
    /// installed (the caller charges the flash read).
    pub fn access(&mut self, lpn: u64) -> bool {
        let tpage = lpn / ENTRIES_PER_TRANSLATION_PAGE;
        self.tick += 1;
        if let Some(last) = self.resident.get_mut(&tpage) {
            *last = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.resident.len() >= self.capacity {
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &t)| t) {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(tpage, self.tick);
        false
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Fraction of accesses that hit (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of resident translation pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Configured capacity in translation pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_locality_hits() {
        let mut c = MappingCache::new(4);
        assert!(!c.access(0));
        for lpn in 1..ENTRIES_PER_TRANSLATION_PAGE {
            assert!(c.access(lpn), "lpn {lpn} shares the translation page");
        }
        assert_eq!(c.stats().1, 1, "exactly one miss");
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut c = MappingCache::new(2);
        let page = |i: u64| i * ENTRIES_PER_TRANSLATION_PAGE;
        c.access(page(0));
        c.access(page(1));
        c.access(page(0)); // page 0 now warmer than page 1
        c.access(page(2)); // evicts page 1
        assert!(c.access(page(0)), "warm page survived");
        assert!(!c.access(page(1)), "cold page was evicted");
        assert_eq!(c.resident_pages(), 2);
    }

    #[test]
    fn capacity_bounds_residency() {
        let mut c = MappingCache::new(3);
        for i in 0..100 {
            c.access(i * ENTRIES_PER_TRANSLATION_PAGE);
        }
        assert_eq!(c.resident_pages(), 3);
        assert_eq!(c.capacity(), 3);
    }

    #[test]
    fn hit_rate_tracks_ratio() {
        let mut c = MappingCache::new(1);
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(1);
        c.access(2);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        MappingCache::new(0);
    }
}
