//! Array dimensions and address newtypes.

use triplea_fimm::FimmAddr;
use triplea_flash::FlashGeometry;
use triplea_pcie::{ClusterId, Topology};

/// A logical page number in the array's global address space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalPage(pub u64);

impl std::fmt::Display for LogicalPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lpn{}", self.0)
    }
}

/// A fully resolved physical location: cluster, FIMM, package and page.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PhysLoc {
    /// Which cluster (endpoint) holds the page.
    pub cluster: ClusterId,
    /// FIMM index within the cluster.
    pub fimm: u32,
    /// Package and in-package page address.
    pub addr: FimmAddr,
}

impl std::fmt::Display for PhysLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/f{}/{}", self.cluster, self.fimm, self.addr)
    }
}

/// Physical dimensions of the whole array (paper §5.1 baseline: 4
/// switches × 16 clusters × 4 FIMMs × 8 packages ⇒ 16 TB).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayShape {
    /// PCI-E network shape.
    pub topology: Topology,
    /// FIMMs per cluster.
    pub fimms_per_cluster: u32,
    /// NAND packages per FIMM.
    pub packages_per_fimm: u32,
    /// Geometry of each package.
    pub flash: FlashGeometry,
}

impl Default for ArrayShape {
    fn default() -> Self {
        ArrayShape {
            topology: Topology::default(),
            fimms_per_cluster: 4,
            packages_per_fimm: 8,
            flash: FlashGeometry::default(),
        }
    }
}

impl ArrayShape {
    /// A deliberately small shape (2×4 network, 2 FIMMs × 2 packages)
    /// for unit tests and doc examples.
    pub fn small_test() -> Self {
        ArrayShape {
            topology: Topology {
                switches: 2,
                clusters_per_switch: 4,
            },
            fimms_per_cluster: 2,
            packages_per_fimm: 8,
            flash: FlashGeometry {
                dies: 2,
                planes: 2,
                blocks_per_plane: 64,
                pages_per_block: 32,
                page_size: 4096,
                endurance: 1000,
            },
        }
    }

    /// Pages in one package.
    pub fn pages_per_package(&self) -> u64 {
        self.flash.total_pages()
    }

    /// Pages in one FIMM.
    pub fn pages_per_fimm(&self) -> u64 {
        self.pages_per_package() * self.packages_per_fimm as u64
    }

    /// Pages in one cluster.
    pub fn pages_per_cluster(&self) -> u64 {
        self.pages_per_fimm() * self.fimms_per_cluster as u64
    }

    /// Pages in the whole array.
    pub fn total_pages(&self) -> u64 {
        self.pages_per_cluster() * self.topology.total_clusters() as u64
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.flash.page_size as u64
    }

    /// Validates that a physical location exists in this shape.
    pub fn contains(&self, loc: PhysLoc) -> bool {
        loc.cluster.switch < self.topology.switches
            && loc.cluster.index < self.topology.clusters_per_switch
            && loc.fimm < self.fimms_per_cluster
            && loc.addr.package < self.packages_per_fimm
            && self.flash.check(loc.addr.page).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_is_16tb() {
        let s = ArrayShape::default();
        // 64 clusters x 4 FIMMs x 64 GiB-per-FIMM... FIMM = 8 x 8 GiB
        assert_eq!(s.capacity_bytes(), 16 * 1024u64.pow(4));
        assert_eq!(s.topology.total_clusters(), 64);
    }

    #[test]
    fn page_hierarchy_multiplies() {
        let s = ArrayShape::small_test();
        assert_eq!(s.pages_per_fimm(), 8 * s.pages_per_package());
        assert_eq!(s.pages_per_cluster(), 2 * s.pages_per_fimm());
        assert_eq!(s.total_pages(), 8 * s.pages_per_cluster());
    }

    #[test]
    fn contains_rejects_out_of_shape() {
        let s = ArrayShape::small_test();
        let mut loc = PhysLoc::default();
        assert!(s.contains(loc));
        loc.fimm = 2;
        assert!(!s.contains(loc));
        loc.fimm = 0;
        loc.cluster.switch = 2;
        assert!(!s.contains(loc));
    }

    #[test]
    fn display_formats() {
        assert_eq!(LogicalPage(5).to_string(), "lpn5");
        let loc = PhysLoc::default();
        assert_eq!(loc.to_string(), "s0c0/f0/pkg0/d0p0b0pg0");
    }
}
