//! The default physical data layout.

use triplea_fimm::FimmAddr;
use triplea_flash::PageAddr;
use triplea_pcie::ClusterId;

use crate::shape::{ArrayShape, LogicalPage, PhysLoc};

/// The array's default (pre-reshaping) data layout.
///
/// Logical space is split into one *contiguous region per cluster* — so a
/// workload whose address distribution is skewed produces the paper's
/// **hot clusters** — while inside a cluster consecutive pages stripe
/// across FIMMs, then packages, then dies, then planes, maximising the
/// internal parallelism the HAL can exploit.
#[derive(Clone, Copy, Debug)]
pub struct StripedLayout {
    shape: ArrayShape,
}

impl StripedLayout {
    /// Creates the layout for `shape`.
    pub fn new(shape: ArrayShape) -> Self {
        StripedLayout { shape }
    }

    /// The shape this layout addresses.
    pub fn shape(&self) -> &ArrayShape {
        &self.shape
    }

    /// Number of addressable logical pages.
    pub fn total_pages(&self) -> u64 {
        self.shape.total_pages()
    }

    /// Resolves a logical page to its default physical location.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of the array's address space.
    pub fn locate(&self, lpn: LogicalPage) -> PhysLoc {
        let s = &self.shape;
        assert!(lpn.0 < s.total_pages(), "logical page out of range");

        let per_cluster = s.pages_per_cluster();
        let cluster_global = (lpn.0 / per_cluster) as u32;
        let cluster = s.topology.cluster_from_global(cluster_global);

        let w = lpn.0 % per_cluster;
        let fimm = (w % s.fimms_per_cluster as u64) as u32;
        let w = w / s.fimms_per_cluster as u64;
        let package = (w % s.packages_per_fimm as u64) as u32;
        let w = w / s.packages_per_fimm as u64;

        let g = &s.flash;
        let die = (w % g.dies as u64) as u32;
        let w = w / g.dies as u64;
        let plane = (w % g.planes as u64) as u32;
        let w = w / g.planes as u64;
        let page = (w % g.pages_per_block as u64) as u32;
        let block_in_plane = (w / g.pages_per_block as u64) as u32;
        let block = block_in_plane * g.planes + plane;

        PhysLoc {
            cluster,
            fimm,
            addr: FimmAddr {
                package,
                page: PageAddr {
                    die,
                    plane,
                    block,
                    page,
                },
            },
        }
    }

    /// The cluster that a logical page maps to by default — cheap enough
    /// for workload generators steering load onto specific clusters.
    pub fn cluster_of(&self, lpn: LogicalPage) -> ClusterId {
        let per_cluster = self.shape.pages_per_cluster();
        self.shape
            .topology
            .cluster_from_global((lpn.0 / per_cluster).min(u32::MAX as u64) as u32)
    }

    /// The first logical page of a cluster's contiguous region.
    pub fn region_start(&self, cluster: ClusterId) -> LogicalPage {
        LogicalPage(
            self.shape.topology.global_index(cluster) as u64 * self.shape.pages_per_cluster(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> StripedLayout {
        StripedLayout::new(ArrayShape::small_test())
    }

    #[test]
    fn every_location_is_in_shape() {
        let l = layout();
        // probe a spread of the space
        let step = l.total_pages() / 997;
        for i in 0..997 {
            let loc = l.locate(LogicalPage(i * step));
            assert!(l.shape().contains(loc), "lpn {} -> {loc}", i * step);
        }
    }

    #[test]
    fn consecutive_pages_stripe_across_fimms() {
        let l = layout();
        let a = l.locate(LogicalPage(0));
        let b = l.locate(LogicalPage(1));
        let c = l.locate(LogicalPage(2));
        assert_eq!(a.cluster, b.cluster);
        assert_ne!(a.fimm, b.fimm, "adjacent pages on different FIMMs");
        assert_eq!(a.fimm, c.fimm, "wraps around two FIMMs");
        assert_ne!(a.addr.package, c.addr.package, "then strips packages");
    }

    #[test]
    fn regions_are_cluster_contiguous() {
        let l = layout();
        let per_cluster = l.shape().pages_per_cluster();
        let first = l.locate(LogicalPage(0));
        let last = l.locate(LogicalPage(per_cluster - 1));
        let next = l.locate(LogicalPage(per_cluster));
        assert_eq!(first.cluster, last.cluster);
        assert_ne!(last.cluster, next.cluster);
        assert_eq!(l.cluster_of(LogicalPage(per_cluster)), next.cluster);
    }

    #[test]
    fn region_start_roundtrip() {
        let l = layout();
        for id in l.shape().topology.iter_clusters().collect::<Vec<_>>() {
            let start = l.region_start(id);
            assert_eq!(l.cluster_of(start), id);
        }
    }

    #[test]
    fn layout_is_injective_within_cluster() {
        let l = layout();
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..l.shape().pages_per_cluster() {
            let loc = l.locate(LogicalPage(lpn));
            assert!(seen.insert((loc.fimm, loc.addr)), "duplicate at lpn {lpn}");
        }
    }

    #[test]
    fn block_parity_matches_plane() {
        let l = layout();
        for lpn in (0..l.total_pages()).step_by(777) {
            let loc = l.locate(LogicalPage(lpn));
            assert_eq!(
                loc.addr.page.block % l.shape().flash.planes,
                loc.addr.page.plane
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let l = layout();
        l.locate(LogicalPage(l.total_pages()));
    }
}
