//! A FAST-style **hybrid (block-mapped + log) FTL** for one FIMM.
//!
//! The paper's §4 notes the flash control logic "can be implemented in
//! many different ways" and cites both page-level demand mapping (DFTL,
//! ref. [19]) and hybrid log-block schemes (FAST, ref. [29]). The main
//! [`crate::Ftl`] is page-mapped; this module implements the classic
//! alternative so the design space is explorable:
//!
//! * logical space is divided into block-sized extents, mapped
//!   block-to-block (tiny map: one entry per *block*, not per page);
//! * all overwrites append to a small set of shared **log blocks**;
//! * when the logs fill, the oldest log block is reclaimed by **full
//!   merges**: every logical block with live pages in it is rewritten to
//!   a fresh physical block from the newest copies.
//!
//! The well-known trade-off this exposes (see the `ftl_compare` bench):
//! hybrid mapping needs orders-of-magnitude less mapping RAM but pays
//! much higher write amplification on random overwrites.

use triplea_sim::{FxHashMap, FxHashSet};

use triplea_flash::FlashGeometry;

/// Statistics of a [`HybridFtl`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Pages written on behalf of the host (log appends).
    pub host_writes: u64,
    /// Pages rewritten by full merges.
    pub merge_writes: u64,
    /// Full merges performed (one per logical block reclaimed).
    pub merges: u64,
    /// Blocks erased (log blocks + replaced data blocks).
    pub erases: u64,
}

impl HybridStats {
    /// Write amplification: total programs per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 1.0;
        }
        (self.host_writes + self.merge_writes) as f64 / self.host_writes as f64
    }
}

#[derive(Clone, Debug, Default)]
struct LogBlock {
    /// Appended lpns in program order.
    entries: Vec<u64>,
}

/// A FAST-style hybrid FTL over the logical page space of one FIMM.
///
/// Accounting-only (like the rest of the FTL layer, it never stores
/// data): it tracks mapping state, log occupancy, and the write/erase
/// work a device would perform.
///
/// # Example
///
/// ```
/// use triplea_ftl::HybridFtl;
/// use triplea_flash::FlashGeometry;
///
/// let mut ftl = HybridFtl::new(FlashGeometry::default(), 8, 8);
/// for i in 0..10_000u64 {
///     ftl.write((i * 7) % 4_096);
/// }
/// assert!(ftl.stats().write_amplification() >= 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct HybridFtl {
    geom: FlashGeometry,
    /// Total logical pages (= physical pages minus log + spare region).
    logical_pages: u64,
    /// Logical block → physical block (dense id); absent = never merged
    /// (all live data still in the logs or never written).
    block_map: FxHashMap<u64, u64>,
    /// lpn → (log block index, slot) of the *newest* copy, if it lives
    /// in a log block.
    log_map: FxHashMap<u64, (usize, u32)>,
    /// The shared log blocks, reclaimed FIFO.
    logs: Vec<LogBlock>,
    /// Log block currently absorbing appends.
    active_log: usize,
    /// Oldest log block (next reclaim victim).
    oldest_log: usize,
    /// Physical data blocks never handed out yet.
    next_free: u64,
    /// Erased data blocks ready for reuse.
    freed: Vec<u64>,
    /// Logical pages ever written (merges only copy real data; empty
    /// slots in a data block cost nothing).
    ever_written: FxHashSet<u64>,
    stats: HybridStats,
}

impl HybridFtl {
    /// Creates a hybrid FTL over a FIMM of `packages` packages of
    /// `geom`, reserving `log_blocks` shared log blocks.
    ///
    /// # Panics
    ///
    /// Panics if `log_blocks == 0` or the geometry is too small to hold
    /// the logs plus one data block.
    pub fn new(geom: FlashGeometry, packages: u32, log_blocks: usize) -> Self {
        assert!(log_blocks > 0, "hybrid FTL needs log blocks");
        let total_blocks = geom.total_blocks() * packages as u64;
        assert!(
            total_blocks > log_blocks as u64 + 1,
            "geometry too small for the log region"
        );
        let data_blocks = total_blocks - log_blocks as u64;
        HybridFtl {
            geom,
            logical_pages: data_blocks * geom.pages_per_block as u64,
            block_map: FxHashMap::default(),
            log_map: FxHashMap::default(),
            logs: vec![LogBlock::default(); log_blocks],
            active_log: 0,
            oldest_log: 0,
            next_free: 0,
            freed: Vec::new(),
            ever_written: FxHashSet::default(),
            stats: HybridStats::default(),
        }
    }

    /// Number of addressable logical pages.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Activity counters.
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Mapping-table footprint in entries (block map + log map) — the
    /// RAM-economy side of the hybrid trade-off.
    pub fn mapping_entries(&self) -> usize {
        self.block_map.len() + self.log_map.len()
    }

    fn pages_per_block(&self) -> u64 {
        self.geom.pages_per_block as u64
    }

    fn alloc_data_block(&mut self) -> u64 {
        if let Some(b) = self.freed.pop() {
            return b;
        }
        let b = self.next_free;
        self.next_free += 1;
        b
    }

    /// `true` when the newest copy of `lpn` lives in a log block.
    pub fn is_in_log(&self, lpn: u64) -> bool {
        self.log_map.contains_key(&lpn)
    }

    /// Writes one logical page (appends to the active log block),
    /// triggering log reclamation when the logs are full.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is outside the logical space.
    pub fn write(&mut self, lpn: u64) {
        assert!(lpn < self.logical_pages, "lpn out of range");
        if self.logs[self.active_log].entries.len() as u64 >= self.pages_per_block() {
            // Advance to the next log block, reclaiming the oldest if
            // every log is full.
            let next = (self.active_log + 1) % self.logs.len();
            if next == self.oldest_log && !self.logs[next].entries.is_empty() {
                self.reclaim_oldest_log();
            }
            self.active_log = next;
        }
        let slot = self.logs[self.active_log].entries.len() as u32;
        self.logs[self.active_log].entries.push(lpn);
        self.log_map.insert(lpn, (self.active_log, slot));
        self.ever_written.insert(lpn);
        self.stats.host_writes += 1;
    }

    /// Reclaims the oldest log block with FAST-style full merges.
    fn reclaim_oldest_log(&mut self) {
        let victim = self.oldest_log;
        let entries = std::mem::take(&mut self.logs[victim].entries);

        // Logical blocks whose *newest* copy of some page sits in the
        // victim need a full merge; stale entries are simply dropped.
        let ppb = self.pages_per_block();
        let mut to_merge: Vec<u64> = entries
            .iter()
            .enumerate()
            .filter(|(slot, lpn)| self.log_map.get(lpn) == Some(&(victim, *slot as u32)))
            .map(|(_, lpn)| lpn / ppb)
            .collect();
        to_merge.sort_unstable();
        to_merge.dedup();

        for lbn in to_merge {
            self.full_merge(lbn);
        }
        // Erase the log block itself.
        self.stats.erases += 1;
        self.oldest_log = (victim + 1) % self.logs.len();
    }

    /// Full merge of one logical block: write the newest copy of every
    /// live page to a fresh data block, retire the old one.
    fn full_merge(&mut self, lbn: u64) {
        let ppb = self.pages_per_block();
        let mut merged_pages = 0u64;
        for off in 0..ppb {
            let lpn = lbn * ppb + off;
            // A page participates if it was ever written (its newest
            // copy lives in a log or the data block); empty slots cost
            // nothing.
            self.log_map.remove(&lpn);
            if self.ever_written.contains(&lpn) {
                merged_pages += 1;
            }
        }
        let fresh = self.alloc_data_block();
        if let Some(old) = self.block_map.insert(lbn, fresh) {
            self.freed.push(old);
            self.stats.erases += 1;
        }
        self.stats.merge_writes += merged_pages;
        self.stats.merges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> FlashGeometry {
        FlashGeometry {
            dies: 1,
            planes: 1,
            blocks_per_plane: 64,
            pages_per_block: 16,
            page_size: 4096,
            endurance: 10_000,
        }
    }

    #[test]
    fn writes_append_until_logs_fill() {
        let mut f = HybridFtl::new(small_geom(), 1, 4);
        // 4 logs x 16 pages = 64 appends before any merge.
        for i in 0..64 {
            f.write(i);
        }
        assert_eq!(f.stats().merges, 0);
        assert_eq!(f.stats().host_writes, 64);
        assert!(f.is_in_log(0));
    }

    #[test]
    fn log_exhaustion_triggers_merges() {
        let mut f = HybridFtl::new(small_geom(), 1, 2);
        for i in 0..200 {
            f.write(i % 40);
        }
        let s = f.stats();
        assert!(s.merges > 0, "merges never ran");
        assert!(s.erases > 0);
        assert!(s.write_amplification() > 1.0);
    }

    #[test]
    fn sequential_overwrites_amplify_less_than_random() {
        let geom = small_geom();
        let mut seq = HybridFtl::new(geom, 1, 4);
        let mut rnd = HybridFtl::new(geom, 1, 4);
        let span = 256u64; // 16 logical blocks
        for i in 0..20_000u64 {
            seq.write(i % span);
            // golden-ratio stride scatters across logical blocks
            rnd.write((i * 167) % span);
        }
        let wa_seq = seq.stats().write_amplification();
        let wa_rnd = rnd.stats().write_amplification();
        assert!(
            wa_seq < wa_rnd,
            "sequential WA {wa_seq} should beat random WA {wa_rnd}"
        );
    }

    #[test]
    fn mapping_footprint_is_block_granular() {
        let mut f = HybridFtl::new(small_geom(), 1, 4);
        // Touch every page of 8 logical blocks, then force merges.
        for i in 0..(8 * 16 * 4) {
            f.write(i % 128);
        }
        // Page-mapped would need >=128 entries; hybrid needs ~8 block
        // entries plus the bounded log map (<= 4 blocks x 16 slots).
        assert!(
            f.mapping_entries() <= 8 + 64,
            "footprint {} too large",
            f.mapping_entries()
        );
    }

    #[test]
    fn stale_log_entries_do_not_merge() {
        let mut f = HybridFtl::new(small_geom(), 1, 2);
        // Overwrite ONE page repeatedly: old log entries are stale, so a
        // reclaim merges exactly one logical block.
        for _ in 0..33 {
            f.write(5);
        }
        assert!(f.stats().merges <= 2, "merges {}", f.stats().merges);
    }

    #[test]
    fn never_written_pages_cost_nothing() {
        let mut f = HybridFtl::new(small_geom(), 1, 2);
        // One page per logical block, 40 blocks: merges copy only the
        // single live page of each block, not the whole block.
        for i in 0..200 {
            f.write((i % 40) * 16);
        }
        let s = f.stats();
        assert!(s.merges > 0);
        let pages_per_merge = s.merge_writes as f64 / s.merges as f64;
        assert!(
            pages_per_merge < 3.0,
            "merged {pages_per_merge} pages per block despite 1 live page"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_space_lpn() {
        let mut f = HybridFtl::new(small_geom(), 1, 4);
        let too_big = f.logical_pages();
        f.write(too_big);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// Any overwrite stream keeps the invariants: WA >= 1, the
            /// log map never exceeds the log capacity, and the mapping
            /// footprint stays block-granular plus bounded log entries.
            #[test]
            fn invariants_under_random_streams(
                ops in prop::collection::vec(0u64..800, 1..2_000),
                log_blocks in 2usize..6,
            ) {
                let geom = small_geom();
                let mut f = HybridFtl::new(geom, 1, log_blocks);
                for lpn in ops {
                    f.write(lpn % f.logical_pages());
                }
                let s = f.stats();
                prop_assert!(s.write_amplification() >= 1.0);
                let log_capacity = log_blocks as u64 * geom.pages_per_block as u64;
                prop_assert!(
                    (f.log_map.len() as u64) <= log_capacity,
                    "log map {} exceeds capacity {}", f.log_map.len(), log_capacity
                );
                // Footprint <= touched logical blocks + live log entries.
                let max_blocks = f.logical_pages() / geom.pages_per_block as u64;
                prop_assert!((f.block_map.len() as u64) <= max_blocks);
            }

            /// Every live log-map entry points at a real slot that holds
            /// the same lpn (no dangling pointers after reclaims).
            #[test]
            fn log_map_pointers_are_consistent(
                ops in prop::collection::vec(0u64..400, 1..1_500),
            ) {
                let geom = small_geom();
                let mut f = HybridFtl::new(geom, 1, 3);
                for lpn in ops {
                    f.write(lpn % f.logical_pages());
                }
                for (&lpn, &(log, slot)) in &f.log_map {
                    let entry = f.logs[log].entries.get(slot as usize).copied();
                    prop_assert_eq!(entry, Some(lpn), "dangling log pointer");
                }
            }
        }
    }

    #[test]
    fn write_amplification_of_fresh_ftl_is_one() {
        let f = HybridFtl::new(small_geom(), 1, 4);
        assert_eq!(f.stats().write_amplification(), 1.0);
        assert_eq!(f.logical_pages(), (64 - 4) * 16);
    }
}
