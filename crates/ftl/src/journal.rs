//! Journaled FTL metadata: power-loss consistency for the host-side map.
//!
//! Triple-A keeps the entire translation map in the management module's
//! DRAM (§6.6) — volatile memory. A real array must survive losing that
//! DRAM at an arbitrary instant, so the FTL can run with a *metadata
//! journal*: an ordered log of every logical mutation (writes, clone
//! prepare/commit/abort, quarantines, GC block retirements) since the
//! last durable **checkpoint** of the full translation state.
//!
//! The model mirrors a group-committed journal device:
//!
//! * every mutation appends one [`JournalRecord`];
//! * records become durable in batches — once `flush_every` records
//!   accumulate past the flush watermark, the batch is flushed;
//! * once `checkpoint_every` flushed records accumulate, the FTL takes a
//!   fresh checkpoint (a deep copy of the map, allocators, and block
//!   tables) and truncates the journal.
//!
//! On power loss ([`Ftl::power_loss`](crate::Ftl::power_loss)) everything
//! volatile is discarded: un-flushed journal records are lost, and the
//! mapping cache (if any) restarts cold. The mount-time recovery scan
//! restores the checkpoint and *replays* the flushed records in order by
//! re-driving the same FTL operations. Because allocation is fully
//! deterministic, replay reproduces the exact pre-crash metadata; each
//! record carries the physical location the original operation produced,
//! so replay doubles as a self-check — any divergence surfaces as a typed
//! [`RecoveryError`](crate::RecoveryError) instead of silent corruption.
//! Clone-then-unlink migrations caught mid-flight (a prepared clone whose
//! commit/abort never flushed) are rolled back during the scan, exactly
//! like an aborted migration, so `verify_integrity` holds afterwards.

use triplea_pcie::ClusterId;
use triplea_sim::FxHashMap;

use crate::alloc::{BlockKey, FimmAllocator};
use crate::ftl_impl::{BlockUse, FtlStats, WriteClass};
use crate::map::PageMap;
use crate::shape::{LogicalPage, PhysLoc};

/// Durability cadence of the metadata journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalConfig {
    /// Records per group commit: a batch of this many records past the
    /// flush watermark becomes durable at once. Values below 1 are
    /// treated as 1 (flush every record).
    pub flush_every: u32,
    /// Flushed records that trigger a fresh checkpoint (deep copy of the
    /// translation state) and journal truncation. Values below 1 are
    /// treated as 1.
    pub checkpoint_every: u32,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            flush_every: 8,
            checkpoint_every: 4_096,
        }
    }
}

/// Counters describing journal activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct JournalStats {
    /// Records appended over the journal's lifetime.
    pub appended: u64,
    /// Group commits performed.
    pub flushes: u64,
    /// Checkpoints taken (excluding the one implicit in enabling the
    /// journal, including the one closing each recovery scan).
    pub checkpoints: u64,
    /// Records replayed by mount-time recovery scans.
    pub replayed: u64,
    /// Un-flushed records lost to power cuts.
    pub dropped: u64,
    /// Power-loss events survived.
    pub power_losses: u64,
}

/// What a mount-time recovery scan did; returned by
/// [`Ftl::power_loss`](crate::Ftl::power_loss).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Flushed journal records replayed onto the checkpoint.
    pub replayed: u64,
    /// Un-flushed records discarded with the volatile state.
    pub dropped: u64,
    /// Mid-flight migration clones rolled back by the scan (prepared but
    /// never committed or aborted before the cut).
    pub aborted_clones: u64,
}

/// One logical metadata mutation, with the physical outcome the original
/// execution produced (replay re-derives and cross-checks it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum JournalRecord {
    /// A page write: host, migration (one-shot), or GC rewrite.
    Write {
        lpn: LogicalPage,
        cluster: ClusterId,
        fimm: u32,
        class: WriteClass,
        loc: PhysLoc,
    },
    /// First half of clone-then-unlink migration.
    Prepare {
        lpn: LogicalPage,
        cluster: ClusterId,
        fimm: u32,
        loc: PhysLoc,
    },
    /// Second half: unlink the original (or discard a stale clone).
    Commit {
        lpn: LogicalPage,
        new_loc: PhysLoc,
        expected_old: PhysLoc,
        committed: bool,
    },
    /// Mid-flight rollback of a prepared clone.
    Abort {
        lpn: LogicalPage,
        new_loc: PhysLoc,
        ok: bool,
    },
    /// Grown-bad-block quarantine after a program/erase failure.
    Quarantine { loc: PhysLoc },
    /// GC victim finalisation: `ok` recycled the block, `!ok` retired it
    /// after a failed erase.
    GcFinish {
        cluster: ClusterId,
        fimm: u32,
        package: u32,
        die: u32,
        block: u32,
        ok: bool,
    },
}

/// A deep copy of the FTL's durable translation state.
#[derive(Clone, Debug)]
pub(crate) struct Checkpoint {
    pub(crate) map: PageMap,
    pub(crate) allocs: FxHashMap<(u32, u32), FimmAllocator>,
    pub(crate) blocks: FxHashMap<(u32, u32, BlockKey), BlockUse>,
    pub(crate) seal_seq: u64,
    pub(crate) stats: FtlStats,
}

/// The journal proper: last checkpoint + ordered records since.
#[derive(Clone, Debug)]
pub(crate) struct Journal {
    pub(crate) cfg: JournalConfig,
    pub(crate) checkpoint: Checkpoint,
    pub(crate) records: Vec<JournalRecord>,
    /// Records `[..flushed]` are durable; the tail is volatile.
    pub(crate) flushed: usize,
    pub(crate) stats: JournalStats,
}

impl Journal {
    pub(crate) fn new(cfg: JournalConfig, checkpoint: Checkpoint) -> Self {
        Journal {
            cfg,
            checkpoint,
            records: Vec::new(),
            flushed: 0,
            stats: JournalStats::default(),
        }
    }

    /// Appends a record and applies the group-commit flush cadence.
    /// Returns `true` when the flushed prefix has grown large enough
    /// that the owner should take a checkpoint.
    pub(crate) fn append(&mut self, rec: JournalRecord) -> bool {
        self.records.push(rec);
        self.stats.appended += 1;
        let flush_every = self.cfg.flush_every.max(1) as usize;
        if self.records.len() - self.flushed >= flush_every {
            self.flushed = self.records.len();
            self.stats.flushes += 1;
        }
        self.flushed >= self.cfg.checkpoint_every.max(1) as usize
    }

    /// Installs a fresh checkpoint and truncates the journal.
    pub(crate) fn install_checkpoint(&mut self, checkpoint: Checkpoint) {
        self.checkpoint = checkpoint;
        self.records.clear();
        self.flushed = 0;
        self.stats.checkpoints += 1;
    }
}
