//! Host-side flash software for Triple-A (paper §2.3).
//!
//! The paper's key architectural move is *unboxing* the SSD: FIMMs carry
//! bare NAND only, and every piece of flash software — the hardware
//! abstraction layer, address translation, garbage collection,
//! wear-levelling — runs host-side in the autonomic flash-array
//! management module. This crate is that software:
//!
//! * [`ArrayShape`] — the physical dimensions of the array.
//! * [`StripedLayout`] — the default physical data layout: contiguous
//!   logical regions per cluster (so workload skew creates *hot
//!   clusters*), striped across FIMMs/packages/dies inside a cluster for
//!   parallelism.
//! * [`PageMap`] — logical→physical translation: the striped default
//!   plus a sparse override table that data migration and layout
//!   reshaping mutate.
//! * [`Ftl`] — log-structured write allocation per FIMM, invalidation
//!   tracking, greedy garbage collection and wear-aware block selection.
//! * [`hal`] — flash-command composition that exploits die-interleave,
//!   multi-plane and cache modes (§2.2).
//!
//! # Example
//!
//! ```
//! use triplea_ftl::{ArrayShape, Ftl, LogicalPage};
//!
//! let shape = ArrayShape::small_test();
//! let mut ftl = Ftl::new(shape);
//! let lpn = LogicalPage(1234);
//! let before = ftl.locate(lpn);
//! // a write allocates a fresh page in the same FIMM and remaps the LPN
//! let after = ftl.write_alloc(lpn, None).unwrap();
//! assert_eq!(ftl.locate(lpn), after);
//! assert_eq!(before.cluster, after.cluster);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod error;
mod ftl_impl;
pub mod hal;
mod hybrid;
mod journal;
mod layout;
mod map;
mod mapcache;
mod shape;

pub use alloc::FimmAllocator;
pub use error::{FtlError, IntegrityError, RecoveryError};
pub use ftl_impl::{Ftl, FtlStats, GcPolicy, GcWork, RebuildUnit};
pub use journal::{JournalConfig, JournalStats, RecoveryOutcome};
pub use hybrid::{HybridFtl, HybridStats};
pub use layout::StripedLayout;
pub use map::PageMap;
pub use mapcache::{MappingCache, ENTRIES_PER_TRANSLATION_PAGE};
pub use shape::{ArrayShape, LogicalPage, PhysLoc};
