//! Hardware abstraction layer: flash-command composition.
//!
//! Paper §2.3: "To extract the true performance of a bare NAND flash, it
//! is essential to compose flash commands which can take advantage of
//! high degree of internal parallelism." Given the pages of one I/O
//! request that land on a single FIMM, [`compose`] picks the widest
//! applicable command mode:
//!
//! 1. pages on distinct dies → one **die-interleave** command;
//! 2. pages on one die but distinct planes → one **multi-plane** command;
//! 3. sequential pages of one block → one **cache-mode** command;
//! 4. otherwise → a sequence of normal single-page commands.

use triplea_fimm::FimmAddr;
use triplea_flash::{CmdMode, FlashCommand, OpKind};

/// A composed command bound for a specific package (chip-enable target).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComposedCmd {
    /// Package on the FIMM that must be chip-enabled.
    pub package: u32,
    /// The flash command to issue.
    pub cmd: FlashCommand,
}

/// Composes the minimal set of flash commands covering `pages` on one
/// FIMM, exploiting die-interleave, multi-plane and cache modes.
///
/// Pages are grouped per package first (each package is a separate
/// chip-enable target), then the widest mode that the group supports is
/// chosen.
///
/// # Example
///
/// ```
/// use triplea_ftl::hal::compose;
/// use triplea_fimm::FimmAddr;
/// use triplea_flash::{OpKind, PageAddr, CmdMode};
///
/// let pages = [
///     FimmAddr { package: 0, page: PageAddr { die: 0, plane: 0, block: 0, page: 0 } },
///     FimmAddr { package: 0, page: PageAddr { die: 1, plane: 0, block: 0, page: 0 } },
/// ];
/// let cmds = compose(OpKind::Read, &pages);
/// assert_eq!(cmds.len(), 1);
/// assert_eq!(cmds[0].cmd.mode, CmdMode::DieInterleave);
/// ```
pub fn compose(kind: OpKind, pages: &[FimmAddr]) -> Vec<ComposedCmd> {
    let mut out = Vec::new();
    if pages.is_empty() {
        return out;
    }
    // Group by package, preserving order.
    let mut packages: Vec<u32> = pages.iter().map(|p| p.package).collect();
    packages.sort_unstable();
    packages.dedup();

    for pkg in packages {
        let group: Vec<FimmAddr> = pages.iter().copied().filter(|p| p.package == pkg).collect();
        out.extend(compose_package(kind, pkg, &group));
    }
    out
}

fn all_distinct<T: Ord + Copy>(xs: impl Iterator<Item = T>) -> bool {
    let mut v: Vec<T> = xs.collect();
    let n = v.len();
    v.sort_unstable();
    v.dedup();
    v.len() == n
}

fn compose_package(kind: OpKind, package: u32, group: &[FimmAddr]) -> Vec<ComposedCmd> {
    let targets: Vec<_> = group.iter().map(|g| g.page).collect();
    if targets.len() == 1 {
        return vec![ComposedCmd {
            package,
            cmd: FlashCommand::multi(kind, targets, CmdMode::Normal),
        }];
    }
    // Erase never uses cache mode and rarely batches; keep it simple.
    let dies_distinct = all_distinct(targets.iter().map(|t| t.die));
    if dies_distinct {
        return vec![ComposedCmd {
            package,
            cmd: FlashCommand::multi(kind, targets, CmdMode::DieInterleave),
        }];
    }
    let one_die = targets.iter().all(|t| t.die == targets[0].die);
    if one_die && all_distinct(targets.iter().map(|t| t.plane)) {
        return vec![ComposedCmd {
            package,
            cmd: FlashCommand::multi(kind, targets, CmdMode::MultiPlane),
        }];
    }
    let same_block = one_die && targets.iter().all(|t| t.block == targets[0].block);
    let sequential = same_block && targets.windows(2).all(|w| w[1].page == w[0].page + 1);
    if sequential && kind != OpKind::Erase {
        return vec![ComposedCmd {
            package,
            cmd: FlashCommand::multi(kind, targets, CmdMode::Cache),
        }];
    }
    // Fallback: one normal command per page.
    targets
        .into_iter()
        .map(|t| ComposedCmd {
            package,
            cmd: FlashCommand::multi(kind, vec![t], CmdMode::Normal),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use triplea_flash::{FlashGeometry, PageAddr};

    fn fa(pkg: u32, die: u32, block: u32, page: u32) -> FimmAddr {
        FimmAddr {
            package: pkg,
            page: PageAddr {
                die,
                plane: block % 2,
                block,
                page,
            },
        }
    }

    fn assert_valid(cmds: &[ComposedCmd]) {
        let g = FlashGeometry::default();
        for c in cmds {
            c.cmd.validate(&g).expect("composed command must validate");
        }
    }

    #[test]
    fn single_page_is_normal() {
        let cmds = compose(OpKind::Read, &[fa(0, 0, 0, 0)]);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].cmd.mode, CmdMode::Normal);
        assert_valid(&cmds);
    }

    #[test]
    fn cross_die_uses_die_interleave() {
        let cmds = compose(OpKind::Read, &[fa(0, 0, 0, 0), fa(0, 1, 5, 3)]);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].cmd.mode, CmdMode::DieInterleave);
        assert_valid(&cmds);
    }

    #[test]
    fn same_die_distinct_planes_multiplane() {
        let cmds = compose(OpKind::Program, &[fa(0, 0, 0, 0), fa(0, 0, 1, 0)]);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].cmd.mode, CmdMode::MultiPlane);
        assert_valid(&cmds);
    }

    #[test]
    fn sequential_same_block_cache_mode() {
        let cmds = compose(
            OpKind::Read,
            &[fa(0, 0, 2, 4), fa(0, 0, 2, 5), fa(0, 0, 2, 6)],
        );
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].cmd.mode, CmdMode::Cache);
        assert_valid(&cmds);
    }

    #[test]
    fn scattered_same_plane_falls_back_to_singles() {
        let cmds = compose(OpKind::Read, &[fa(0, 0, 0, 9), fa(0, 0, 2, 1)]);
        assert_eq!(cmds.len(), 2);
        assert!(cmds.iter().all(|c| c.cmd.mode == CmdMode::Normal));
        assert_valid(&cmds);
    }

    #[test]
    fn packages_split_commands() {
        let cmds = compose(OpKind::Read, &[fa(0, 0, 0, 0), fa(3, 0, 0, 0)]);
        assert_eq!(cmds.len(), 2);
        let pkgs: Vec<u32> = cmds.iter().map(|c| c.package).collect();
        assert_eq!(pkgs, vec![0, 3]);
        assert_valid(&cmds);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(compose(OpKind::Read, &[]).is_empty());
    }

    #[test]
    fn erase_never_cache_mode() {
        let cmds = compose(OpKind::Erase, &[fa(0, 0, 2, 0), fa(0, 0, 2, 1)]);
        assert!(cmds.iter().all(|c| c.cmd.mode != CmdMode::Cache));
        assert_valid(&cmds);
    }
}
