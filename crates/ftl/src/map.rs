//! Logical→physical translation with sparse overrides.

use std::collections::HashMap;

use crate::layout::StripedLayout;
use crate::shape::{ArrayShape, LogicalPage, PhysLoc};

/// The array-wide page map: a default [`StripedLayout`] plus a sparse
/// override table holding every page that writes, garbage collection,
/// data migration or layout reshaping have relocated.
///
/// Keeping the default implicit is what lets the simulator address 16 TB
/// (4 billion pages) while only materialising the trace's footprint.
#[derive(Clone, Debug)]
pub struct PageMap {
    layout: StripedLayout,
    overrides: HashMap<LogicalPage, PhysLoc>,
    remaps: u64,
}

impl PageMap {
    /// Creates an un-remapped page map over `shape`.
    pub fn new(shape: ArrayShape) -> Self {
        PageMap {
            layout: StripedLayout::new(shape),
            overrides: HashMap::new(),
            remaps: 0,
        }
    }

    /// The underlying default layout.
    pub fn layout(&self) -> &StripedLayout {
        &self.layout
    }

    /// Resolves a logical page: override if present, default otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is outside the address space (propagated from
    /// [`StripedLayout::locate`]).
    pub fn locate(&self, lpn: LogicalPage) -> PhysLoc {
        self.overrides
            .get(&lpn)
            .copied()
            .unwrap_or_else(|| self.layout.locate(lpn))
    }

    /// `true` if the page has been relocated away from its default spot.
    pub fn is_remapped(&self, lpn: LogicalPage) -> bool {
        self.overrides.contains_key(&lpn)
    }

    /// Points `lpn` at a new physical location, returning the previous
    /// one.
    pub fn remap(&mut self, lpn: LogicalPage, to: PhysLoc) -> PhysLoc {
        let old = self.locate(lpn);
        self.remaps += 1;
        if to == self.layout.locate(lpn) {
            // Returning home: drop the override to keep the table sparse.
            self.overrides.remove(&lpn);
        } else {
            self.overrides.insert(lpn, to);
        }
        old
    }

    /// Number of pages currently living away from their default location.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Iterates every relocated page with its current physical location
    /// (arbitrary order). Integrity checks walk this to prove no page was
    /// lost or duplicated by migration, GC, or fault recovery.
    pub fn remapped_entries(&self) -> impl Iterator<Item = (LogicalPage, PhysLoc)> + '_ {
        self.overrides.iter().map(|(&lpn, &loc)| (lpn, loc))
    }

    /// Total remap operations ever performed.
    pub fn total_remaps(&self) -> u64 {
        self.remaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triplea_fimm::FimmAddr;
    use triplea_flash::PageAddr;

    fn map() -> PageMap {
        PageMap::new(ArrayShape::small_test())
    }

    fn some_loc(fimm: u32) -> PhysLoc {
        PhysLoc {
            cluster: Default::default(),
            fimm,
            addr: FimmAddr {
                package: 1,
                page: PageAddr {
                    die: 1,
                    plane: 1,
                    block: 5,
                    page: 9,
                },
            },
        }
    }

    #[test]
    fn unmapped_pages_use_default_layout() {
        let m = map();
        let lpn = LogicalPage(12_345);
        assert_eq!(m.locate(lpn), m.layout().locate(lpn));
        assert!(!m.is_remapped(lpn));
    }

    #[test]
    fn remap_redirects_lookup() {
        let mut m = map();
        let lpn = LogicalPage(7);
        let target = some_loc(1);
        let old = m.remap(lpn, target);
        assert_eq!(old, m.layout().locate(lpn));
        assert_eq!(m.locate(lpn), target);
        assert!(m.is_remapped(lpn));
        assert_eq!(m.override_count(), 1);
    }

    #[test]
    fn remap_home_drops_override() {
        let mut m = map();
        let lpn = LogicalPage(7);
        let home = m.layout().locate(lpn);
        m.remap(lpn, some_loc(1));
        m.remap(lpn, home);
        assert_eq!(m.override_count(), 0, "override table stays sparse");
        assert_eq!(m.locate(lpn), home);
        assert_eq!(m.total_remaps(), 2);
    }

    #[test]
    fn remap_returns_previous_location() {
        let mut m = map();
        let lpn = LogicalPage(99);
        let first = some_loc(0);
        let second = some_loc(1);
        m.remap(lpn, first);
        let old = m.remap(lpn, second);
        assert_eq!(old, first);
        assert_eq!(m.locate(lpn), second);
    }
}
