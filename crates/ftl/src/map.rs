//! Logical→physical translation with sparse overrides.

use triplea_sim::FxHashMap;

use crate::layout::StripedLayout;
use crate::shape::{ArrayShape, LogicalPage, PhysLoc};

/// Pages per segment (2^9 = 512): the granularity at which override
/// storage switches between the shared sparse table and a dense
/// per-segment array.
const SEG_SHIFT: u32 = 9;
const SEG_PAGES: usize = 1 << SEG_SHIFT;

/// Segments per mid-level node (2^9 = 512), so the root directory has
/// `total_pages / 2^18` slots — 16 K entries for the paper's 16 TB
/// array, one pointer each.
const MID_SHIFT: u32 = 9;
const MID_SEGS: usize = 1 << MID_SHIFT;

/// A segment is promoted from the sparse table to a dense array once
/// this many of its pages hold overrides (1/8 occupancy): hot GC/
/// migration regions become branch-cheap array lookups while isolated
/// relocations stay in the hash table.
const PROMOTE_AT: u16 = 64;

/// Dense override storage for one 512-page segment: a presence bitmap
/// plus a location per page (~16 KB).
#[derive(Clone)]
struct Segment {
    bits: [u64; SEG_PAGES / 64],
    locs: Box<[PhysLoc; SEG_PAGES]>,
}

impl Segment {
    fn new() -> Self {
        Segment {
            bits: [0; SEG_PAGES / 64],
            locs: Box::new([PhysLoc::default(); SEG_PAGES]),
        }
    }

    #[inline]
    fn has(&self, off: usize) -> bool {
        self.bits[off / 64] & (1u64 << (off % 64)) != 0
    }

    #[inline]
    fn set(&mut self, off: usize, loc: PhysLoc) -> bool {
        let fresh = !self.has(off);
        self.bits[off / 64] |= 1u64 << (off % 64);
        self.locs[off] = loc;
        fresh
    }

    #[inline]
    fn clear(&mut self, off: usize) -> bool {
        let had = self.has(off);
        self.bits[off / 64] &= !(1u64 << (off % 64));
        had
    }
}

/// Per-segment override state.
#[derive(Clone, Default)]
enum SegState {
    /// No overrides in this segment — the hot unmapped case.
    #[default]
    Empty,
    /// Overrides live in the shared sparse table; the count drives
    /// promotion.
    Sparse(u16),
    /// Overrides live in a dense bitmap + array.
    Dense(Box<Segment>),
}

/// Mid-level directory node: state for 512 consecutive segments.
#[derive(Clone)]
struct Mid {
    segs: [SegState; MID_SEGS],
}

impl Mid {
    fn new() -> Self {
        Mid {
            segs: std::array::from_fn(|_| SegState::Empty),
        }
    }
}

/// The array-wide page map: a default [`StripedLayout`] plus an
/// override structure holding every page that writes, garbage
/// collection, data migration or layout reshaping have relocated.
///
/// Keeping the default implicit is what lets the simulator address 16 TB
/// (4 billion pages) while only materialising the trace's footprint.
///
/// Overrides are stored hybrid per 512-page segment: a radix directory
/// (root → mid → segment) answers the dominant "not remapped" case with
/// two null checks and no hashing at all; sparsely remapped segments
/// share one FxHash table; segments with ≥ `PROMOTE_AT` (64) overrides are
/// promoted to dense bitmap+array storage, so `locate` in GC/migration
/// hot regions is an array index. The observable behaviour is identical
/// to the original flat `HashMap` (including "returning home drops the
/// override").
#[derive(Clone)]
pub struct PageMap {
    layout: StripedLayout,
    /// Root directory; `None` root slots cover 2^18 pages each.
    root: Vec<Option<Box<Mid>>>,
    /// Shared table for sparsely remapped segments.
    sparse: FxHashMap<LogicalPage, PhysLoc>,
    /// Overrides currently live (dense + sparse), maintained
    /// incrementally so [`Self::override_count`] is O(1).
    overrides: usize,
    remaps: u64,
}

#[inline]
fn seg_of(lpn: LogicalPage) -> u64 {
    lpn.0 >> SEG_SHIFT
}

impl PageMap {
    /// Creates an un-remapped page map over `shape`.
    pub fn new(shape: ArrayShape) -> Self {
        let total = shape.total_pages();
        let root_slots = (total >> (SEG_SHIFT + MID_SHIFT)) + 1;
        PageMap {
            layout: StripedLayout::new(shape),
            root: (0..root_slots).map(|_| None).collect(),
            sparse: FxHashMap::default(),
            overrides: 0,
            remaps: 0,
        }
    }

    /// The underlying default layout.
    pub fn layout(&self) -> &StripedLayout {
        &self.layout
    }

    /// The override for `lpn`, if any.
    #[inline]
    fn lookup(&self, lpn: LogicalPage) -> Option<PhysLoc> {
        let seg = seg_of(lpn);
        let mid = self.root.get((seg >> MID_SHIFT) as usize)?.as_ref()?;
        match &mid.segs[(seg as usize) & (MID_SEGS - 1)] {
            SegState::Empty => None,
            SegState::Sparse(_) => self.sparse.get(&lpn).copied(),
            SegState::Dense(d) => {
                let off = (lpn.0 as usize) & (SEG_PAGES - 1);
                d.has(off).then(|| d.locs[off])
            }
        }
    }

    /// Resolves a logical page: override if present, default otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is outside the address space (propagated from
    /// [`StripedLayout::locate`]).
    #[inline]
    pub fn locate(&self, lpn: LogicalPage) -> PhysLoc {
        self.lookup(lpn)
            .unwrap_or_else(|| self.layout.locate(lpn))
    }

    /// `true` if the page has been relocated away from its default spot.
    pub fn is_remapped(&self, lpn: LogicalPage) -> bool {
        self.lookup(lpn).is_some()
    }

    /// Mutable access to the segment state covering `lpn`, materialising
    /// directory nodes on the way down. Free of `self` so callers can
    /// keep borrowing `self.sparse` alongside.
    fn seg_state(root: &mut Vec<Option<Box<Mid>>>, lpn: LogicalPage) -> &mut SegState {
        let seg = seg_of(lpn);
        let slot = (seg >> MID_SHIFT) as usize;
        if slot >= root.len() {
            // Beyond the precomputed space (unreachable for valid lpns,
            // which `layout.locate` has already range-checked).
            root.resize_with(slot + 1, || None);
        }
        let mid = root[slot].get_or_insert_with(|| Box::new(Mid::new()));
        &mut mid.segs[(seg as usize) & (MID_SEGS - 1)]
    }

    /// Promotes a sparse segment to dense storage, pulling its pages out
    /// of the shared table.
    fn promote(sparse: &mut FxHashMap<LogicalPage, PhysLoc>, seg: u64) -> Box<Segment> {
        let mut dense = Box::new(Segment::new());
        let base = seg << SEG_SHIFT;
        for off in 0..SEG_PAGES {
            if let Some(loc) = sparse.remove(&LogicalPage(base + off as u64)) {
                dense.set(off, loc);
            }
        }
        dense
    }

    /// Points `lpn` at a new physical location, returning the previous
    /// one.
    pub fn remap(&mut self, lpn: LogicalPage, to: PhysLoc) -> PhysLoc {
        let old = self.locate(lpn);
        let home = self.layout.locate(lpn);
        self.remaps += 1;
        let off = (lpn.0 as usize) & (SEG_PAGES - 1);
        let seg = seg_of(lpn);
        if to == home {
            // Returning home: drop the override to keep the table sparse.
            let state = Self::seg_state(&mut self.root, lpn);
            let removed = match state {
                SegState::Empty => false,
                SegState::Sparse(n) => {
                    let removed = self.sparse.remove(&lpn).is_some();
                    if removed {
                        *n -= 1;
                        if *n == 0 {
                            *state = SegState::Empty;
                        }
                    }
                    removed
                }
                SegState::Dense(d) => d.clear(off),
            };
            if removed {
                self.overrides -= 1;
            }
        } else {
            let state = Self::seg_state(&mut self.root, lpn);
            let fresh = match state {
                SegState::Empty => {
                    *state = SegState::Sparse(1);
                    self.sparse.insert(lpn, to);
                    true
                }
                SegState::Sparse(n) => {
                    let fresh = self.sparse.insert(lpn, to).is_none();
                    if fresh {
                        *n += 1;
                    }
                    if *n >= PROMOTE_AT {
                        *state = SegState::Dense(Self::promote(&mut self.sparse, seg));
                    }
                    fresh
                }
                SegState::Dense(d) => d.set(off, to),
            };
            if fresh {
                self.overrides += 1;
            }
        }
        old
    }

    /// Number of pages currently living away from their default location.
    pub fn override_count(&self) -> usize {
        self.overrides
    }

    /// Iterates every relocated page with its current physical location
    /// (arbitrary order). Integrity checks walk this to prove no page was
    /// lost or duplicated by migration, GC, or fault recovery.
    pub fn remapped_entries(&self) -> impl Iterator<Item = (LogicalPage, PhysLoc)> + '_ {
        let dense = self
            .root
            .iter()
            .enumerate()
            .filter_map(|(slot, mid)| mid.as_ref().map(|m| (slot, m)))
            .flat_map(|(slot, mid)| {
                mid.segs
                    .iter()
                    .enumerate()
                    .filter_map(move |(i, s)| match s {
                        SegState::Dense(d) => {
                            let seg = ((slot as u64) << MID_SHIFT) | i as u64;
                            Some((seg, d))
                        }
                        _ => None,
                    })
            })
            .flat_map(|(seg, d)| {
                let base = seg << SEG_SHIFT;
                (0..SEG_PAGES)
                    .filter(move |&off| d.has(off))
                    .map(move |off| (LogicalPage(base + off as u64), d.locs[off]))
            });
        self.sparse
            .iter()
            .map(|(&lpn, &loc)| (lpn, loc))
            .chain(dense)
    }

    /// Total remap operations ever performed.
    pub fn total_remaps(&self) -> u64 {
        self.remaps
    }
}

impl std::fmt::Debug for PageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageMap")
            .field("overrides", &self.overrides)
            .field("remaps", &self.remaps)
            .field("sparse_entries", &self.sparse.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triplea_fimm::FimmAddr;
    use triplea_flash::PageAddr;

    fn map() -> PageMap {
        PageMap::new(ArrayShape::small_test())
    }

    fn some_loc(fimm: u32) -> PhysLoc {
        PhysLoc {
            cluster: Default::default(),
            fimm,
            addr: FimmAddr {
                package: 1,
                page: PageAddr {
                    die: 1,
                    plane: 1,
                    block: 5,
                    page: 9,
                },
            },
        }
    }

    #[test]
    fn unmapped_pages_use_default_layout() {
        let m = map();
        let lpn = LogicalPage(12_345);
        assert_eq!(m.locate(lpn), m.layout().locate(lpn));
        assert!(!m.is_remapped(lpn));
    }

    #[test]
    fn remap_redirects_lookup() {
        let mut m = map();
        let lpn = LogicalPage(7);
        let target = some_loc(1);
        let old = m.remap(lpn, target);
        assert_eq!(old, m.layout().locate(lpn));
        assert_eq!(m.locate(lpn), target);
        assert!(m.is_remapped(lpn));
        assert_eq!(m.override_count(), 1);
    }

    #[test]
    fn remap_home_drops_override() {
        let mut m = map();
        let lpn = LogicalPage(7);
        let home = m.layout().locate(lpn);
        m.remap(lpn, some_loc(1));
        m.remap(lpn, home);
        assert_eq!(m.override_count(), 0, "override table stays sparse");
        assert_eq!(m.locate(lpn), home);
        assert_eq!(m.total_remaps(), 2);
    }

    #[test]
    fn remap_returns_previous_location() {
        let mut m = map();
        let lpn = LogicalPage(99);
        let first = some_loc(0);
        let second = some_loc(1);
        m.remap(lpn, first);
        let old = m.remap(lpn, second);
        assert_eq!(old, first);
        assert_eq!(m.locate(lpn), second);
    }

    #[test]
    fn promotion_to_dense_preserves_every_override() {
        let mut m = map();
        // Fill one segment past the promotion threshold, and sprinkle a
        // neighbour segment to prove the shared sparse table survives.
        let n = PROMOTE_AT as u64 + 40;
        for i in 0..n {
            m.remap(LogicalPage(i), some_loc(i as u32));
        }
        let other = LogicalPage(5 * SEG_PAGES as u64 + 3);
        m.remap(other, some_loc(77));
        assert_eq!(m.override_count(), n as usize + 1);
        for i in 0..n {
            assert_eq!(m.locate(LogicalPage(i)), some_loc(i as u32), "lpn {i}");
            assert!(m.is_remapped(LogicalPage(i)));
        }
        assert_eq!(m.locate(other), some_loc(77));
        // Un-touched pages of the promoted segment still resolve home.
        let cold = LogicalPage(n + 100);
        assert_eq!(m.locate(cold), m.layout().locate(cold));
        assert!(!m.is_remapped(cold));
    }

    #[test]
    fn dense_segment_supports_home_return_and_re_remap() {
        let mut m = map();
        for i in 0..(PROMOTE_AT as u64 + 8) {
            m.remap(LogicalPage(i), some_loc(i as u32));
        }
        let lpn = LogicalPage(3);
        let home = m.layout().locate(lpn);
        m.remap(lpn, home);
        assert!(!m.is_remapped(lpn));
        assert_eq!(m.locate(lpn), home);
        assert_eq!(m.override_count(), PROMOTE_AT as usize + 7);
        m.remap(lpn, some_loc(200));
        assert_eq!(m.locate(lpn), some_loc(200));
        assert_eq!(m.override_count(), PROMOTE_AT as usize + 8);
    }

    #[test]
    fn remapped_entries_walks_sparse_and_dense() {
        let mut m = map();
        let n = PROMOTE_AT as u64 + 10; // segment 0 goes dense
        for i in 0..n {
            m.remap(LogicalPage(i), some_loc(i as u32));
        }
        let lone = LogicalPage(7 * SEG_PAGES as u64 + 9); // stays sparse
        m.remap(lone, some_loc(300));
        let mut got: Vec<(u64, u32)> = m
            .remapped_entries()
            .map(|(lpn, loc)| (lpn.0, loc.fimm))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u32)> = (0..n).map(|i| (i, i as u32)).collect();
        want.push((lone.0, 300));
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn matches_flat_hashmap_reference_under_random_remaps() {
        use triplea_sim::SplitMix64;
        let mut m = map();
        let mut reference = std::collections::HashMap::new();
        let mut rng = SplitMix64::new(0xfeed);
        let span = 4 * SEG_PAGES as u64; // several segments, heavy reuse
        for _ in 0..20_000 {
            let lpn = LogicalPage(rng.next_u64() % span);
            let home = m.layout().locate(lpn);
            let to = if rng.next_u64().is_multiple_of(4) {
                home // force the "return home" path regularly
            } else {
                some_loc((rng.next_u64() % 64) as u32)
            };
            let old = m.remap(lpn, to);
            let ref_old = reference.get(&lpn).copied().unwrap_or(home);
            assert_eq!(old, ref_old);
            if to == home {
                reference.remove(&lpn);
            } else {
                reference.insert(lpn, to);
            }
        }
        assert_eq!(m.override_count(), reference.len());
        for i in 0..span {
            let lpn = LogicalPage(i);
            let want = reference
                .get(&lpn)
                .copied()
                .unwrap_or_else(|| m.layout().locate(lpn));
            assert_eq!(m.locate(lpn), want, "lpn {i}");
            assert_eq!(m.is_remapped(lpn), reference.contains_key(&lpn));
        }
        let mut got: Vec<u64> = m.remapped_entries().map(|(l, _)| l.0).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = reference.keys().map(|l| l.0).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
