//! The flash translation layer proper.

use triplea_sim::FxHashMap;

use triplea_pcie::ClusterId;
use triplea_sim::trace::{TraceEventKind, TracePort, TraceScope};

use crate::alloc::{BlockKey, FimmAllocator};
use crate::error::{FtlError, IntegrityError, RecoveryError};
use crate::journal::{Checkpoint, Journal, JournalConfig, JournalRecord, JournalStats, RecoveryOutcome};
use crate::map::PageMap;
use crate::mapcache::MappingCache;
use crate::shape::{ArrayShape, LogicalPage, PhysLoc};

/// Counters describing FTL activity; the §6.5 wear-out analysis compares
/// `migration_writes` against `host_writes`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct FtlStats {
    /// Pages written on behalf of hosts.
    pub host_writes: u64,
    /// Pages written by autonomic data migration / layout reshaping.
    pub migration_writes: u64,
    /// Pages rewritten by garbage collection.
    pub gc_writes: u64,
    /// Physical pages invalidated by overwrite, migration, or GC.
    pub invalidations: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
}

/// GC victim-selection policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum GcPolicy {
    /// Most invalid pages first (the classic greedy cleaner; default).
    #[default]
    Greedy,
    /// Benefit/cost cleaning: weigh reclaimed space against copy cost
    /// and favour older (colder) blocks — `invalid/(valid+1) × age`.
    CostBenefit,
    /// Oldest sealed block first, regardless of occupancy.
    Fifo,
}

#[derive(Clone, Debug, Default)]
pub(crate) struct BlockUse {
    programmed: u32,
    lpns: FxHashMap<u32, LogicalPage>,
    /// Monotonic sequence assigned when the block sealed (filled); used
    /// by age-aware GC policies.
    sealed_seq: u64,
}

impl BlockUse {
    fn invalid(&self) -> u32 {
        self.programmed - self.lpns.len() as u32
    }
}

/// One block of a dead module's rebuild manifest (see
/// [`Ftl::rebuild_manifest`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RebuildUnit {
    /// Package the block lives on.
    pub package: u32,
    /// Die within the package.
    pub die: u32,
    /// Die-local block number.
    pub block: u32,
    /// Length of the programmed prefix to restore: the spare must end up
    /// with pages `0..programmed` programmed, in order.
    pub programmed: u32,
    /// Page offsets (sorted) holding live data — these need
    /// reconstruction reads from sibling modules; the rest of the prefix
    /// is filler.
    pub live: Vec<u32>,
}

/// A unit of garbage-collection work: one victim block and the live pages
/// that must be rewritten before it can be erased.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcWork {
    /// Cluster owning the victim block.
    pub cluster: ClusterId,
    /// FIMM owning the victim block.
    pub fimm: u32,
    /// Victim package.
    pub package: u32,
    /// Victim die.
    pub die: u32,
    /// Victim (die-local) block number.
    pub block: u32,
    /// Logical pages still live in the victim at pick time.
    pub valid: Vec<LogicalPage>,
}

/// The array-wide flash translation layer (paper §2.3): address
/// translation, erase-before-write management, allocation, GC, and
/// host-side wear accounting, all centralised in the management module
/// rather than inside per-SSD firmware (§3.1, §6.7).
#[derive(Clone, Debug)]
pub struct Ftl {
    shape: ArrayShape,
    map: PageMap,
    allocs: FxHashMap<(u32, u32), FimmAllocator>,
    blocks: FxHashMap<(u32, u32, BlockKey), BlockUse>,
    /// Demand-paged translation cache; `None` models the full in-DRAM
    /// map of Triple-A's relocated-DRAM design (§6.6).
    mapcache: Option<MappingCache>,
    gc_policy: GcPolicy,
    seal_seq: u64,
    stats: FtlStats,
    /// Metadata journal; `None` models battery-backed (durable) map DRAM
    /// where power loss cannot lose translations.
    journal: Option<Box<Journal>>,
    /// Set while a recovery scan re-drives journaled operations, so the
    /// replayed mutations are not journaled again.
    replaying: bool,
    /// Event-trace sink; detached (free) unless the embedding simulation
    /// calls [`Ftl::attach_trace`].
    trace: TracePort,
}

/// Why a page is being written; selects the stat bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WriteClass {
    Host,
    Migration,
    Gc,
}

impl Ftl {
    /// Creates an FTL over a pristine array with the full map resident
    /// in DRAM (Triple-A's default; translations are free).
    pub fn new(shape: ArrayShape) -> Self {
        Ftl {
            shape,
            map: PageMap::new(shape),
            allocs: FxHashMap::default(),
            blocks: FxHashMap::default(),
            mapcache: None,
            gc_policy: GcPolicy::Greedy,
            seal_seq: 0,
            stats: FtlStats::default(),
            journal: None,
            replaying: false,
            trace: TracePort::off(),
        }
    }

    /// Connects this FTL to an event recorder; translation-cache misses
    /// and GC victim picks are reported through `port` from then on.
    pub fn attach_trace(&mut self, port: TracePort) {
        self.trace = port;
    }

    /// Selects the GC victim-selection policy (default: greedy).
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.gc_policy = policy;
    }

    /// The GC policy in force.
    pub fn gc_policy(&self) -> GcPolicy {
        self.gc_policy
    }

    /// Creates an FTL whose translations go through a DFTL-style demand
    /// cache of `translation_pages` pages; misses must be charged a
    /// flash read by the caller (see [`Ftl::map_access`]).
    pub fn with_mapping_cache(shape: ArrayShape, translation_pages: usize) -> Self {
        Ftl {
            mapcache: Some(MappingCache::new(translation_pages)),
            ..Ftl::new(shape)
        }
    }

    /// Touches the translation path for `lpn`: returns `true` when the
    /// mapping was resident (or the full map is in DRAM), `false` when
    /// the caller must charge a translation-page flash read.
    pub fn map_access(&mut self, lpn: LogicalPage) -> bool {
        match &mut self.mapcache {
            None => true,
            Some(c) => {
                let hit = c.access(lpn.0);
                if !hit {
                    self.trace.emit(|| TraceEventKind::MapMiss { lpn: lpn.0 });
                }
                hit
            }
        }
    }

    /// The mapping cache, if one is configured.
    pub fn mapping_cache(&self) -> Option<&MappingCache> {
        self.mapcache.as_ref()
    }

    /// The array shape this FTL manages.
    pub fn shape(&self) -> &ArrayShape {
        &self.shape
    }

    /// The logical→physical map (read-only).
    pub fn page_map(&self) -> &PageMap {
        &self.map
    }

    /// Activity counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Resolves a logical page to its current physical location.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range; use [`Ftl::check_lpn`] first for
    /// untrusted input.
    pub fn locate(&self, lpn: LogicalPage) -> PhysLoc {
        self.map.locate(lpn)
    }

    /// Validates a logical page number.
    ///
    /// # Errors
    ///
    /// [`FtlError::AddressOutOfRange`] when `lpn` exceeds the address
    /// space.
    pub fn check_lpn(&self, lpn: LogicalPage) -> Result<(), FtlError> {
        if lpn.0 >= self.shape.total_pages() {
            Err(FtlError::AddressOutOfRange(lpn.0))
        } else {
            Ok(())
        }
    }

    fn allocator(&mut self, cluster: ClusterId, fimm: u32) -> &mut FimmAllocator {
        let key = (self.shape.topology.global_index(cluster), fimm);
        let packages = self.shape.packages_per_fimm;
        let flash = self.shape.flash;
        self.allocs
            .entry(key)
            .or_insert_with(|| FimmAllocator::new(packages, flash))
    }

    fn write_internal(
        &mut self,
        lpn: LogicalPage,
        target: (ClusterId, u32),
        class: WriteClass,
    ) -> Result<PhysLoc, FtlError> {
        self.check_lpn(lpn)?;
        let (cluster, fimm) = target;
        let addr = self
            .allocator(cluster, fimm)
            .alloc()
            .ok_or(FtlError::OutOfSpace { cluster, fimm })?;
        let new_loc = PhysLoc {
            cluster,
            fimm,
            addr,
        };
        let old = self.map.remap(lpn, new_loc);
        self.invalidate(lpn, old);
        let gkey = (
            self.shape.topology.global_index(cluster),
            fimm,
            (addr.package, addr.page.die, addr.page.block),
        );
        let entry = self.blocks.entry(gkey).or_default();
        entry.programmed += 1;
        entry.lpns.insert(addr.page.page, lpn);
        if entry.programmed == self.shape.flash.pages_per_block {
            self.seal_seq += 1;
            entry.sealed_seq = self.seal_seq;
        }
        match class {
            WriteClass::Host => self.stats.host_writes += 1,
            WriteClass::Migration => self.stats.migration_writes += 1,
            WriteClass::Gc => self.stats.gc_writes += 1,
        }
        self.journal_append(JournalRecord::Write {
            lpn,
            cluster,
            fimm,
            class,
            loc: new_loc,
        });
        Ok(new_loc)
    }

    fn invalidate(&mut self, lpn: LogicalPage, old: PhysLoc) {
        let gkey = (
            self.shape.topology.global_index(old.cluster),
            old.fimm,
            (old.addr.package, old.addr.page.die, old.addr.page.block),
        );
        if let Some(b) = self.blocks.get_mut(&gkey) {
            // Only drop the entry when it records *this* LPN: a
            // never-written page's default-layout home can coincide with
            // a physical page the log allocator already handed to a
            // different LPN, and that page must stay live.
            if b.lpns.get(&old.addr.page.page) == Some(&lpn) {
                b.lpns.remove(&old.addr.page.page);
                self.stats.invalidations += 1;
            }
        }
        // If the old location was never physically written (default
        // layout, pre-existing data) there is nothing to invalidate.
    }

    /// Services a host write: allocates a fresh page (log-structured) on
    /// the target FIMM — by default the FIMM currently holding the page —
    /// and remaps the LPN.
    ///
    /// A `Some(target)` override is how Triple-A's storage-contention
    /// manager redirects stalled writes to adjacent FIMMs (§4.2).
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] when the target FIMM needs GC first;
    /// [`FtlError::AddressOutOfRange`] for an invalid LPN.
    pub fn write_alloc(
        &mut self,
        lpn: LogicalPage,
        target: Option<(ClusterId, u32)>,
    ) -> Result<PhysLoc, FtlError> {
        self.check_lpn(lpn)?;
        let t = target.unwrap_or_else(|| {
            let cur = self.map.locate(lpn);
            (cur.cluster, cur.fimm)
        });
        self.write_internal(lpn, t, WriteClass::Host)
    }

    /// Relocates a page as part of autonomic data migration or layout
    /// reshaping, counting the extra write separately for the §6.5
    /// wear-out analysis.
    ///
    /// # Errors
    ///
    /// Same as [`Ftl::write_alloc`].
    pub fn migrate(
        &mut self,
        lpn: LogicalPage,
        to_cluster: ClusterId,
        to_fimm: u32,
    ) -> Result<PhysLoc, FtlError> {
        self.check_lpn(lpn)?;
        self.write_internal(lpn, (to_cluster, to_fimm), WriteClass::Migration)
    }

    /// First half of clone-then-unlink migration (§4.1): allocates and
    /// accounts the clone's destination page *without* remapping the
    /// LPN, so in-flight readers keep using the original copy while the
    /// clone is being programmed.
    ///
    /// Pair with [`Ftl::migrate_commit`] once the program completes.
    ///
    /// # Errors
    ///
    /// Same as [`Ftl::write_alloc`].
    pub fn migrate_prepare(
        &mut self,
        lpn: LogicalPage,
        to_cluster: ClusterId,
        to_fimm: u32,
    ) -> Result<PhysLoc, FtlError> {
        self.check_lpn(lpn)?;
        let addr = self
            .allocator(to_cluster, to_fimm)
            .alloc()
            .ok_or(FtlError::OutOfSpace {
                cluster: to_cluster,
                fimm: to_fimm,
            })?;
        let new_loc = PhysLoc {
            cluster: to_cluster,
            fimm: to_fimm,
            addr,
        };
        let gkey = (
            self.shape.topology.global_index(to_cluster),
            to_fimm,
            (addr.package, addr.page.die, addr.page.block),
        );
        let entry = self.blocks.entry(gkey).or_default();
        entry.programmed += 1;
        entry.lpns.insert(addr.page.page, lpn);
        if entry.programmed == self.shape.flash.pages_per_block {
            self.seal_seq += 1;
            entry.sealed_seq = self.seal_seq;
        }
        self.stats.migration_writes += 1;
        self.journal_append(JournalRecord::Prepare {
            lpn,
            cluster: to_cluster,
            fimm: to_fimm,
            loc: new_loc,
        });
        Ok(new_loc)
    }

    /// Second half of clone-then-unlink migration: atomically remaps the
    /// LPN to the clone and invalidates the original — but only if the
    /// mapping still points at `expected_old` (a host write may have
    /// superseded the data mid-clone). On a stale commit the clone is
    /// invalidated instead and `false` is returned.
    pub fn migrate_commit(
        &mut self,
        lpn: LogicalPage,
        new_loc: PhysLoc,
        expected_old: PhysLoc,
    ) -> bool {
        let committed = if self.map.locate(lpn) != expected_old {
            // The data moved under us; discard the clone.
            self.invalidate(lpn, new_loc);
            false
        } else {
            let old = self.map.remap(lpn, new_loc);
            self.invalidate(lpn, old);
            true
        };
        self.journal_append(JournalRecord::Commit {
            lpn,
            new_loc,
            expected_old,
            committed,
        });
        committed
    }

    /// Rolls back a clone-then-unlink migration whose copy failed
    /// mid-flight: the clone at `new_loc` (from [`Ftl::migrate_prepare`])
    /// is discarded and the LPN keeps whatever mapping it has — readers
    /// never saw the clone, so no data is lost. Returns `false` (and
    /// does nothing) in the pathological case where the clone was already
    /// committed as the live mapping.
    pub fn migrate_abort(&mut self, lpn: LogicalPage, new_loc: PhysLoc) -> bool {
        let ok = if self.map.locate(lpn) == new_loc {
            false
        } else {
            self.invalidate(lpn, new_loc);
            true
        };
        self.journal_append(JournalRecord::Abort { lpn, new_loc, ok });
        ok
    }

    /// Quarantines the block holding `loc` after a hardware program/erase
    /// failure: the allocator will never hand out or recycle it again.
    /// Live pages already in the block stay readable and are moved out by
    /// normal overwrite/GC/migration traffic.
    pub fn quarantine_block(&mut self, loc: PhysLoc) {
        self.allocator(loc.cluster, loc.fimm).quarantine((
            loc.addr.package,
            loc.addr.page.die,
            loc.addr.page.block,
        ));
        self.journal_append(JournalRecord::Quarantine { loc });
    }

    /// End-to-end metadata integrity check; `Err` describes the first
    /// violation found.
    ///
    /// Verifies — with no migration in flight — that (1) no two relocated
    /// LPNs share a physical page, (2) every relocated LPN is recorded
    /// live at exactly its mapped location in the block tables, and (3)
    /// every live block-table entry round-trips through the map. Together
    /// these prove no page was lost or duplicated by writes, GC,
    /// migration, or fault rollback.
    pub fn verify_integrity(&self) -> Result<(), IntegrityError> {
        let mut seen: FxHashMap<PhysLoc, LogicalPage> = FxHashMap::default();
        for (lpn, loc) in self.map.remapped_entries() {
            if !self.shape.contains(loc) {
                return Err(IntegrityError::OutOfRange { lpn, loc });
            }
            if let Some(prev) = seen.insert(loc, lpn) {
                return Err(IntegrityError::DoubleMapped {
                    loc,
                    first: prev,
                    second: lpn,
                });
            }
            let gkey = (
                self.shape.topology.global_index(loc.cluster),
                loc.fimm,
                (loc.addr.package, loc.addr.page.die, loc.addr.page.block),
            );
            let listed = self
                .blocks
                .get(&gkey)
                .and_then(|b| b.lpns.get(&loc.addr.page.page));
            if listed != Some(&lpn) {
                return Err(IntegrityError::LostPage {
                    lpn,
                    loc,
                    listed: listed.copied(),
                });
            }
        }
        for ((c, f, key), b) in &self.blocks {
            for (&pg, &lpn) in &b.lpns {
                let loc = self.map.locate(lpn);
                let here = (
                    self.shape.topology.global_index(loc.cluster),
                    loc.fimm,
                    (loc.addr.package, loc.addr.page.die, loc.addr.page.block),
                );
                if here != (*c, *f, *key) || loc.addr.page.page != pg {
                    return Err(IntegrityError::StaleBlockEntry {
                        lpn,
                        cluster: *c,
                        fimm: *f,
                        package: key.0,
                        die: key.1,
                        block: key.2,
                        page: pg,
                        map_loc: loc,
                    });
                }
            }
        }
        Ok(())
    }

    /// Finalises a GC unit whose erase hard-failed: the victim is dropped
    /// from the block table and quarantined rather than recycled — a
    /// grown bad block permanently costs its capacity. The live pages
    /// were already rewritten before the erase was attempted, so nothing
    /// is lost.
    pub fn gc_finish_failed(&mut self, work: &GcWork) {
        let gc = self.shape.topology.global_index(work.cluster);
        let key = (work.package, work.die, work.block);
        self.blocks.remove(&(gc, work.fimm, key));
        self.allocator(work.cluster, work.fimm).quarantine(key);
        self.journal_append(JournalRecord::GcFinish {
            cluster: work.cluster,
            fimm: work.fimm,
            package: work.package,
            die: work.die,
            block: work.block,
            ok: false,
        });
    }

    /// `true` when the FIMM's free-block pool has shrunk below
    /// `threshold` blocks and GC should run.
    pub fn needs_gc(&mut self, cluster: ClusterId, fimm: u32, threshold: u64) -> bool {
        self.allocator(cluster, fimm).free_blocks() < threshold
    }

    /// Picks the best GC victim on a FIMM according to the configured
    /// [`GcPolicy`], among fully-programmed blocks with reclaimable
    /// space. Returns `None` when nothing is reclaimable.
    pub fn gc_pick(&self, cluster: ClusterId, fimm: u32) -> Option<GcWork> {
        let gc = self.shape.topology.global_index(cluster);
        let pages = self.shape.flash.pages_per_block;
        let score = |b: &BlockUse| -> u64 {
            let invalid = b.invalid() as u64;
            match self.gc_policy {
                GcPolicy::Greedy => invalid,
                GcPolicy::CostBenefit => {
                    // benefit/cost x age: reclaimed space per copied page,
                    // scaled by how long ago the block sealed (older
                    // blocks are colder and safer to clean).
                    let valid = b.lpns.len() as u64;
                    let age = self.seal_seq.saturating_sub(b.sealed_seq) + 1;
                    invalid * 1_000 / (valid + 1) * age
                }
                GcPolicy::Fifo => u64::MAX - b.sealed_seq,
            }
        };
        self.blocks
            .iter()
            .filter(|((c, f, _), b)| *c == gc && *f == fimm && b.programmed == pages)
            .filter(|(_, b)| b.invalid() > 0)
            // Tie-break on the block key: HashMap iteration order is not
            // deterministic across processes, and replay determinism is a
            // contract of the whole simulator.
            .max_by_key(|((_, _, key), b)| (score(b), std::cmp::Reverse(*key)))
            .map(|((_, _, key), b)| {
                let mut live: Vec<(u32, LogicalPage)> =
                    b.lpns.iter().map(|(&pg, &l)| (pg, l)).collect();
                live.sort_unstable_by_key(|&(pg, _)| pg);
                let work = GcWork {
                    cluster,
                    fimm,
                    package: key.0,
                    die: key.1,
                    block: key.2,
                    valid: live.into_iter().map(|(_, l)| l).collect(),
                };
                self.trace
                    .with_scope(TraceScope::fimm(gc, fimm))
                    .emit(|| TraceEventKind::GcRun {
                        valid_pages: work.valid.len() as u32,
                    });
                work
            })
    }

    /// Computes the device-restoration manifest for one FIMM: every
    /// block the FTL believes holds programmed pages, with the length of
    /// its programmed prefix and the page offsets that are still live.
    ///
    /// A hot-spare rebuild replays exactly this onto the replacement
    /// module. The full prefix — stale pages included — must be
    /// re-programmed because NAND programs are strictly in-order within
    /// a block and the allocator will hand out page `programmed` next;
    /// only the live offsets need reconstruction reads from siblings.
    /// Units are sorted by `(package, die, block)` for deterministic
    /// replay.
    pub fn rebuild_manifest(&self, cluster: ClusterId, fimm: u32) -> Vec<RebuildUnit> {
        let g = self.shape.topology.global_index(cluster);
        let mut units: Vec<RebuildUnit> = self
            .blocks
            .iter()
            .filter(|((c, f, _), b)| *c == g && *f == fimm && b.programmed > 0)
            .map(|((_, _, key), b)| {
                let mut live: Vec<u32> = b.lpns.keys().copied().collect();
                live.sort_unstable();
                RebuildUnit {
                    package: key.0,
                    die: key.1,
                    block: key.2,
                    programmed: b.programmed,
                    live,
                }
            })
            .collect();
        units.sort_unstable_by_key(|u| (u.package, u.die, u.block));
        units
    }

    /// Rewrites one live page out of a GC victim. Returns `Ok(None)` if
    /// the page has moved since the victim was picked (stale work).
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] if the FIMM cannot absorb the rewrite.
    pub fn gc_rewrite(
        &mut self,
        lpn: LogicalPage,
        work: &GcWork,
    ) -> Result<Option<PhysLoc>, FtlError> {
        let cur = self.map.locate(lpn);
        let still_in_victim = cur.cluster == work.cluster
            && cur.fimm == work.fimm
            && cur.addr.package == work.package
            && cur.addr.page.die == work.die
            && cur.addr.page.block == work.block;
        if !still_in_victim {
            return Ok(None);
        }
        self.write_internal(lpn, (work.cluster, work.fimm), WriteClass::Gc)
            .map(Some)
    }

    /// Finalises a GC unit after its live pages were rewritten: recycles
    /// the erased block into the allocator's free pool.
    pub fn gc_finish(&mut self, work: &GcWork) {
        let gc = self.shape.topology.global_index(work.cluster);
        let key = (work.package, work.die, work.block);
        self.blocks.remove(&(gc, work.fimm, key));
        self.allocator(work.cluster, work.fimm).recycle(key);
        self.stats.gc_erases += 1;
        self.journal_append(JournalRecord::GcFinish {
            cluster: work.cluster,
            fimm: work.fimm,
            package: work.package,
            die: work.die,
            block: work.block,
            ok: true,
        });
    }

    /// Host-side total erase count performed via GC on one FIMM.
    pub fn fimm_free_blocks(&mut self, cluster: ClusterId, fimm: u32) -> u64 {
        self.allocator(cluster, fimm).free_blocks()
    }

    /// A deep copy of the durable translation state, used as a journal
    /// checkpoint.
    fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            map: self.map.clone(),
            allocs: self.allocs.clone(),
            blocks: self.blocks.clone(),
            seal_seq: self.seal_seq,
            stats: self.stats,
        }
    }

    /// Turns on metadata journaling with the given durability cadence,
    /// taking an initial checkpoint of the current state. Without a
    /// journal, [`Ftl::power_loss`] treats the whole map as durable
    /// (battery-backed DRAM).
    pub fn enable_journal(&mut self, cfg: JournalConfig) {
        self.journal = Some(Box::new(Journal::new(cfg, self.snapshot())));
    }

    /// Journal activity counters; `None` when journaling is off.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.journal.as_ref().map(|j| j.stats)
    }

    /// Journal records not yet made durable by a group commit — exactly
    /// what the next power cut would lose.
    pub fn journal_unflushed(&self) -> u64 {
        self.journal
            .as_ref()
            .map_or(0, |j| (j.records.len() - j.flushed) as u64)
    }

    /// Appends a mutation record (no-op when journaling is off or while
    /// a recovery scan is re-driving journaled operations), flushing and
    /// checkpointing per the configured cadence.
    fn journal_append(&mut self, rec: JournalRecord) {
        if self.replaying {
            return;
        }
        let needs_checkpoint = match self.journal.as_mut() {
            None => return,
            Some(j) => j.append(rec),
        };
        if needs_checkpoint {
            let snap = self.snapshot();
            if let Some(j) = self.journal.as_mut() {
                j.install_checkpoint(snap);
                let records = j.stats.appended;
                self.trace
                    .emit(|| TraceEventKind::JournalCheckpoint { records });
            }
        }
    }

    /// Simulates losing power: all volatile metadata is discarded and
    /// the mount-time recovery scan runs.
    ///
    /// The mapping cache (if any) restarts cold. With journaling on, the
    /// translation state rewinds to the last checkpoint, flushed journal
    /// records are replayed in order (each cross-checked against the
    /// physical location the original execution recorded), un-flushed
    /// records are dropped, and migration clones caught mid-flight are
    /// rolled back; the scan closes with a fresh checkpoint. Without a
    /// journal the map is modelled as durable and nothing is lost.
    ///
    /// # Errors
    ///
    /// [`RecoveryError`] when replay cannot reproduce the journaled
    /// outcome — the metadata has diverged and must not be trusted.
    pub fn power_loss(&mut self) -> Result<RecoveryOutcome, RecoveryError> {
        if let Some(c) = &self.mapcache {
            // The translation cache lives in volatile DRAM.
            self.mapcache = Some(MappingCache::new(c.capacity()));
        }
        let Some(mut j) = self.journal.take() else {
            return Ok(RecoveryOutcome::default());
        };
        let dropped = (j.records.len() - j.flushed) as u64;
        j.records.truncate(j.flushed);

        // Rewind to the checkpoint.
        self.map = j.checkpoint.map.clone();
        self.allocs = j.checkpoint.allocs.clone();
        self.blocks = j.checkpoint.blocks.clone();
        self.seal_seq = j.checkpoint.seal_seq;
        self.stats = j.checkpoint.stats;

        // Replay the durable journal, tracking clones still in flight.
        self.replaying = true;
        let mut outstanding: Vec<(LogicalPage, PhysLoc)> = Vec::new();
        let result = self.replay(&j.records, &mut outstanding);
        let replayed = match result {
            Ok(n) => n,
            Err(e) => {
                self.replaying = false;
                self.journal = Some(j);
                return Err(e);
            }
        };

        // A prepared clone whose commit/abort never became durable is
        // rolled back, exactly like an aborted migration.
        let aborted_clones = outstanding.len() as u64;
        for (lpn, loc) in outstanding {
            self.migrate_abort(lpn, loc);
        }
        self.replaying = false;

        // The recovery scan ends with a durable checkpoint.
        j.install_checkpoint(self.snapshot());
        j.stats.replayed += replayed;
        j.stats.dropped += dropped;
        j.stats.power_losses += 1;
        self.journal = Some(j);
        self.trace
            .emit(|| TraceEventKind::JournalReplay { replayed, dropped });
        Ok(RecoveryOutcome {
            replayed,
            dropped,
            aborted_clones,
        })
    }

    /// Re-drives `records` in order against the restored checkpoint,
    /// cross-checking each outcome. Deterministic allocation guarantees
    /// replay lands every page exactly where the original run did.
    fn replay(
        &mut self,
        records: &[JournalRecord],
        outstanding: &mut Vec<(LogicalPage, PhysLoc)>,
    ) -> Result<u64, RecoveryError> {
        for (i, rec) in records.iter().enumerate() {
            let index = i as u64;
            match *rec {
                JournalRecord::Write {
                    lpn,
                    cluster,
                    fimm,
                    class,
                    loc,
                } => {
                    let got = self
                        .write_internal(lpn, (cluster, fimm), class)
                        .map_err(|error| RecoveryError::Replay { index, error })?;
                    if got != loc {
                        return Err(RecoveryError::Diverged { index, lpn });
                    }
                }
                JournalRecord::Prepare {
                    lpn,
                    cluster,
                    fimm,
                    loc,
                } => {
                    let got = self
                        .migrate_prepare(lpn, cluster, fimm)
                        .map_err(|error| RecoveryError::Replay { index, error })?;
                    if got != loc {
                        return Err(RecoveryError::Diverged { index, lpn });
                    }
                    outstanding.push((lpn, loc));
                }
                JournalRecord::Commit {
                    lpn,
                    new_loc,
                    expected_old,
                    committed,
                } => {
                    if self.migrate_commit(lpn, new_loc, expected_old) != committed {
                        return Err(RecoveryError::Diverged { index, lpn });
                    }
                    outstanding.retain(|&(l, loc)| (l, loc) != (lpn, new_loc));
                }
                JournalRecord::Abort { lpn, new_loc, ok } => {
                    if self.migrate_abort(lpn, new_loc) != ok {
                        return Err(RecoveryError::Diverged { index, lpn });
                    }
                    outstanding.retain(|&(l, loc)| (l, loc) != (lpn, new_loc));
                }
                JournalRecord::Quarantine { loc } => self.quarantine_block(loc),
                JournalRecord::GcFinish {
                    cluster,
                    fimm,
                    package,
                    die,
                    block,
                    ok,
                } => {
                    let work = GcWork {
                        cluster,
                        fimm,
                        package,
                        die,
                        block,
                        valid: Vec::new(),
                    };
                    if ok {
                        self.gc_finish(&work);
                    } else {
                        self.gc_finish_failed(&work);
                    }
                }
            }
        }
        Ok(records.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> Ftl {
        Ftl::new(ArrayShape::small_test())
    }

    #[test]
    fn write_stays_on_home_fimm_by_default() {
        let mut f = ftl();
        let lpn = LogicalPage(4242);
        let home = f.locate(lpn);
        let new = f.write_alloc(lpn, None).unwrap();
        assert_eq!(new.cluster, home.cluster);
        assert_eq!(new.fimm, home.fimm);
        assert_eq!(f.locate(lpn), new);
        assert_eq!(f.stats().host_writes, 1);
    }

    #[test]
    fn redirected_write_lands_on_target() {
        let mut f = ftl();
        let lpn = LogicalPage(10);
        let home = f.locate(lpn);
        let other_fimm = (home.fimm + 1) % f.shape().fimms_per_cluster;
        let new = f
            .write_alloc(lpn, Some((home.cluster, other_fimm)))
            .unwrap();
        assert_eq!(new.fimm, other_fimm);
        assert_eq!(f.locate(lpn), new);
    }

    #[test]
    fn overwrite_invalidates_previous_page() {
        let mut f = ftl();
        let lpn = LogicalPage(77);
        f.write_alloc(lpn, None).unwrap();
        f.write_alloc(lpn, None).unwrap();
        assert_eq!(f.stats().invalidations, 1);
        assert_eq!(f.stats().host_writes, 2);
    }

    #[test]
    fn migrate_counts_separately() {
        let mut f = ftl();
        let lpn = LogicalPage(5);
        let home = f.locate(lpn);
        let target = ClusterId {
            switch: home.cluster.switch,
            index: (home.cluster.index + 1) % f.shape().topology.clusters_per_switch,
        };
        let new = f.migrate(lpn, target, 0).unwrap();
        assert_eq!(new.cluster, target);
        assert_eq!(f.stats().migration_writes, 1);
        assert_eq!(f.stats().host_writes, 0);
        assert!(f.page_map().is_remapped(lpn));
    }

    #[test]
    fn out_of_range_lpn_rejected() {
        let mut f = ftl();
        let bad = LogicalPage(f.shape().total_pages());
        assert_eq!(
            f.write_alloc(bad, None),
            Err(FtlError::AddressOutOfRange(bad.0))
        );
        assert!(f.check_lpn(LogicalPage(0)).is_ok());
    }

    #[test]
    fn gc_cycle_reclaims_space() {
        let mut f = ftl();
        let home = f.locate(LogicalPage(0));
        // Overwrite one LPN until every write stream has filled (and
        // closed) at least one block full of mostly-invalid pages.
        let g = f.shape().flash;
        let streams = (f.shape().packages_per_fimm * g.dies * g.planes) as u64;
        for _ in 0..(g.pages_per_block as u64 * streams) {
            f.write_alloc(LogicalPage(0), None).unwrap();
        }
        // There must now exist a fully-programmed block with invalid pages
        // on the home fimm of lpn 0.
        let work = f.gc_pick(home.cluster, home.fimm);
        if let Some(work) = work {
            let before = f.fimm_free_blocks(work.cluster, work.fimm);
            let valid = work.valid.clone();
            for lpn in valid {
                f.gc_rewrite(lpn, &work).unwrap();
            }
            f.gc_finish(&work);
            assert_eq!(f.stats().gc_erases, 1);
            assert!(f.fimm_free_blocks(work.cluster, work.fimm) > before);
        } else {
            panic!("expected a GC victim after heavy overwrites");
        }
    }

    #[test]
    fn gc_rewrite_skips_stale_pages() {
        let mut f = ftl();
        let lpn = LogicalPage(0);
        let home = f.locate(lpn);
        let work = GcWork {
            cluster: home.cluster,
            fimm: home.fimm,
            package: 99, // not where the page lives
            die: 0,
            block: 0,
            valid: vec![lpn],
        };
        assert_eq!(f.gc_rewrite(lpn, &work), Ok(None));
    }

    #[test]
    fn migrate_prepare_keeps_old_mapping_until_commit() {
        let mut f = ftl();
        let lpn = LogicalPage(11);
        let old = f.locate(lpn);
        let target = ClusterId {
            switch: old.cluster.switch,
            index: (old.cluster.index + 1) % f.shape().topology.clusters_per_switch,
        };
        let clone = f.migrate_prepare(lpn, target, 1).unwrap();
        assert_eq!(f.locate(lpn), old, "readers still see the original");
        assert_eq!(f.stats().migration_writes, 1);
        assert!(f.migrate_commit(lpn, clone, old));
        assert_eq!(f.locate(lpn), clone, "commit unlinks the original");
    }

    #[test]
    fn stale_migrate_commit_discards_clone() {
        let mut f = ftl();
        let lpn = LogicalPage(3);
        let old = f.locate(lpn);
        let target = ClusterId {
            switch: old.cluster.switch,
            index: (old.cluster.index + 1) % f.shape().topology.clusters_per_switch,
        };
        let clone = f.migrate_prepare(lpn, target, 0).unwrap();
        // A host write supersedes the data mid-clone.
        let newer = f.write_alloc(lpn, None).unwrap();
        assert!(!f.migrate_commit(lpn, clone, old));
        assert_eq!(f.locate(lpn), newer, "newer data wins");
        // The discarded clone counts as an invalidation.
        assert!(f.stats().invalidations >= 1);
    }

    #[test]
    fn migrate_abort_discards_clone_and_keeps_original() {
        let mut f = ftl();
        let lpn = LogicalPage(11);
        let old = f.locate(lpn);
        let target = ClusterId {
            switch: old.cluster.switch,
            index: (old.cluster.index + 1) % f.shape().topology.clusters_per_switch,
        };
        let clone = f.migrate_prepare(lpn, target, 1).unwrap();
        assert!(f.migrate_abort(lpn, clone), "abort succeeds mid-flight");
        assert_eq!(f.locate(lpn), old, "original mapping survives");
        assert_eq!(f.stats().invalidations, 1, "clone page invalidated");
        f.verify_integrity().expect("abort leaves metadata consistent");
        // A later write works normally.
        f.write_alloc(lpn, None).unwrap();
        f.verify_integrity().unwrap();
    }

    #[test]
    fn migrate_abort_refuses_after_commit() {
        let mut f = ftl();
        let lpn = LogicalPage(8);
        let old = f.locate(lpn);
        let target = ClusterId {
            switch: old.cluster.switch,
            index: (old.cluster.index + 1) % f.shape().topology.clusters_per_switch,
        };
        let clone = f.migrate_prepare(lpn, target, 0).unwrap();
        assert!(f.migrate_commit(lpn, clone, old));
        assert!(!f.migrate_abort(lpn, clone), "committed clone is the data");
        assert_eq!(f.locate(lpn), clone);
        f.verify_integrity().unwrap();
    }

    #[test]
    fn verify_integrity_detects_lost_page() {
        let mut f = ftl();
        let lpn = LogicalPage(21);
        let loc = f.write_alloc(lpn, None).unwrap();
        f.verify_integrity().unwrap();
        // Simulate a buggy rollback that invalidates the live mapping.
        f.invalidate(lpn, loc);
        let err = f.verify_integrity().unwrap_err();
        assert!(
            matches!(err, IntegrityError::LostPage { lpn: l, .. } if l == lpn),
            "{err}"
        );
        assert!(err.to_string().contains("block table records"), "{err}");
    }

    #[test]
    fn gc_finish_failed_quarantines_instead_of_recycling() {
        let mut f = ftl();
        let home = f.locate(LogicalPage(0));
        let g = f.shape().flash;
        let streams = (f.shape().packages_per_fimm * g.dies * g.planes) as u64;
        for _ in 0..(g.pages_per_block as u64 * streams) {
            f.write_alloc(LogicalPage(0), None).unwrap();
        }
        let work = f.gc_pick(home.cluster, home.fimm).expect("victim exists");
        for lpn in work.valid.clone() {
            f.gc_rewrite(lpn, &work).unwrap();
        }
        let before = f.fimm_free_blocks(work.cluster, work.fimm);
        f.gc_finish_failed(&work);
        assert_eq!(
            f.fimm_free_blocks(work.cluster, work.fimm),
            before,
            "failed erase returns nothing to the pool"
        );
        assert_eq!(f.stats().gc_erases, 0);
        let key = (
            f.shape().topology.global_index(work.cluster),
            work.fimm,
        );
        assert_eq!(f.allocs[&key].retired_blocks(), 1);
        f.verify_integrity().unwrap();
        // The quarantined block is never handed out again: drain the
        // FIMM and check the bad block's pages never reappear.
        let bad = (work.package, work.die, work.block);
        while let Ok(loc) = f.write_alloc(LogicalPage(1), Some((work.cluster, work.fimm))) {
            assert_ne!(
                (loc.addr.package, loc.addr.page.die, loc.addr.page.block),
                bad,
                "quarantined block re-issued"
            );
        }
    }

    #[test]
    fn full_dram_map_never_misses() {
        let mut f = ftl();
        for i in 0..100 {
            assert!(f.map_access(LogicalPage(i * 9_999)));
        }
        assert!(f.mapping_cache().is_none());
    }

    #[test]
    fn mapping_cache_misses_on_cold_pages() {
        let mut f = Ftl::with_mapping_cache(ArrayShape::small_test(), 2);
        assert!(!f.map_access(LogicalPage(0)), "cold miss");
        assert!(f.map_access(LogicalPage(1)), "same translation page");
        let c = f.mapping_cache().unwrap();
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn gc_policies_pick_sensible_victims() {
        // Build two sealed blocks: one old with few invalid pages, one
        // fresh with many. Greedy prefers the fresh/most-invalid block;
        // FIFO prefers the oldest.
        let mut f = ftl();
        let g = f.shape().flash;
        let streams = (f.shape().packages_per_fimm * g.dies * g.planes) as u64;
        // Round 1: seal one block per stream by writing a working set.
        for i in 0..(g.pages_per_block as u64 * streams) {
            f.write_alloc(LogicalPage(i * 2 % 512), None).unwrap();
        }
        let home = f.locate(LogicalPage(0));
        let greedy = {
            f.set_gc_policy(GcPolicy::Greedy);
            f.gc_pick(home.cluster, home.fimm).expect("victim exists")
        };
        f.set_gc_policy(GcPolicy::Fifo);
        let fifo = f.gc_pick(home.cluster, home.fimm).expect("victim exists");
        f.set_gc_policy(GcPolicy::CostBenefit);
        let cb = f.gc_pick(home.cluster, home.fimm).expect("victim exists");
        // All valid picks; FIFO picks the earliest-sealed block.
        for w in [&greedy, &fifo, &cb] {
            assert_eq!(w.cluster, home.cluster);
        }
        assert_eq!(f.gc_policy(), GcPolicy::CostBenefit);
    }

    #[test]
    fn needs_gc_threshold() {
        let mut f = ftl();
        let c = ClusterId::default();
        assert!(!f.needs_gc(c, 0, 1));
        let total = f.fimm_free_blocks(c, 0);
        assert!(f.needs_gc(c, 0, total + 1));
    }

    use crate::journal::JournalConfig;

    /// flush_every=1 makes every record durable immediately.
    fn eager_journal() -> JournalConfig {
        JournalConfig {
            flush_every: 1,
            checkpoint_every: 1_000_000,
        }
    }

    #[test]
    fn power_loss_without_journal_is_durable() {
        let mut f = ftl();
        let lpn = LogicalPage(9);
        let loc = f.write_alloc(lpn, None).unwrap();
        let out = f.power_loss().unwrap();
        assert_eq!(out, crate::journal::RecoveryOutcome::default());
        assert_eq!(f.locate(lpn), loc, "battery-backed map survives");
        f.verify_integrity().unwrap();
    }

    #[test]
    fn journal_replay_reconstructs_flushed_state() {
        let mut f = ftl();
        f.enable_journal(eager_journal());
        let lpns: Vec<LogicalPage> = (0..40).map(|i| LogicalPage(i * 13)).collect();
        for &l in &lpns {
            f.write_alloc(l, None).unwrap();
        }
        // A committed clone-then-unlink migration, too.
        let mover = lpns[3];
        let old = f.locate(mover);
        let dst = ClusterId {
            switch: old.cluster.switch,
            index: (old.cluster.index + 1) % f.shape().topology.clusters_per_switch,
        };
        let clone = f.migrate_prepare(mover, dst, 0).unwrap();
        assert!(f.migrate_commit(mover, clone, old));
        let before: Vec<PhysLoc> = lpns.iter().map(|&l| f.locate(l)).collect();
        let stats_before = f.stats();

        let out = f.power_loss().unwrap();
        assert!(out.replayed > 0);
        assert_eq!(out.dropped, 0, "eager flush loses nothing");
        assert_eq!(out.aborted_clones, 0);
        for (l, want) in lpns.iter().zip(&before) {
            assert_eq!(f.locate(*l), *want, "lpn {} survives the cut", l.0);
        }
        assert_eq!(f.stats(), stats_before);
        f.verify_integrity().unwrap();
        let js = f.journal_stats().unwrap();
        assert_eq!(js.power_losses, 1);
        assert_eq!(js.replayed, out.replayed);
    }

    #[test]
    fn power_loss_drops_unflushed_tail() {
        let mut f = ftl();
        f.enable_journal(JournalConfig {
            flush_every: 1_000_000, // nothing ever group-commits
            checkpoint_every: 1_000_000,
        });
        let lpn = LogicalPage(123);
        let home = f.locate(lpn);
        f.write_alloc(lpn, None).unwrap();
        assert_eq!(f.journal_unflushed(), 1);
        let out = f.power_loss().unwrap();
        assert_eq!(out.dropped, 1);
        assert_eq!(out.replayed, 0);
        assert_eq!(f.locate(lpn), home, "un-flushed write rewound");
        assert_eq!(f.stats().host_writes, 0, "stats rewound with the state");
        f.verify_integrity().unwrap();
    }

    #[test]
    fn dangling_prepared_clone_rolled_back_on_recovery() {
        let mut f = ftl();
        f.enable_journal(eager_journal());
        let lpn = LogicalPage(5);
        let old = f.locate(lpn);
        let dst = ClusterId {
            switch: old.cluster.switch,
            index: (old.cluster.index + 1) % f.shape().topology.clusters_per_switch,
        };
        let clone = f.migrate_prepare(lpn, dst, 0).unwrap();
        // Power cut lands between prepare and commit.
        let out = f.power_loss().unwrap();
        assert_eq!(out.aborted_clones, 1);
        assert_eq!(f.locate(lpn), old, "readers never saw the clone");
        assert_ne!(f.locate(lpn), clone);
        f.verify_integrity()
            .expect("recovery scan aborts mid-flight clones");
    }

    #[test]
    fn checkpoint_cadence_truncates_journal() {
        let mut f = ftl();
        f.enable_journal(JournalConfig {
            flush_every: 1,
            checkpoint_every: 8,
        });
        for i in 0..50 {
            f.write_alloc(LogicalPage(i), None).unwrap();
        }
        let js = f.journal_stats().unwrap();
        assert!(js.checkpoints >= 5, "checkpoints: {}", js.checkpoints);
        let before: Vec<PhysLoc> = (0..50).map(|i| f.locate(LogicalPage(i))).collect();
        let out = f.power_loss().unwrap();
        assert!(
            out.replayed < 50,
            "checkpoints bound the replay: {}",
            out.replayed
        );
        for (i, want) in before.iter().enumerate() {
            assert_eq!(f.locate(LogicalPage(i as u64)), *want);
        }
        f.verify_integrity().unwrap();
    }

    #[test]
    fn recovery_survives_gc_and_quarantine_records() {
        let mut f = ftl();
        f.enable_journal(eager_journal());
        let home = f.locate(LogicalPage(0));
        let g = f.shape().flash;
        let streams = (f.shape().packages_per_fimm * g.dies * g.planes) as u64;
        for _ in 0..(g.pages_per_block as u64 * streams) {
            f.write_alloc(LogicalPage(0), None).unwrap();
        }
        let work = f.gc_pick(home.cluster, home.fimm).expect("victim exists");
        for lpn in work.valid.clone() {
            f.gc_rewrite(lpn, &work).unwrap();
        }
        f.gc_finish(&work);
        f.quarantine_block(f.locate(LogicalPage(0)));
        let want = f.locate(LogicalPage(0));
        let erases = f.stats().gc_erases;
        f.power_loss().unwrap();
        assert_eq!(f.locate(LogicalPage(0)), want);
        assert_eq!(f.stats().gc_erases, erases);
        f.verify_integrity().unwrap();
    }
}
