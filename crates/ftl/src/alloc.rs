//! Log-structured page allocation within one FIMM.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use triplea_sim::FxHashMap;

use triplea_fimm::FimmAddr;
use triplea_flash::{FlashGeometry, PageAddr};

/// Key of a physical block within a FIMM: (package, die, block).
pub(crate) type BlockKey = (u32, u32, u32);

#[derive(Clone, Debug)]
struct Stream {
    package: u32,
    die: u32,
    plane: u32,
    /// Currently open block and its next free page.
    active: Option<(u32, u32)>,
    /// Next never-yet-used block (plane-local index).
    fresh_next: u32,
    /// Erased blocks ready for reuse, min-heap by erase count so the
    /// least-worn block is picked first (wear-levelling).
    recycled: BinaryHeap<Reverse<(u32, u32)>>,
}

/// Allocates fresh physical pages inside one FIMM, log-structured per
/// (package, die, plane) write stream with round-robin striping across
/// streams.
///
/// Pages within a block are handed out strictly in order, which is the
/// NAND program-order constraint the flash package enforces; blocks are
/// chosen least-worn-first among erased blocks (host-side wear
/// levelling, paper §6.7).
#[derive(Clone, Debug)]
pub struct FimmAllocator {
    geom: FlashGeometry,
    streams: Vec<Stream>,
    rr: usize,
    erase_counts: FxHashMap<BlockKey, u32>,
    allocated: u64,
    retired: u64,
}

impl FimmAllocator {
    /// Creates an allocator for a FIMM of `packages` packages of `geom`.
    pub fn new(packages: u32, geom: FlashGeometry) -> Self {
        let mut streams = Vec::new();
        for package in 0..packages {
            for die in 0..geom.dies {
                for plane in 0..geom.planes {
                    streams.push(Stream {
                        package,
                        die,
                        plane,
                        active: None,
                        fresh_next: 0,
                        recycled: BinaryHeap::new(),
                    });
                }
            }
        }
        FimmAllocator {
            geom,
            streams,
            rr: 0,
            erase_counts: FxHashMap::default(),
            allocated: 0,
            retired: 0,
        }
    }

    fn open_block(geom: &FlashGeometry, s: &mut Stream) -> Option<u32> {
        if let Some(Reverse((_, blk))) = s.recycled.pop() {
            return Some(blk);
        }
        if s.fresh_next < geom.blocks_per_plane {
            let b = s.fresh_next;
            s.fresh_next += 1;
            // plane-local index -> die-local block number with the right
            // parity for this plane
            return Some(b * geom.planes + s.plane);
        }
        None
    }

    fn try_alloc_stream(geom: &FlashGeometry, s: &mut Stream) -> Option<FimmAddr> {
        if s.active.is_none() {
            s.active = Self::open_block(geom, s).map(|b| (b, 0));
        }
        let (block, next) = s.active?;
        let addr = FimmAddr {
            package: s.package,
            page: PageAddr {
                die: s.die,
                plane: s.plane,
                block,
                page: next,
            },
        };
        if next + 1 >= geom.pages_per_block {
            s.active = None;
        } else {
            s.active = Some((block, next + 1));
        }
        Some(addr)
    }

    /// Allocates the next fresh page, round-robining across write
    /// streams. Returns `None` when every stream is exhausted (GC
    /// needed).
    pub fn alloc(&mut self) -> Option<FimmAddr> {
        let n = self.streams.len();
        for off in 0..n {
            let idx = (self.rr + off) % n;
            if let Some(addr) = Self::try_alloc_stream(&self.geom, &mut self.streams[idx]) {
                self.rr = (idx + 1) % n;
                self.allocated += 1;
                return Some(addr);
            }
        }
        None
    }

    /// Allocates within a *specific package* (used when GC must keep a
    /// page's die affinity loose but its package fixed is not required —
    /// exposed for completeness and tests).
    pub fn alloc_in_package(&mut self, package: u32) -> Option<FimmAddr> {
        let n = self.streams.len();
        for off in 0..n {
            let idx = (self.rr + off) % n;
            if self.streams[idx].package != package {
                continue;
            }
            if let Some(addr) = Self::try_alloc_stream(&self.geom, &mut self.streams[idx]) {
                self.rr = (idx + 1) % n;
                self.allocated += 1;
                return Some(addr);
            }
        }
        None
    }

    /// Returns an erased block to the free pool, bumping its erase count.
    ///
    /// A block that has reached the geometry's endurance limit is
    /// **retired** instead of recycled — handing it out again would fail
    /// at the NAND package, which enforces the same limit.
    pub fn recycle(&mut self, key: BlockKey) {
        let (package, die, block) = key;
        let count = self.erase_counts.entry(key).or_insert(0);
        *count += 1;
        let c = *count;
        if c >= self.geom.endurance {
            self.retired += 1;
            return;
        }
        let plane = self.geom.plane_of_block(block);
        let s = self
            .streams
            .iter_mut()
            .find(|s| s.package == package && s.die == die && s.plane == plane)
            .expect("stream exists for every (package, die, plane)");
        s.recycled.push(Reverse((c, block)));
    }

    /// Permanently removes a block from service — a *grown bad block*
    /// after a hardware program/erase failure. Closes it if it is the
    /// stream's active block, drops it from the recycled pool, and pins
    /// its erase count at the endurance limit so [`Self::recycle`] can
    /// never pool it again.
    pub fn quarantine(&mut self, key: BlockKey) {
        let (package, die, block) = key;
        if self.erase_count(key) >= self.geom.endurance {
            return; // already retired
        }
        let plane = self.geom.plane_of_block(block);
        if let Some(s) = self
            .streams
            .iter_mut()
            .find(|s| s.package == package && s.die == die && s.plane == plane)
        {
            if matches!(s.active, Some((b, _)) if b == block) {
                s.active = None;
            }
            s.recycled.retain(|Reverse((_, b))| *b != block);
        }
        self.erase_counts.insert(key, self.geom.endurance);
        self.retired += 1;
    }

    /// Blocks permanently retired: worn to the endurance limit or
    /// quarantined as grown bad blocks.
    pub fn retired_blocks(&self) -> u64 {
        self.retired
    }

    /// Host-side erase count of a block (0 if never recycled).
    pub fn erase_count(&self, key: BlockKey) -> u32 {
        self.erase_counts.get(&key).copied().unwrap_or(0)
    }

    /// Free blocks remaining across all streams (fresh + recycled,
    /// counting a partially-filled active block as zero).
    pub fn free_blocks(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| (self.geom.blocks_per_plane - s.fresh_next) as u64 + s.recycled.len() as u64)
            .sum()
    }

    /// Total pages allocated over the allocator's lifetime.
    pub fn total_allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of independent write streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> FlashGeometry {
        FlashGeometry {
            dies: 2,
            planes: 2,
            blocks_per_plane: 4,
            pages_per_block: 4,
            page_size: 4096,
            endurance: 100,
        }
    }

    #[test]
    fn round_robin_spreads_streams() {
        let mut a = FimmAllocator::new(2, geom());
        let first = a.alloc().unwrap();
        let second = a.alloc().unwrap();
        assert_ne!(
            (first.package, first.page.die, first.page.plane),
            (second.package, second.page.die, second.page.plane),
            "consecutive allocations use different streams"
        );
    }

    #[test]
    fn pages_within_block_in_order() {
        let mut a = FimmAllocator::new(1, geom());
        let mut per_block: std::collections::HashMap<(u32, u32, u32), Vec<u32>> =
            std::collections::HashMap::new();
        for _ in 0..64 {
            let addr = a.alloc().unwrap();
            per_block
                .entry((addr.package, addr.page.die, addr.page.block))
                .or_default()
                .push(addr.page.page);
        }
        for (k, pages) in per_block {
            let expect: Vec<u32> = (0..pages.len() as u32).collect();
            assert_eq!(pages, expect, "block {k:?} programmed out of order");
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let g = geom();
        let mut a = FimmAllocator::new(1, g);
        let capacity = g.total_pages();
        for i in 0..capacity {
            assert!(a.alloc().is_some(), "failed at page {i}");
        }
        assert!(a.alloc().is_none());
        assert_eq!(a.free_blocks(), 0);
        assert_eq!(a.total_allocated(), capacity);
    }

    #[test]
    fn recycle_restores_capacity_and_counts_wear() {
        let g = geom();
        let mut a = FimmAllocator::new(1, g);
        for _ in 0..g.total_pages() {
            a.alloc().unwrap();
        }
        a.recycle((0, 0, 0));
        assert_eq!(a.erase_count((0, 0, 0)), 1);
        assert_eq!(a.free_blocks(), 1);
        let fresh = a.alloc().unwrap();
        assert_eq!((fresh.page.die, fresh.page.block), (0, 0));
    }

    #[test]
    fn wear_levelling_prefers_cold_blocks() {
        let g = geom();
        let mut a = FimmAllocator::new(1, g);
        for _ in 0..g.total_pages() {
            a.alloc().unwrap();
        }
        // block 0 recycled twice (hot), block 2 once (cold); both plane 0 die 0
        a.recycle((0, 0, 0));
        // burn through block 0 again
        for _ in 0..g.pages_per_block {
            a.alloc().unwrap();
        }
        a.recycle((0, 0, 0));
        a.recycle((0, 0, 2));
        let next = a.alloc().unwrap();
        assert_eq!(next.page.block, 2, "least-worn block chosen first");
    }

    #[test]
    fn worn_out_blocks_retire_from_the_pool() {
        let g = FlashGeometry {
            endurance: 2,
            ..geom()
        };
        let mut a = FimmAllocator::new(1, g);
        for _ in 0..g.total_pages() {
            a.alloc().unwrap();
        }
        a.recycle((0, 0, 0)); // erase count 1: reusable
        assert_eq!(a.free_blocks(), 1);
        for _ in 0..g.pages_per_block {
            a.alloc().unwrap();
        }
        a.recycle((0, 0, 0)); // erase count 2 = endurance: retired
        assert_eq!(a.free_blocks(), 0, "retired block must not return");
        assert_eq!(a.retired_blocks(), 1);
        assert_eq!(a.erase_count((0, 0, 0)), 2);
    }

    #[test]
    fn alloc_in_package_respects_package() {
        let mut a = FimmAllocator::new(3, geom());
        for _ in 0..10 {
            let addr = a.alloc_in_package(2).unwrap();
            assert_eq!(addr.package, 2);
        }
    }

    #[test]
    fn stream_count_is_product() {
        let a = FimmAllocator::new(8, geom());
        assert_eq!(a.stream_count(), 8 * 2 * 2);
    }
}
