//! The cluster-local shared ONFi bus.

use triplea_flash::OnfiTiming;
use triplea_sim::trace::{TraceEventKind, TracePort};
use triplea_sim::{FifoResource, Nanos, Reservation, SimTime};

/// The shared NV-DDR2 channel connecting a cluster's FIMMs to its PCI-E
/// endpoint.
///
/// All data movement between FIMMs and the endpoint serialises here; time
/// spent waiting for it is the paper's **link contention**. Its windowed
/// utilization (`u_bus`) feeds the Eq. 2 cold-cluster test.
#[derive(Clone, Debug)]
pub struct OnfiBus {
    timing: OnfiTiming,
    res: FifoResource,
    transfers: u64,
    bytes: u64,
    trace: TracePort,
}

impl OnfiBus {
    /// Creates an idle bus with the given interface timing.
    pub fn new(timing: OnfiTiming) -> Self {
        OnfiBus {
            timing,
            res: FifoResource::new("onfi-bus"),
            transfers: 0,
            bytes: 0,
            trace: TracePort::off(),
        }
    }

    /// Connects this bus to an event recorder; every arbitration win
    /// (transfer or command cycle) is reported through `port` from then
    /// on, stamped at the instant the bus was actually acquired.
    pub fn attach_trace(&mut self, port: TracePort) {
        self.trace = port;
    }

    /// Reserves the bus at `now` to move `bytes`, including the fixed
    /// command/address overhead. The reservation's `wait` is the link
    /// contention charged to the caller.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let dur = self.timing.dma_nanos(bytes) + self.timing.cmd_overhead;
        self.transfers += 1;
        self.bytes += bytes;
        let r = self.res.reserve(now, dur);
        self.trace.emit_at(r.start, || {
            TraceEventKind::BusAcquire {
                wait_ns: r.wait,
                dur_ns: r.end - r.start,
                bytes,
            }
        });
        r
    }

    /// Reserves the bus for a command-only cycle (no payload), e.g. the
    /// command/address phase of a read before the die starts.
    pub fn command_cycle(&mut self, now: SimTime) -> Reservation {
        self.transfers += 1;
        let r = self.res.reserve(now, self.timing.cmd_overhead);
        self.trace.emit_at(r.start, || {
            TraceEventKind::BusAcquire {
                wait_ns: r.wait,
                dur_ns: r.end - r.start,
                bytes: 0,
            }
        });
        r
    }

    /// `t_DMA` for `bytes` on this bus (excluding command overhead).
    pub fn dma_nanos(&self, bytes: u64) -> Nanos {
        self.timing.dma_nanos(bytes)
    }

    /// Instant the bus next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.res.free_at()
    }

    /// Busy fraction since the simulation start.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.res.utilization(now)
    }

    /// Busy fraction over the recent sliding window (`u_bus` in Eq. 2).
    pub fn windowed_utilization(&self, now: SimTime) -> f64 {
        self.res.windowed_utilization(now)
    }

    /// Interface timing of this bus.
    pub fn timing(&self) -> &OnfiTiming {
        &self.timing
    }

    /// Total completed transfer reservations.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> OnfiBus {
        OnfiBus::new(OnfiTiming::default())
    }

    #[test]
    fn transfer_duration_includes_overhead() {
        let mut b = bus();
        let r = b.transfer(SimTime::ZERO, 4096);
        // 2560ns DMA + 100ns command overhead
        assert_eq!(r.end - r.start, 2_660);
        assert_eq!(r.wait, 0);
    }

    #[test]
    fn concurrent_transfers_serialise() {
        let mut b = bus();
        b.transfer(SimTime::ZERO, 4096);
        let second = b.transfer(SimTime::ZERO, 4096);
        assert_eq!(second.wait, 2_660, "bus is serially shared");
    }

    #[test]
    fn command_cycle_is_short() {
        let mut b = bus();
        let r = b.command_cycle(SimTime::ZERO);
        assert_eq!(r.end - r.start, 100);
    }

    #[test]
    fn accounting_accumulates() {
        let mut b = bus();
        b.transfer(SimTime::ZERO, 4096);
        b.transfer(SimTime::ZERO, 1024);
        b.command_cycle(SimTime::ZERO);
        assert_eq!(b.transfer_count(), 3);
        assert_eq!(b.bytes_moved(), 5120);
        assert!(b.free_at() > SimTime::ZERO);
    }

    #[test]
    fn utilization_rises_under_load() {
        let mut b = bus();
        for i in 0..10 {
            b.transfer(SimTime::from_us(i * 3), 4096);
        }
        let u = b.utilization(SimTime::from_us(30));
        assert!(u > 0.8, "u = {u}");
    }
}
