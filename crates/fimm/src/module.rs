//! The FIMM itself: eight packages behind one connector.

use triplea_flash::{
    FlashCommand, FlashError, FlashGeometry, FlashTiming, OpTiming, Package, PageAddr, WearReport,
};
use triplea_sim::SimTime;

/// Address of a page within a FIMM: which package (chip-enable) plus the
/// package-internal page address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FimmAddr {
    /// Package index on the module (selected via its chip-enable pin).
    pub package: u32,
    /// Address within that package.
    pub page: PageAddr,
}

impl std::fmt::Display for FimmAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkg{}/{}", self.package, self.page)
    }
}

/// Aggregated operation counters for a FIMM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FimmStats {
    /// Page reads across all packages.
    pub reads: u64,
    /// Page programs across all packages.
    pub programs: u64,
    /// Block erases across all packages.
    pub erases: u64,
}

/// A Flash Inline Memory Module (paper §3.3): a passive board of NAND
/// packages with no on-module controller, DRAM, or firmware — those all
/// live host-side in Triple-A.
#[derive(Clone, Debug)]
pub struct Fimm {
    packages: Vec<Package>,
}

impl Fimm {
    /// Creates a FIMM with `n_packages` identical packages.
    ///
    /// # Panics
    ///
    /// Panics if `n_packages == 0`.
    pub fn new(n_packages: u32, geom: FlashGeometry, timing: FlashTiming) -> Self {
        assert!(n_packages > 0, "a FIMM needs at least one package");
        Fimm {
            packages: (0..n_packages)
                .map(|_| Package::new(geom, timing))
                .collect(),
        }
    }

    /// Number of packages on the module.
    pub fn package_count(&self) -> u32 {
        self.packages.len() as u32
    }

    /// Usable capacity of the module in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.packages
            .iter()
            .map(|p| p.geometry().capacity_bytes())
            .sum()
    }

    /// Total pages across all packages.
    pub fn total_pages(&self) -> u64 {
        self.packages
            .iter()
            .map(|p| p.geometry().total_pages())
            .sum()
    }

    /// Shared read-only access to one package.
    pub fn package(&self, idx: u32) -> &Package {
        &self.packages[idx as usize]
    }

    /// Linearises a [`FimmAddr`] to a module-wide page index.
    pub fn page_index(&self, addr: FimmAddr) -> u64 {
        let per_pkg = self.packages[0].geometry().total_pages();
        addr.package as u64 * per_pkg
            + self.packages[addr.package as usize]
                .geometry()
                .page_index(addr.page)
    }

    /// Inverse of [`Fimm::page_index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the module.
    pub fn addr_from_index(&self, idx: u64) -> FimmAddr {
        let per_pkg = self.packages[0].geometry().total_pages();
        let package = (idx / per_pkg) as u32;
        assert!(
            (package as usize) < self.packages.len(),
            "page index out of range"
        );
        FimmAddr {
            package,
            page: self.packages[package as usize]
                .geometry()
                .page_from_index(idx % per_pkg),
        }
    }

    /// Issues a flash command to package `package`, reserving die time.
    ///
    /// # Errors
    ///
    /// Propagates [`FlashError`] from the package (validation, program
    /// order, wear-out).
    ///
    /// # Panics
    ///
    /// Panics if `package` is out of range.
    pub fn begin_op(
        &mut self,
        now: SimTime,
        package: u32,
        cmd: &FlashCommand,
    ) -> Result<OpTiming, FlashError> {
        self.packages[package as usize].begin_op(now, cmd)
    }

    /// `true` when every die of every package is idle at `now` — the
    /// "target FIMM device is available" precondition of Eq. 1.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.packages.iter().all(|p| p.is_idle_at(now))
    }

    /// Earliest instant at which the given package's busiest die frees up.
    pub fn package_free_at(&self, package: u32) -> SimTime {
        let p = &self.packages[package as usize];
        (0..p.geometry().dies)
            .map(|d| p.die_free_at(d))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Aggregated operation counters.
    pub fn stats(&self) -> FimmStats {
        let mut s = FimmStats::default();
        for p in &self.packages {
            let ps = p.stats();
            s.reads += ps.reads;
            s.programs += ps.programs;
            s.erases += ps.erases;
        }
        s
    }

    /// Aggregated wear report across packages.
    pub fn wear_report(&self) -> WearReport {
        let mut acc = WearReport::default();
        for p in &self.packages {
            acc.merge(&p.wear_report());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fimm() -> Fimm {
        Fimm::new(8, FlashGeometry::default(), FlashTiming::default())
    }

    fn addr(pkg: u32, block: u32, page: u32) -> FimmAddr {
        FimmAddr {
            package: pkg,
            page: PageAddr {
                die: 0,
                plane: block % 2,
                block,
                page,
            },
        }
    }

    #[test]
    fn capacity_is_64_gib() {
        // 8 packages x 8 GiB = 64 GiB, the paper's FIMM size
        assert_eq!(fimm().capacity_bytes(), 64 * 1024 * 1024 * 1024);
        assert_eq!(fimm().package_count(), 8);
    }

    #[test]
    fn packages_operate_independently() {
        let mut f = fimm();
        let a = f
            .begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        let b = f
            .begin_op(SimTime::ZERO, 1, &FlashCommand::read(addr(1, 0, 0).page))
            .unwrap();
        assert_eq!(a.die_wait, 0);
        assert_eq!(b.die_wait, 0, "different packages never contend on dies");
    }

    #[test]
    fn same_package_same_die_contends() {
        let mut f = fimm();
        f.begin_op(SimTime::ZERO, 2, &FlashCommand::read(addr(2, 0, 0).page))
            .unwrap();
        let second = f
            .begin_op(SimTime::ZERO, 2, &FlashCommand::read(addr(2, 0, 1).page))
            .unwrap();
        assert!(second.die_wait > 0);
    }

    #[test]
    fn page_index_roundtrip() {
        let f = fimm();
        for idx in [0, 1, 2_097_151, 2_097_152, f.total_pages() - 1] {
            let a = f.addr_from_index(idx);
            assert_eq!(f.page_index(a), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn addr_from_index_bounds() {
        let f = fimm();
        f.addr_from_index(f.total_pages());
    }

    #[test]
    fn idle_tracking() {
        let mut f = fimm();
        assert!(f.is_idle_at(SimTime::ZERO));
        f.begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        assert!(!f.is_idle_at(SimTime::ZERO));
        assert!(f.is_idle_at(f.package_free_at(0)));
    }

    #[test]
    fn stats_aggregate_packages() {
        let mut f = fimm();
        f.begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        f.begin_op(SimTime::ZERO, 1, &FlashCommand::program(addr(1, 0, 0).page))
            .unwrap();
        f.begin_op(SimTime::ZERO, 2, &FlashCommand::erase(addr(2, 0, 0).page))
            .unwrap();
        let s = f.stats();
        assert_eq!((s.reads, s.programs, s.erases), (1, 1, 1));
        assert_eq!(f.wear_report().total_erases, 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(addr(3, 2, 1).to_string(), "pkg3/d0p0b2pg1");
    }

    #[test]
    #[should_panic(expected = "at least one package")]
    fn zero_packages_panics() {
        Fimm::new(0, FlashGeometry::default(), FlashTiming::default());
    }
}
