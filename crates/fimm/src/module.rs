//! The FIMM itself: eight packages behind one connector.

use triplea_flash::{
    FlashCommand, FlashError, FlashFaultProfile, FlashGeometry, FlashTiming, OpTiming, Package,
    PackageFaultStats, PageAddr, WearReport,
};
use triplea_sim::trace::{TraceEventKind, TracePort};
use triplea_sim::SimTime;

/// What happens to a FIMM when its scheduled fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FimmFaultKind {
    /// The module stops answering entirely; every operation returns
    /// [`FlashError::ModuleFailed`].
    Dead,
    /// Every package on the module slows by the given latency multiplier,
    /// turning the FIMM into a laggard (paper §4.2, Eq. 3).
    Slowdown(u32),
}

/// Address of a page within a FIMM: which package (chip-enable) plus the
/// package-internal page address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FimmAddr {
    /// Package index on the module (selected via its chip-enable pin).
    pub package: u32,
    /// Address within that package.
    pub page: PageAddr,
}

impl std::fmt::Display for FimmAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkg{}/{}", self.package, self.page)
    }
}

/// Aggregated operation counters for a FIMM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FimmStats {
    /// Page reads across all packages.
    pub reads: u64,
    /// Page programs across all packages.
    pub programs: u64,
    /// Block erases across all packages.
    pub erases: u64,
}

/// A Flash Inline Memory Module (paper §3.3): a passive board of NAND
/// packages with no on-module controller, DRAM, or firmware — those all
/// live host-side in Triple-A.
#[derive(Clone, Debug)]
pub struct Fimm {
    packages: Vec<Package>,
    /// Scheduled whole-module faults, ordered by `(fire time, insertion
    /// order)`. Each fires lazily the first time the simulation clock
    /// passes its instant; faults are permanent.
    faults: Vec<(SimTime, FimmFaultKind)>,
    /// How many leading entries of `faults` have already been applied.
    applied: usize,
    /// Cumulative latency multiplier from every slowdown fired so far.
    latency_scale: u32,
    dead_reported: bool,
    trace: TracePort,
}

impl Fimm {
    /// Creates a FIMM with `n_packages` identical packages.
    ///
    /// # Panics
    ///
    /// Panics if `n_packages == 0`.
    pub fn new(n_packages: u32, geom: FlashGeometry, timing: FlashTiming) -> Self {
        assert!(n_packages > 0, "a FIMM needs at least one package");
        Fimm {
            packages: (0..n_packages)
                .map(|_| Package::new(geom, timing))
                .collect(),
            faults: Vec::new(),
            applied: 0,
            latency_scale: 1,
            dead_reported: false,
            trace: TracePort::off(),
        }
    }

    /// Connects this module (and every package on it) to an event
    /// recorder. Per-package flash operations are scoped by package index
    /// under the module's `port` scope; module-level fault firings are
    /// reported at module scope.
    pub fn attach_trace(&mut self, port: TracePort) {
        for (i, p) in self.packages.iter_mut().enumerate() {
            p.attach_trace(port.with_scope(port.scope().unit(i as u32)));
        }
        self.trace = port;
    }

    /// Schedules a permanent whole-module fault to fire at `at`.
    ///
    /// Any number of faults may be queued, including several at the same
    /// instant (and at `t = 0`). Application order is deterministic and
    /// documented: faults fire sorted by `(fire time, scheduling
    /// order)`. At a shared instant, [`FimmFaultKind::Dead`] dominates —
    /// operations are refused from that instant onward regardless of
    /// what else is queued there — while co-scheduled
    /// [`FimmFaultKind::Slowdown`]s compound multiplicatively (their
    /// mutual order is therefore unobservable). Schedule faults before
    /// the first operation; the queue is consumed as the clock advances.
    pub fn schedule_fault(&mut self, at: SimTime, kind: FimmFaultKind) {
        let pos = self.faults.partition_point(|&(t, _)| t <= at);
        self.faults.insert(pos, (at, kind));
    }

    /// All scheduled module faults, in their deterministic firing order.
    pub fn scheduled_faults(&self) -> &[(SimTime, FimmFaultKind)] {
        &self.faults
    }

    /// `true` once a scheduled [`FimmFaultKind::Dead`] fault has fired:
    /// the module no longer answers and its data must be served (or
    /// redirected) elsewhere.
    pub fn is_dead_at(&self, now: SimTime) -> bool {
        self.faults
            .iter()
            .any(|&(at, k)| k == FimmFaultKind::Dead && now >= at)
    }

    /// Arms deterministic per-package NAND fault injection, deriving a
    /// distinct RNG seed per package from `seed`.
    pub fn set_fault_profile(&mut self, profile: FlashFaultProfile, seed: u64) {
        for (i, p) in self.packages.iter_mut().enumerate() {
            p.set_faults(
                profile,
                seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
        }
    }

    /// Aggregated NAND fault counters across packages.
    pub fn fault_stats(&self) -> PackageFaultStats {
        let mut acc = PackageFaultStats::default();
        for p in &self.packages {
            acc.merge(&p.fault_stats());
        }
        acc
    }

    /// Applies every due, not-yet-applied fault in queue order
    /// (idempotent per entry). Slowdowns compound: each multiplies the
    /// module's cumulative latency scale.
    fn fire_due_faults(&mut self, now: SimTime) {
        while let Some(&(at, kind)) = self.faults.get(self.applied) {
            if now < at {
                break;
            }
            self.applied += 1;
            if let FimmFaultKind::Slowdown(scale) = kind {
                self.latency_scale = self.latency_scale.saturating_mul(scale.max(1));
                let cumulative = self.latency_scale;
                for p in &mut self.packages {
                    p.set_latency_scale(cumulative);
                }
                self.trace.emit(|| TraceEventKind::FaultInjected {
                    domain: "fimm",
                    detail: "slowdown",
                });
            }
        }
    }

    /// Reports a dead-module refusal through the trace port (once).
    fn report_dead(&mut self) {
        if !self.dead_reported {
            self.dead_reported = true;
            self.trace.emit(|| TraceEventKind::FaultInjected {
                domain: "fimm",
                detail: "dead",
            });
        }
    }

    /// Number of packages on the module.
    pub fn package_count(&self) -> u32 {
        self.packages.len() as u32
    }

    /// Usable capacity of the module in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.packages
            .iter()
            .map(|p| p.geometry().capacity_bytes())
            .sum()
    }

    /// Total pages across all packages.
    pub fn total_pages(&self) -> u64 {
        self.packages
            .iter()
            .map(|p| p.geometry().total_pages())
            .sum()
    }

    /// Shared read-only access to one package.
    pub fn package(&self, idx: u32) -> &Package {
        &self.packages[idx as usize]
    }

    /// Linearises a [`FimmAddr`] to a module-wide page index.
    pub fn page_index(&self, addr: FimmAddr) -> u64 {
        let per_pkg = self.packages[0].geometry().total_pages();
        addr.package as u64 * per_pkg
            + self.packages[addr.package as usize]
                .geometry()
                .page_index(addr.page)
    }

    /// Inverse of [`Fimm::page_index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the module.
    pub fn addr_from_index(&self, idx: u64) -> FimmAddr {
        let per_pkg = self.packages[0].geometry().total_pages();
        let package = (idx / per_pkg) as u32;
        assert!(
            (package as usize) < self.packages.len(),
            "page index out of range"
        );
        FimmAddr {
            package,
            page: self.packages[package as usize]
                .geometry()
                .page_from_index(idx % per_pkg),
        }
    }

    /// Issues a flash command to package `package`, reserving die time.
    ///
    /// # Errors
    ///
    /// Propagates [`FlashError`] from the package (validation, program
    /// order, wear-out).
    ///
    /// # Panics
    ///
    /// Panics if `package` is out of range.
    pub fn begin_op(
        &mut self,
        now: SimTime,
        package: u32,
        cmd: &FlashCommand,
    ) -> Result<OpTiming, FlashError> {
        if self.is_dead_at(now) {
            self.report_dead();
            return Err(FlashError::ModuleFailed);
        }
        self.fire_due_faults(now);
        self.packages[package as usize].begin_op(now, cmd)
    }

    /// Fault-immune variant of [`Fimm::begin_op`] for last-resort
    /// recovery reads; a dead module still refuses.
    pub fn begin_op_recovery(
        &mut self,
        now: SimTime,
        package: u32,
        cmd: &FlashCommand,
    ) -> Result<OpTiming, FlashError> {
        if self.is_dead_at(now) {
            self.report_dead();
            return Err(FlashError::ModuleFailed);
        }
        self.fire_due_faults(now);
        self.packages[package as usize].begin_op_recovery(now, cmd)
    }

    /// `true` when every die of every package is idle at `now` — the
    /// "target FIMM device is available" precondition of Eq. 1.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.packages.iter().all(|p| p.is_idle_at(now))
    }

    /// Earliest instant at which the given package's busiest die frees up.
    pub fn package_free_at(&self, package: u32) -> SimTime {
        let p = &self.packages[package as usize];
        (0..p.geometry().dies)
            .map(|d| p.die_free_at(d))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Aggregated operation counters.
    pub fn stats(&self) -> FimmStats {
        let mut s = FimmStats::default();
        for p in &self.packages {
            let ps = p.stats();
            s.reads += ps.reads;
            s.programs += ps.programs;
            s.erases += ps.erases;
        }
        s
    }

    /// Aggregated wear report across packages.
    pub fn wear_report(&self) -> WearReport {
        let mut acc = WearReport::default();
        for p in &self.packages {
            acc.merge(&p.wear_report());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fimm() -> Fimm {
        Fimm::new(8, FlashGeometry::default(), FlashTiming::default())
    }

    fn addr(pkg: u32, block: u32, page: u32) -> FimmAddr {
        FimmAddr {
            package: pkg,
            page: PageAddr {
                die: 0,
                plane: block % 2,
                block,
                page,
            },
        }
    }

    #[test]
    fn capacity_is_64_gib() {
        // 8 packages x 8 GiB = 64 GiB, the paper's FIMM size
        assert_eq!(fimm().capacity_bytes(), 64 * 1024 * 1024 * 1024);
        assert_eq!(fimm().package_count(), 8);
    }

    #[test]
    fn packages_operate_independently() {
        let mut f = fimm();
        let a = f
            .begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        let b = f
            .begin_op(SimTime::ZERO, 1, &FlashCommand::read(addr(1, 0, 0).page))
            .unwrap();
        assert_eq!(a.die_wait, 0);
        assert_eq!(b.die_wait, 0, "different packages never contend on dies");
    }

    #[test]
    fn same_package_same_die_contends() {
        let mut f = fimm();
        f.begin_op(SimTime::ZERO, 2, &FlashCommand::read(addr(2, 0, 0).page))
            .unwrap();
        let second = f
            .begin_op(SimTime::ZERO, 2, &FlashCommand::read(addr(2, 0, 1).page))
            .unwrap();
        assert!(second.die_wait > 0);
    }

    #[test]
    fn page_index_roundtrip() {
        let f = fimm();
        for idx in [0, 1, 2_097_151, 2_097_152, f.total_pages() - 1] {
            let a = f.addr_from_index(idx);
            assert_eq!(f.page_index(a), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn addr_from_index_bounds() {
        let f = fimm();
        f.addr_from_index(f.total_pages());
    }

    #[test]
    fn idle_tracking() {
        let mut f = fimm();
        assert!(f.is_idle_at(SimTime::ZERO));
        f.begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        assert!(!f.is_idle_at(SimTime::ZERO));
        assert!(f.is_idle_at(f.package_free_at(0)));
    }

    #[test]
    fn stats_aggregate_packages() {
        let mut f = fimm();
        f.begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        f.begin_op(SimTime::ZERO, 1, &FlashCommand::program(addr(1, 0, 0).page))
            .unwrap();
        f.begin_op(SimTime::ZERO, 2, &FlashCommand::erase(addr(2, 0, 0).page))
            .unwrap();
        let s = f.stats();
        assert_eq!((s.reads, s.programs, s.erases), (1, 1, 1));
        assert_eq!(f.wear_report().total_erases, 1);
    }

    #[test]
    fn dead_fimm_refuses_everything_after_deadline() {
        let mut f = fimm();
        f.schedule_fault(SimTime::from_us(100), FimmFaultKind::Dead);
        assert!(!f.is_dead_at(SimTime::from_us(99)));
        assert!(f
            .begin_op(SimTime::from_us(99), 0, &FlashCommand::read(addr(0, 0, 0).page))
            .is_ok());
        assert!(f.is_dead_at(SimTime::from_us(100)));
        assert_eq!(
            f.begin_op(SimTime::from_us(100), 0, &FlashCommand::read(addr(0, 0, 0).page)),
            Err(FlashError::ModuleFailed)
        );
        assert_eq!(
            f.begin_op_recovery(SimTime::from_us(200), 1, &FlashCommand::read(addr(1, 0, 0).page)),
            Err(FlashError::ModuleFailed),
            "recovery reads cannot resurrect a dead module"
        );
        assert_eq!(f.stats().reads, 1, "only the pre-fault read served");
    }

    #[test]
    fn slowdown_fault_scales_latency_permanently() {
        let mut f = fimm();
        f.schedule_fault(SimTime::from_us(50), FimmFaultKind::Slowdown(8));
        let before = f
            .begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        assert_eq!(before.end - before.start, 26_000, "healthy before deadline");
        let after = f
            .begin_op(SimTime::from_us(50), 1, &FlashCommand::read(addr(1, 0, 0).page))
            .unwrap();
        assert_eq!(after.end - after.start, 8 * 26_000, "laggard after");
        assert!(!f.is_dead_at(SimTime::from_us(1_000)), "slow, not dead");
        assert_eq!(
            f.scheduled_faults(),
            &[(SimTime::from_us(50), FimmFaultKind::Slowdown(8))]
        );
    }

    #[test]
    fn fault_at_time_zero_applies_to_first_op() {
        let mut slow = fimm();
        slow.schedule_fault(SimTime::ZERO, FimmFaultKind::Slowdown(4));
        let t = slow
            .begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        assert_eq!(t.end - t.start, 4 * 26_000, "t=0 slowdown hits op at t=0");

        let mut dead = fimm();
        dead.schedule_fault(SimTime::ZERO, FimmFaultKind::Dead);
        assert!(dead.is_dead_at(SimTime::ZERO));
        assert_eq!(
            dead.begin_op(SimTime::ZERO, 0, &FlashCommand::read(addr(0, 0, 0).page)),
            Err(FlashError::ModuleFailed)
        );
    }

    #[test]
    fn coscheduled_slowdowns_compound() {
        let mut f = fimm();
        f.schedule_fault(SimTime::from_us(10), FimmFaultKind::Slowdown(2));
        f.schedule_fault(SimTime::from_us(10), FimmFaultKind::Slowdown(4));
        let t = f
            .begin_op(SimTime::from_us(10), 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        assert_eq!(t.end - t.start, 8 * 26_000, "2x and 4x compound to 8x");
        assert_eq!(f.scheduled_faults().len(), 2);
    }

    #[test]
    fn dead_dominates_coscheduled_slowdown() {
        // Regardless of scheduling order, Dead at the same instant wins:
        // the module refuses operations from that instant.
        for flip in [false, true] {
            let mut f = fimm();
            let (a, b) = (FimmFaultKind::Dead, FimmFaultKind::Slowdown(8));
            let (first, second) = if flip { (b, a) } else { (a, b) };
            f.schedule_fault(SimTime::from_us(10), first);
            f.schedule_fault(SimTime::from_us(10), second);
            assert_eq!(
                f.begin_op(SimTime::from_us(10), 0, &FlashCommand::read(addr(0, 0, 0).page)),
                Err(FlashError::ModuleFailed)
            );
        }
    }

    #[test]
    fn faults_fire_in_timestamp_then_insertion_order() {
        let mut f = fimm();
        // Scheduled out of order; the queue sorts by fire time, keeping
        // insertion order for ties.
        f.schedule_fault(SimTime::from_us(30), FimmFaultKind::Slowdown(3));
        f.schedule_fault(SimTime::from_us(10), FimmFaultKind::Slowdown(2));
        f.schedule_fault(SimTime::from_us(30), FimmFaultKind::Slowdown(5));
        assert_eq!(
            f.scheduled_faults(),
            &[
                (SimTime::from_us(10), FimmFaultKind::Slowdown(2)),
                (SimTime::from_us(30), FimmFaultKind::Slowdown(3)),
                (SimTime::from_us(30), FimmFaultKind::Slowdown(5)),
            ]
        );
        let t = f
            .begin_op(SimTime::from_us(20), 0, &FlashCommand::read(addr(0, 0, 0).page))
            .unwrap();
        assert_eq!(t.end - t.start, 2 * 26_000, "only the first fault is due");
        let t = f
            .begin_op(SimTime::from_us(30), 1, &FlashCommand::read(addr(1, 0, 0).page))
            .unwrap();
        assert_eq!(t.end - t.start, 30 * 26_000, "all three compound: 2*3*5");
    }

    #[test]
    fn fault_profile_reaches_every_package() {
        let mut f = fimm();
        f.set_fault_profile(
            FlashFaultProfile {
                read_transient_prob: 1.0,
                ..FlashFaultProfile::default()
            },
            42,
        );
        for pkg in 0..f.package_count() {
            assert!(f
                .begin_op(SimTime::ZERO, pkg, &FlashCommand::read(addr(pkg, 0, 0).page))
                .unwrap_err()
                .is_transient());
        }
        assert_eq!(f.fault_stats().read_transients, 8);
    }

    #[test]
    fn display_format() {
        assert_eq!(addr(3, 2, 1).to_string(), "pkg3/d0p0b2pg1");
    }

    #[test]
    #[should_panic(expected = "at least one package")]
    fn zero_packages_panics() {
        Fimm::new(0, FlashGeometry::default(), FlashTiming::default());
    }
}
