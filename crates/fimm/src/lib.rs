//! Flash Inline Memory Module (FIMM) — the paper's §3.3, Figure 6.
//!
//! A FIMM is a "passive memory device like a DIMM": eight bare NAND
//! packages on a printed circuit board behind the ONFi 78-pin NV-DDR2
//! connector. Each package has its own chip-enable pin (so the endpoint
//! can address packages individually) but all packages share the module's
//! 16-data-pin channel and a single ready/busy wire.
//!
//! Within a Triple-A *cluster*, several FIMMs hang off one PCI-E endpoint
//! and share a single local ONFi bus — [`OnfiBus`] here. Waiting for that
//! bus is exactly the paper's **link contention**; waiting for a busy
//! package/die is its **storage contention**.
//!
//! # Example
//!
//! ```
//! use triplea_fimm::{Fimm, FimmAddr, OnfiBus};
//! use triplea_flash::{FlashCommand, FlashGeometry, FlashTiming, PageAddr};
//! use triplea_sim::SimTime;
//!
//! let mut fimm = Fimm::new(8, FlashGeometry::default(), FlashTiming::default());
//! let mut bus = OnfiBus::new(FlashTiming::default().onfi);
//! let addr = FimmAddr { package: 3, page: PageAddr { die: 0, plane: 0, block: 0, page: 0 } };
//! let op = fimm.begin_op(SimTime::ZERO, addr.package, &FlashCommand::read(addr.page))?;
//! let xfer = bus.transfer(op.end, 4096); // move the page to the endpoint
//! assert!(xfer.end > op.end);
//! # Ok::<(), triplea_flash::FlashError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod module;

pub use bus::OnfiBus;
pub use module::{Fimm, FimmAddr, FimmFaultKind, FimmStats};
