//! Offline, deterministic subset of the [proptest](https://docs.rs/proptest)
//! API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored stub provides exactly the surface the workspace's property
//! tests use:
//!
//! * [`Strategy`](strategy::Strategy) implemented for integer ranges, tuples
//!   of strategies, plus [`prop_map`](strategy::Strategy::prop_map);
//! * [`collection::vec`] and [`bool::weighted`];
//! * the [`proptest!`], [`prop_compose!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`ProptestConfig`](test_runner::ProptestConfig) with a `cases` knob.
//!
//! Differences from real proptest: generation is a plain seeded PRNG per
//! `(test name, case index)` — there is **no shrinking** — and assertion
//! failures panic immediately. Both are acceptable for CI-style regression
//! testing and keep every run byte-for-byte reproducible.

#![forbid(unsafe_code)]

/// Pseudo-random generation state and run configuration.
pub mod test_runner {
    /// How many cases each `proptest!` test runs, mirroring the real
    /// `ProptestConfig`. Extra knobs are accepted and ignored so call
    /// sites can use struct-update syntax.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// SplitMix64 generator: tiny, fast, and plenty random for test-case
    /// generation. Kept local so this crate has no dependencies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a test identifier and case index, so
        /// every `(test, case)` pair replays identically.
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Multiply-shift reduction avoids modulo bias well enough
            // for test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// single unshrinkable value from the given RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of its value (like real
    /// proptest's `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-valued strategies; the expansion
    /// target of [`prop_oneof!`](crate::prop_oneof). Unlike real
    /// proptest there are no per-arm weights: every arm is equally
    /// likely.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates an empty union; see [`Union::or`].
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        /// Adds one alternative.
        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
            self.arms.push(Box::new(s));
            self
        }
    }

    impl<T> Default for Union<T> {
        fn default() -> Self {
            Union::new()
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.next_below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Wraps a generation closure as a strategy; the expansion target of
    /// [`prop_compose!`](crate::prop_compose).
    pub struct FnStrategy<F>(pub F);

    impl<T, F> Strategy for FnStrategy<F>
    where
        F: Fn(&mut TestRng) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Strategies for collections (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for booleans (`prop::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` with the given probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(f64);

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p.clamp(0.0, 1.0))
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.0
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};

    /// Namespace mirror of real proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn` item becomes a `#[test]` running
/// `cases` deterministic generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Composes named strategies into a function returning
/// `impl Strategy<Value = Out>`, mirroring proptest's two-arg-list form.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($var:pat in $strat:expr),* $(,)?)
        -> $out:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name(
            $($arg: $argty),*
        ) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy(
                move |rng: &mut $crate::test_runner::TestRng| -> $out {
                    $(
                        let $var =
                            $crate::strategy::Strategy::generate(&($strat), rng);
                    )*
                    $body
                },
            )
        }
    };
}

/// Assertion inside a property body; panics (fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
///
/// Unlike real proptest, per-arm `weight =>` prefixes are not
/// supported; every arm draws with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds_and_replay() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 7);
        let mut b = crate::test_runner::TestRng::deterministic("t", 7);
        for _ in 0..1_000 {
            let x = (3u32..17).generate(&mut a);
            assert!((3..17).contains(&x));
            assert_eq!(x, (3u32..17).generate(&mut b));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("v", 0);
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_tuples(
            pair in (0u32..4, 0u32..2),
            flag in prop::bool::weighted(0.5),
        ) {
            prop_assert!(pair.0 < 4 && pair.1 < 2);
            prop_assert_eq!(flag as u32 * 2 % 2, 0);
        }
    }

    prop_compose! {
        fn arb_sum(limit: u64)(a in 0u64..10, b in 0u64..10) -> u64 {
            (a + b).min(limit)
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_apply_outer_args(s in arb_sum(5)) {
            prop_assert!(s <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn oneof_draws_from_every_arm(
            picks in prop::collection::vec(
                prop_oneof![
                    Just(0u64),
                    (10u64..20).prop_map(|x| x),
                    Just(99u64),
                ],
                50..60,
            )
        ) {
            for p in &picks {
                prop_assert!(*p == 0 || (10..20).contains(p) || *p == 99);
            }
        }
    }
}
