//! Array network topology and fabric-wide parameters.

use triplea_sim::Nanos;

use crate::link::LinkGen;

/// Identity of one cluster: which switch it hangs off, and its port index
/// on that switch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId {
    /// Switch (root-complex port) index.
    pub switch: u32,
    /// Downstream-port index within the switch.
    pub index: u32,
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}c{}", self.switch, self.index)
    }
}

/// Shape of the PCI-E network: `switches` × `clusters_per_switch`
/// (the paper's baseline is 4×16; sensitivity sweeps 4×8 … 4×20).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of switches, each on its own root-complex port.
    pub switches: u32,
    /// Clusters (endpoint devices) per switch.
    pub clusters_per_switch: u32,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            switches: 4,
            clusters_per_switch: 16,
        }
    }
}

impl Topology {
    /// Total clusters in the array.
    pub fn total_clusters(&self) -> u32 {
        self.switches * self.clusters_per_switch
    }

    /// Flattens a cluster ID to a dense index in `[0, total_clusters)`.
    pub fn global_index(&self, id: ClusterId) -> u32 {
        id.switch * self.clusters_per_switch + id.index
    }

    /// Inverse of [`Topology::global_index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= total_clusters()`.
    pub fn cluster_from_global(&self, idx: u32) -> ClusterId {
        assert!(idx < self.total_clusters(), "cluster index out of range");
        ClusterId {
            switch: idx / self.clusters_per_switch,
            index: idx % self.clusters_per_switch,
        }
    }

    /// Iterates all cluster IDs in switch-major order.
    pub fn iter_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        let cps = self.clusters_per_switch;
        (0..self.switches).flat_map(move |s| {
            (0..cps).map(move |c| ClusterId {
                switch: s,
                index: c,
            })
        })
    }

    /// Cluster IDs sharing a switch with `id`, excluding `id` itself —
    /// the candidate set for Triple-A's data migration (§6.1: data never
    /// migrates across switches).
    pub fn siblings(&self, id: ClusterId) -> impl Iterator<Item = ClusterId> + '_ {
        let sw = id.switch;
        let idx = id.index;
        (0..self.clusters_per_switch)
            .filter(move |&c| c != idx)
            .map(move |c| ClusterId {
                switch: sw,
                index: c,
            })
    }
}

/// Fabric-wide PCI-E parameters (paper §5.1 plus PCI-E 3.0 spec values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcieParams {
    /// Link generation for every link in the fabric.
    pub gen: LinkGen,
    /// Lanes per endpoint-facing link.
    pub lanes: u32,
    /// Lanes on each switch↔root-complex uplink. Uplinks aggregate a
    /// whole switch's traffic, so real arrays provision them wider
    /// (×16) than the per-endpoint links (×4).
    pub uplink_lanes: u32,
    /// Maximum TLP payload in bytes (4 KB in PCI-E 3.0, §5.2).
    pub max_payload: u32,
    /// Root-complex routing latency per packet.
    pub rc_route_ns: Nanos,
    /// Switch routing latency per packet.
    pub switch_route_ns: Nanos,
    /// Endpoint device-layer latency per packet (packet dis/assembly,
    /// §3.4).
    pub ep_device_ns: Nanos,
    /// Per-link propagation delay.
    pub propagation_ns: Nanos,
    /// Root-complex queue entries (650–1000 in the paper; default 800).
    pub rc_queue: usize,
    /// Virtual-channel buffer entries per switch downstream port.
    pub switch_queue: usize,
    /// Endpoint downstream buffer entries.
    pub ep_queue: usize,
}

impl Default for PcieParams {
    fn default() -> Self {
        PcieParams {
            gen: LinkGen::Gen3,
            lanes: 4,
            uplink_lanes: 16,
            max_payload: 4096,
            rc_route_ns: 200,
            switch_route_ns: 150,
            ep_device_ns: 300,
            propagation_ns: 10,
            rc_queue: 800,
            switch_queue: 64,
            ep_queue: 64,
        }
    }
}

impl PcieParams {
    /// Minimum latencies `(downstream, upstream)` of one inter-domain
    /// edge, in nanoseconds.
    ///
    /// Switch domains only ever talk to each other through the root
    /// complex (§6.1: data never migrates across switches, so the RC is
    /// the sole inter-domain boundary). Crossing it costs at least
    /// `rc_route_ns` of routing in either direction; uplink
    /// serialization and propagation happen *inside* the sending
    /// domain, so they pad real transfers but do not lower the floor.
    pub fn edge_lookahead_ns(&self) -> (Nanos, Nanos) {
        (self.rc_route_ns, self.rc_route_ns)
    }

    /// Conservative lookahead for sharding a run by switch domain: the
    /// minimum inter-domain edge latency. While the global clock sits at
    /// `t`, no domain can receive a cross-domain event before
    /// `t + lookahead`, so every domain may execute `[t, t + lookahead)`
    /// independently. Zero (an instantly routing RC) makes conservative
    /// sharding impossible and callers must fall back to serial
    /// execution.
    pub fn domain_lookahead_ns(&self) -> Nanos {
        let (down, up) = self.edge_lookahead_ns();
        down.min(up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_4x16() {
        let t = Topology::default();
        assert_eq!(t.total_clusters(), 64);
    }

    #[test]
    fn global_index_roundtrip() {
        let t = Topology {
            switches: 4,
            clusters_per_switch: 20,
        };
        for idx in 0..t.total_clusters() {
            let id = t.cluster_from_global(idx);
            assert_eq!(t.global_index(id), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cluster_from_global_bounds() {
        Topology::default().cluster_from_global(64);
    }

    #[test]
    fn iter_visits_every_cluster_once() {
        let t = Topology {
            switches: 2,
            clusters_per_switch: 3,
        };
        let ids: Vec<_> = t.iter_clusters().collect();
        assert_eq!(ids.len(), 6);
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 6);
    }

    #[test]
    fn siblings_stay_on_switch() {
        let t = Topology::default();
        let id = ClusterId {
            switch: 2,
            index: 5,
        };
        let sibs: Vec<_> = t.siblings(id).collect();
        assert_eq!(sibs.len(), 15);
        assert!(sibs.iter().all(|s| s.switch == 2 && s.index != 5));
    }

    #[test]
    fn cluster_id_display() {
        assert_eq!(
            ClusterId {
                switch: 1,
                index: 9
            }
            .to_string(),
            "s1c9"
        );
    }

    #[test]
    fn default_params_match_paper() {
        let p = PcieParams::default();
        assert_eq!(p.max_payload, 4096);
        assert!((650..=1000).contains(&p.rc_queue));
    }

    #[test]
    fn domain_lookahead_is_rc_routing_floor() {
        let p = PcieParams::default();
        assert_eq!(p.edge_lookahead_ns(), (200, 200));
        assert_eq!(p.domain_lookahead_ns(), 200);
        let instant = PcieParams {
            rc_route_ns: 0,
            ..p
        };
        assert_eq!(instant.domain_lookahead_ns(), 0);
    }
}
