//! Serialising PCI-E links.

use triplea_sim::trace::{TraceEventKind, TracePort};
use triplea_sim::{FifoResource, Nanos, Reservation, SimTime, SplitMix64};

/// Deterministic TLP-corruption injection for one link direction.
///
/// PCI-E detects a corrupted TLP via its LCRC and recovers in the data
/// link layer: the receiver withholds the ACK, the transmitter's replay
/// timer fires, and the packet is retransmitted. The model charges the
/// wire a second serialisation of the packet plus a fixed replay-timer
/// delay — later packets queue behind the retransmission.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PcieFaultProfile {
    /// Probability a transmitted TLP is corrupted and must be replayed.
    pub corrupt_prob: f64,
    /// Replay-timer delay charged on top of the retransmission.
    pub replay_ns: Nanos,
}

impl PcieFaultProfile {
    /// `true` when the profile can never fire: no RNG is consumed and
    /// transmission timing is untouched.
    pub fn is_quiet(&self) -> bool {
        self.corrupt_prob <= 0.0
    }
}

/// PCI-Express generation, determining per-lane bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkGen {
    /// 2.5 GT/s, 8b/10b: 250 MB/s per lane.
    Gen1,
    /// 5.0 GT/s, 8b/10b: 500 MB/s per lane.
    Gen2,
    /// 8.0 GT/s, 128b/130b: ~985 MB/s per lane.
    Gen3,
}

impl LinkGen {
    /// Effective data bandwidth per lane in bytes/second.
    pub fn bytes_per_sec_per_lane(self) -> u64 {
        match self {
            LinkGen::Gen1 => 250_000_000,
            LinkGen::Gen2 => 500_000_000,
            LinkGen::Gen3 => 984_615_384, // 8 GT/s * 128/130 / 8 bits
        }
    }
}

/// One simplex direction of a PCI-E link: a serially shared wire with
/// bandwidth-derived serialisation delay plus a fixed propagation delay.
#[derive(Clone, Debug)]
pub struct PcieLink {
    gen: LinkGen,
    lanes: u32,
    propagation: Nanos,
    res: FifoResource,
    packets: u64,
    bytes: u64,
    faults: PcieFaultProfile,
    fault_rng: SplitMix64,
    replays: u64,
    trace: TracePort,
}

impl PcieLink {
    /// Creates an idle link.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(gen: LinkGen, lanes: u32, propagation: Nanos) -> Self {
        assert!(lanes > 0, "a link needs at least one lane");
        PcieLink {
            gen,
            lanes,
            propagation,
            res: FifoResource::new("pcie-link"),
            packets: 0,
            bytes: 0,
            faults: PcieFaultProfile::default(),
            fault_rng: SplitMix64::new(0),
            replays: 0,
            trace: TracePort::off(),
        }
    }

    /// Connects this link direction to an event recorder; every TLP
    /// transmission (and replay) is reported through `port`, stamped at
    /// the instant serialisation actually began.
    pub fn attach_trace(&mut self, port: TracePort) {
        self.trace = port;
    }

    /// Arms deterministic TLP-corruption injection on this direction.
    pub fn set_faults(&mut self, profile: PcieFaultProfile, seed: u64) {
        self.faults = profile;
        self.fault_rng = SplitMix64::new(seed);
    }

    /// TLPs that were corrupted and replayed so far.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Link bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.gen.bytes_per_sec_per_lane() * self.lanes as u64
    }

    /// Pure serialisation time for `bytes` (no queueing, no propagation).
    pub fn serialize_nanos(&self, bytes: u64) -> Nanos {
        let bps = self.bytes_per_sec();
        (bytes as u128 * 1_000_000_000).div_ceil(bps as u128) as Nanos
    }

    /// Transmits `bytes` starting no earlier than `now`.
    ///
    /// The returned reservation's `end` is when the *last bit leaves the
    /// transmitter*; the packet is fully received at
    /// `end + propagation()`. `wait` is time spent queued behind earlier
    /// packets on this direction of the link.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let mut dur = self.serialize_nanos(bytes);
        let mut replayed = false;
        if self.faults.corrupt_prob > 0.0 && self.fault_rng.chance(self.faults.corrupt_prob) {
            // Corrupted TLP: the wire carries it twice, plus the replay
            // timer; everything behind this packet queues up.
            dur += self.serialize_nanos(bytes) + self.faults.replay_ns;
            self.replays += 1;
            replayed = true;
        }
        self.packets += 1;
        self.bytes += bytes;
        let r = self.res.reserve(now, dur);
        self.trace.emit_at(r.start, || TraceEventKind::LinkTx {
            bytes,
            wait_ns: r.wait,
            dur_ns: r.end - r.start,
            replayed,
        });
        r
    }

    /// Instant at which a transmission finishing at `tx_end` is fully
    /// received at the far end.
    pub fn arrival(&self, tx_end: SimTime) -> SimTime {
        tx_end + self.propagation
    }

    /// Fixed propagation delay of the link.
    pub fn propagation(&self) -> Nanos {
        self.propagation
    }

    /// Busy fraction since simulation start.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.res.utilization(now)
    }

    /// Busy fraction over the recent window.
    pub fn windowed_utilization(&self, now: SimTime) -> f64 {
        self.res.windowed_utilization(now)
    }

    /// Instant the link next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.res.free_at()
    }

    /// Packets transmitted so far.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Payload-plus-overhead bytes transmitted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes
    }
}

/// A full-duplex PCI-E link: two independent simplex directions, matching
/// the "dual-simplex" wording of the paper's §2.1.
#[derive(Clone, Debug)]
pub struct DuplexLink {
    /// Direction away from the root complex (requests).
    pub down: PcieLink,
    /// Direction toward the root complex (completions).
    pub up: PcieLink,
}

impl DuplexLink {
    /// Creates a duplex link with identical parameters per direction.
    pub fn new(gen: LinkGen, lanes: u32, propagation: Nanos) -> Self {
        DuplexLink {
            down: PcieLink::new(gen, lanes, propagation),
            up: PcieLink::new(gen, lanes, propagation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x4_bandwidth() {
        let l = PcieLink::new(LinkGen::Gen3, 4, 0);
        assert_eq!(l.bytes_per_sec(), 4 * 984_615_384);
        // 4 KiB at ~3.94 GB/s is ~1.04 us
        let t = l.serialize_nanos(4096);
        assert!((1_000..1_100).contains(&t), "t = {t}");
    }

    #[test]
    fn generations_ordered() {
        assert!(LinkGen::Gen1.bytes_per_sec_per_lane() < LinkGen::Gen2.bytes_per_sec_per_lane());
        assert!(LinkGen::Gen2.bytes_per_sec_per_lane() < LinkGen::Gen3.bytes_per_sec_per_lane());
    }

    #[test]
    fn transmissions_serialise() {
        let mut l = PcieLink::new(LinkGen::Gen1, 1, 0);
        let a = l.transmit(SimTime::ZERO, 250); // 1us at 250MB/s
        let b = l.transmit(SimTime::ZERO, 250);
        assert_eq!(a.wait, 0);
        assert_eq!(b.wait, 1_000);
        assert_eq!(l.packet_count(), 2);
        assert_eq!(l.bytes_sent(), 500);
    }

    #[test]
    fn arrival_adds_propagation() {
        let l = PcieLink::new(LinkGen::Gen3, 4, 150);
        assert_eq!(
            l.arrival(SimTime::from_nanos(1_000)),
            SimTime::from_nanos(1_150)
        );
        assert_eq!(l.propagation(), 150);
    }

    #[test]
    fn corrupted_tlp_replays_and_delays_followers() {
        let mut l = PcieLink::new(LinkGen::Gen1, 1, 0);
        l.set_faults(
            PcieFaultProfile {
                corrupt_prob: 1.0,
                replay_ns: 500,
            },
            3,
        );
        let a = l.transmit(SimTime::ZERO, 250); // 1us serialise, doubled + 500ns
        assert_eq!(a.end - a.start, 2_500);
        assert_eq!(l.replays(), 1);
        let b = l.transmit(SimTime::ZERO, 250);
        assert_eq!(b.wait, 2_500, "follower queues behind the replay");
    }

    #[test]
    fn corruption_pattern_is_seed_deterministic() {
        let profile = PcieFaultProfile {
            corrupt_prob: 0.25,
            replay_ns: 100,
        };
        let run = |seed: u64| {
            let mut l = PcieLink::new(LinkGen::Gen3, 4, 0);
            l.set_faults(profile, seed);
            for _ in 0..200 {
                l.transmit(SimTime::ZERO, 4096);
            }
            (l.replays(), l.free_at())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0);
        let (replays, _) = run(5);
        assert!(replays > 0 && replays < 200);
    }

    #[test]
    fn quiet_fault_profile_changes_nothing() {
        let mut armed = PcieLink::new(LinkGen::Gen2, 2, 10);
        armed.set_faults(PcieFaultProfile::default(), 77);
        let mut plain = PcieLink::new(LinkGen::Gen2, 2, 10);
        for i in 0..50 {
            let x = armed.transmit(SimTime::from_nanos(i * 13), 700);
            let y = plain.transmit(SimTime::from_nanos(i * 13), 700);
            assert_eq!(x, y);
        }
        assert_eq!(armed.replays(), 0);
    }

    #[test]
    fn duplex_directions_independent() {
        let mut d = DuplexLink::new(LinkGen::Gen1, 1, 0);
        d.down.transmit(SimTime::ZERO, 250);
        let up = d.up.transmit(SimTime::ZERO, 250);
        assert_eq!(up.wait, 0, "up direction unaffected by down traffic");
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        PcieLink::new(LinkGen::Gen3, 0, 0);
    }
}
