//! The three PCI-E device roles of the array fabric.

use triplea_sim::Nanos;

use crate::flow::CreditQueue;
use crate::link::DuplexLink;
use crate::topology::PcieParams;

/// The PCI-E root complex: generates transactions on behalf of hosts and
/// routes between its ports (paper §2.1). Holds the array's front-end
/// queue, whose occupancy limit the paper sets to 650–1000 entries.
#[derive(Clone, Debug)]
pub struct RootComplex {
    /// Front-end transaction queue (bounded).
    pub queue: CreditQueue,
    /// Routing latency per packet.
    pub route_ns: Nanos,
}

impl RootComplex {
    /// Creates a root complex from fabric parameters.
    pub fn new(params: &PcieParams) -> Self {
        RootComplex {
            queue: CreditQueue::new("rc", params.rc_queue),
            route_ns: params.rc_route_ns,
        }
    }
}

/// A PCI-E switch: virtual bridges between one upstream port (toward the
/// RC) and many downstream ports (toward cluster endpoints), forwarding
/// packets by address routing (paper §2.1, Figure 2).
///
/// Every virtual bridge (downstream port) has its *own* virtual-channel
/// buffer, as in real PCI-E switches — a congested endpoint exhausts only
/// its own port's credits and cannot head-of-line-block traffic bound for
/// sibling ports.
#[derive(Clone, Debug)]
pub struct Switch {
    /// Per-downstream-port virtual-channel buffers.
    pub port_queues: Vec<CreditQueue>,
    /// Link to the root complex.
    pub uplink: DuplexLink,
    /// Links to the cluster endpoints, one per downstream port.
    pub downlinks: Vec<DuplexLink>,
    /// Routing latency per packet.
    pub route_ns: Nanos,
}

impl Switch {
    /// Creates a switch with `ports` downstream ports, each with
    /// `params.switch_queue` buffer entries.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    pub fn new(params: &PcieParams, ports: u32) -> Self {
        assert!(ports > 0, "a switch needs downstream ports");
        Switch {
            port_queues: (0..ports)
                .map(|_| CreditQueue::new("switch-port", params.switch_queue))
                .collect(),
            uplink: DuplexLink::new(params.gen, params.uplink_lanes, params.propagation_ns),
            downlinks: (0..ports)
                .map(|_| DuplexLink::new(params.gen, params.lanes, params.propagation_ns))
                .collect(),
            route_ns: params.switch_route_ns,
        }
    }

    /// Number of downstream ports.
    pub fn port_count(&self) -> u32 {
        self.downlinks.len() as u32
    }
}

/// A cluster's PCI-E endpoint (paper §3.4, Figure 4): device layers that
/// dis/assemble packets, bounded up/downstream buffers, and control logic
/// (the HAL lives host-side in `triplea-ftl`).
#[derive(Clone, Debug)]
pub struct Endpoint {
    /// Downstream buffer: requests admitted into the cluster but not yet
    /// completed by the flash backend.
    pub queue: CreditQueue,
    /// Device-layer latency per packet (strip/add headers, CRC).
    pub device_ns: Nanos,
}

impl Endpoint {
    /// Creates an endpoint from fabric parameters.
    pub fn new(params: &PcieParams) -> Self {
        Endpoint {
            queue: CreditQueue::new("ep", params.ep_queue),
            device_ns: params.ep_device_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Admission;
    use triplea_sim::SimTime;

    #[test]
    fn rc_queue_bounded_by_params() {
        let rc = RootComplex::new(&PcieParams::default());
        assert_eq!(rc.queue.capacity(), 800);
        assert_eq!(rc.route_ns, 200);
    }

    #[test]
    fn switch_has_requested_ports() {
        let sw = Switch::new(&PcieParams::default(), 16);
        assert_eq!(sw.port_count(), 16);
        assert_eq!(sw.port_queues.len(), 16);
        assert_eq!(sw.port_queues[0].capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "downstream ports")]
    fn switch_zero_ports_panics() {
        Switch::new(&PcieParams::default(), 0);
    }

    #[test]
    fn endpoint_admission_and_backpressure() {
        let mut ep = Endpoint::new(&PcieParams {
            ep_queue: 2,
            ..PcieParams::default()
        });
        assert_eq!(ep.queue.admit(1), Admission::Admitted);
        assert_eq!(ep.queue.admit(2), Admission::Admitted);
        assert_eq!(ep.queue.admit(3), Admission::Queued);
    }

    #[test]
    fn uplink_is_wider_than_endpoint_links() {
        let sw = Switch::new(&PcieParams::default(), 4);
        assert!(
            sw.uplink.up.bytes_per_sec() > sw.downlinks[0].up.bytes_per_sec() * 3,
            "uplink should aggregate a whole switch's traffic"
        );
    }

    #[test]
    fn switch_links_are_independent_resources() {
        let mut sw = Switch::new(&PcieParams::default(), 2);
        sw.downlinks[0].down.transmit(SimTime::ZERO, 4096);
        let other = sw.downlinks[1].down.transmit(SimTime::ZERO, 4096);
        assert_eq!(other.wait, 0);
        let up = sw.uplink.up.transmit(SimTime::ZERO, 4096);
        assert_eq!(up.wait, 0);
    }
}
