//! Credit-based flow control: virtual-channel buffers.
//!
//! Paper §2.1, "Flow Control": every PCI-E device implements a virtual
//! channel buffer; receivers advertise credits and transmitters send only
//! when space exists, otherwise the packet stalls in the upstream queue.
//! [`CreditQueue`] models one such buffer. The simulator's event loop
//! holds the waiting request IDs and is woken through the value returned
//! by [`CreditQueue::release`].

use std::collections::VecDeque;

use triplea_sim::trace::{TraceEventKind, TracePort};

/// Result of attempting to enter a [`CreditQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A credit was available; the holder occupies one slot.
    Admitted,
    /// The buffer is full; the ID was parked in FIFO order and will be
    /// handed a slot by a future [`CreditQueue::release`].
    Queued,
}

/// A bounded virtual-channel buffer with FIFO hand-off of freed credits.
///
/// # Example
///
/// ```
/// use triplea_pcie::{Admission, CreditQueue};
///
/// let mut q = CreditQueue::new("ep", 1);
/// assert_eq!(q.admit(10), Admission::Admitted);
/// assert_eq!(q.admit(11), Admission::Queued);
/// // releasing the slot hands it straight to the waiter
/// assert_eq!(q.release(), Some(11));
/// assert_eq!(q.release(), None);
/// assert!(q.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct CreditQueue {
    name: &'static str,
    capacity: usize,
    occupied: usize,
    waiters: VecDeque<u64>,
    high_watermark: usize,
    total_admitted: u64,
    total_queued: u64,
    full_events: u64,
    trace: TracePort,
}

impl CreditQueue {
    /// Creates a buffer with `capacity` credits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "credit queue needs capacity");
        CreditQueue {
            name,
            capacity,
            occupied: 0,
            waiters: VecDeque::new(),
            high_watermark: 0,
            total_admitted: 0,
            total_queued: 0,
            full_events: 0,
            trace: TracePort::off(),
        }
    }

    /// Connects this buffer to an event recorder; admissions that find
    /// the buffer full are reported through `port` at the recorder clock.
    pub fn attach_trace(&mut self, port: TracePort) {
        self.trace = port;
    }

    /// Requests a credit for `id`. On `Queued`, the caller must suspend
    /// `id` until [`CreditQueue::release`] returns it.
    pub fn admit(&mut self, id: u64) -> Admission {
        if self.occupied < self.capacity {
            self.occupied += 1;
            self.high_watermark = self.high_watermark.max(self.occupied);
            self.total_admitted += 1;
            Admission::Admitted
        } else {
            self.full_events += 1;
            self.total_queued += 1;
            self.waiters.push_back(id);
            self.trace.emit(|| TraceEventKind::QueueFull {
                occupied: self.occupied,
                waiting: self.waiters.len(),
            });
            Admission::Queued
        }
    }

    /// Returns one credit. If a waiter is parked, the credit passes
    /// directly to it (occupancy unchanged) and its ID is returned so the
    /// event loop can resume it; otherwise occupancy drops.
    pub fn release(&mut self) -> Option<u64> {
        debug_assert!(self.occupied > 0, "release without admit");
        if let Some(id) = self.waiters.pop_front() {
            self.total_admitted += 1;
            Some(id)
        } else {
            self.occupied -= 1;
            None
        }
    }

    /// Discards every held credit and parked waiter — a power cycle of
    /// the owning device. The buffer's *contents* are volatile; its
    /// lifetime statistics (watermarks, admission totals) describe
    /// history and survive so post-mortem reports stay complete.
    pub fn power_cycle(&mut self) {
        self.occupied = 0;
        self.waiters.clear();
    }

    /// Removes a parked waiter (e.g. a cancelled request). Returns `true`
    /// if it was found.
    pub fn cancel_waiter(&mut self, id: u64) -> bool {
        if let Some(pos) = self.waiters.iter().position(|&w| w == id) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Credits currently held.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Total credits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// IDs parked waiting for a credit.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// `true` when every credit is held.
    pub fn is_full(&self) -> bool {
        self.occupied >= self.capacity
    }

    /// `true` when no credit is held and nobody waits.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0 && self.waiters.is_empty()
    }

    /// Peak occupancy observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Number of admissions that found the buffer full.
    pub fn full_events(&self) -> u64 {
        self.full_events
    }

    /// Total IDs ever granted a credit.
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// Total IDs that had to park.
    pub fn total_queued(&self) -> u64 {
        self.total_queued
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The parked waiter IDs in FIFO order — the paper's
    /// *queue-examination* laggard detector walks exactly these stalled
    /// entries (§4.2, Figure 8).
    pub fn waiter_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.waiters.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity() {
        let mut q = CreditQueue::new("q", 3);
        for id in 0..3 {
            assert_eq!(q.admit(id), Admission::Admitted);
        }
        assert!(q.is_full());
        assert_eq!(q.admit(3), Admission::Queued);
        assert_eq!(q.occupancy(), 3);
        assert_eq!(q.waiting(), 1);
    }

    #[test]
    fn release_hands_credit_to_waiters_fifo() {
        let mut q = CreditQueue::new("q", 1);
        q.admit(1);
        q.admit(2);
        q.admit(3);
        assert_eq!(q.release(), Some(2));
        assert_eq!(q.release(), Some(3));
        assert_eq!(q.release(), None);
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    fn occupancy_constant_while_waiters_drain() {
        let mut q = CreditQueue::new("q", 2);
        q.admit(1);
        q.admit(2);
        q.admit(3);
        assert_eq!(q.occupancy(), 2);
        q.release(); // slot passes to 3
        assert_eq!(q.occupancy(), 2, "credit transferred, not freed");
    }

    #[test]
    fn cancel_waiter_removes_only_target() {
        let mut q = CreditQueue::new("q", 1);
        q.admit(1);
        q.admit(2);
        q.admit(3);
        assert!(q.cancel_waiter(2));
        assert!(!q.cancel_waiter(2));
        assert_eq!(q.release(), Some(3));
    }

    #[test]
    fn statistics_track_traffic() {
        let mut q = CreditQueue::new("q", 1);
        q.admit(1);
        q.admit(2);
        q.release();
        assert_eq!(q.total_admitted(), 2);
        assert_eq!(q.total_queued(), 1);
        assert_eq!(q.full_events(), 1);
        assert_eq!(q.high_watermark(), 1);
        assert_eq!(q.name(), "q");
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        CreditQueue::new("q", 0);
    }
}
