//! Transaction-layer packets.

/// The TLP kinds the flash array exchanges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TlpKind {
    /// Memory read request (no payload).
    MemRead,
    /// Memory write request (carries payload).
    MemWrite,
    /// Completion with data (carries payload).
    Completion,
}

/// A transaction-layer packet, sized for wire-time computation.
///
/// Per-packet overhead models PCI-E 3.0 framing: 2 B start + 2 B sequence
/// plus 12 B TLP header, 4 B LCRC, and 4 B end/framing = 24 B (paper §3.4:
/// the endpoint's device layers strip exactly these header/sequence/CRC
/// fields of each layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tlp {
    kind: TlpKind,
    payload: u32,
}

/// Framing + header + CRC bytes added to every TLP on the wire.
pub const TLP_OVERHEAD_BYTES: u32 = 24;

impl Tlp {
    /// A read request (header only).
    pub fn mem_read() -> Self {
        Tlp {
            kind: TlpKind::MemRead,
            payload: 0,
        }
    }

    /// A posted write carrying `payload` bytes.
    pub fn mem_write(payload: u32) -> Self {
        Tlp {
            kind: TlpKind::MemWrite,
            payload,
        }
    }

    /// A completion-with-data TLP answering a read of `payload` bytes.
    pub fn mem_read_completion(payload: u32) -> Self {
        Tlp {
            kind: TlpKind::Completion,
            payload,
        }
    }

    /// Packet kind.
    pub fn kind(&self) -> TlpKind {
        self.kind
    }

    /// Payload bytes carried.
    pub fn payload_bytes(&self) -> u32 {
        self.payload
    }

    /// Total bytes on the wire (payload + framing overhead).
    pub fn wire_bytes(&self) -> u32 {
        self.payload + TLP_OVERHEAD_BYTES
    }

    /// Splits a transfer of `total` payload bytes into TLPs no larger
    /// than `max_payload` each (PCI-E 3.0 max payload is 4 KB, §5.2).
    ///
    /// # Panics
    ///
    /// Panics if `max_payload == 0`.
    pub fn segment(kind: TlpKind, total: u64, max_payload: u32) -> Vec<Tlp> {
        assert!(max_payload > 0, "max payload must be positive");
        if total == 0 {
            return vec![Tlp { kind, payload: 0 }];
        }
        let mut out = Vec::new();
        let mut remaining = total;
        while remaining > 0 {
            let chunk = remaining.min(max_payload as u64) as u32;
            out.push(Tlp {
                kind,
                payload: chunk,
            });
            remaining -= chunk as u64;
        }
        out
    }

    /// Wire bytes for a `total`-byte transfer after segmentation.
    pub fn segmented_wire_bytes(kind: TlpKind, total: u64, max_payload: u32) -> u64 {
        Tlp::segment(kind, total, max_payload)
            .iter()
            .map(|t| t.wire_bytes() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_overhead() {
        assert_eq!(Tlp::mem_read().wire_bytes(), 24);
        assert_eq!(Tlp::mem_write(4096).wire_bytes(), 4120);
        assert_eq!(Tlp::mem_read_completion(512).wire_bytes(), 536);
    }

    #[test]
    fn segmentation_respects_max_payload() {
        let tlps = Tlp::segment(TlpKind::MemWrite, 10_000, 4096);
        assert_eq!(tlps.len(), 3);
        assert_eq!(tlps[0].payload_bytes(), 4096);
        assert_eq!(tlps[2].payload_bytes(), 10_000 - 2 * 4096);
        let total: u64 = tlps.iter().map(|t| t.payload_bytes() as u64).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn zero_byte_transfer_is_one_header() {
        let tlps = Tlp::segment(TlpKind::MemRead, 0, 4096);
        assert_eq!(tlps.len(), 1);
        assert_eq!(tlps[0].wire_bytes(), 24);
    }

    #[test]
    fn segmented_wire_bytes_adds_per_packet_overhead() {
        // 8192 bytes at 4096 max payload: 2 packets -> 2x24 overhead
        assert_eq!(
            Tlp::segmented_wire_bytes(TlpKind::Completion, 8192, 4096),
            8192 + 48
        );
    }

    #[test]
    #[should_panic(expected = "max payload")]
    fn zero_max_payload_panics() {
        Tlp::segment(TlpKind::MemRead, 1, 0);
    }

    #[test]
    fn kind_accessor() {
        assert_eq!(Tlp::mem_write(1).kind(), TlpKind::MemWrite);
    }
}
