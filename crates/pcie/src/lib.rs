//! PCI-Express fabric model — the interconnect of the Triple-A all-flash
//! array (paper §2.1, Figures 2 and 5).
//!
//! PCI-E is a dual-simplex, point-to-point serial interconnect. The model
//! captures what the paper's simulator captured (§5.1): "PCI-E data
//! movement delay, switching and routing latencies, and I/O request
//! contention cycles":
//!
//! * [`Tlp`] — transaction-layer packets with realistic wire overhead.
//! * [`PcieLink`] / [`DuplexLink`] — serialising links with generation/
//!   lane-derived bandwidth and propagation delay.
//! * [`CreditQueue`] — virtual-channel buffers with credit-based flow
//!   control: a transmitter may only send when the receiver has space,
//!   so full buffers back-pressure upstream (the "queue stall" times of
//!   the paper's Figure 15).
//! * [`Switch`], [`RootComplex`], [`Endpoint`] — the three device roles,
//!   with address routing over a configurable [`Topology`].
//!
//! # Example
//!
//! ```
//! use triplea_pcie::{PcieLink, LinkGen, Tlp};
//! use triplea_sim::SimTime;
//!
//! let mut link = PcieLink::new(LinkGen::Gen3, 4, 100);
//! let tlp = Tlp::mem_read_completion(4096);
//! let r = link.transmit(SimTime::ZERO, tlp.wire_bytes() as u64);
//! assert!(r.end > r.start);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod flow;
mod link;
mod tlp;
mod topology;

pub use device::{Endpoint, RootComplex, Switch};
pub use flow::{Admission, CreditQueue};
pub use link::{DuplexLink, LinkGen, PcieFaultProfile, PcieLink};
pub use tlp::{Tlp, TlpKind};
pub use topology::{ClusterId, PcieParams, Topology};
