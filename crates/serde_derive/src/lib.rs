//! Offline stub of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! Implemented directly on `proc_macro` token streams (the build
//! environment has no `syn`/`quote`), which bounds the supported shapes
//! to what the workspace's report types actually are:
//!
//! * structs with named fields (any visibility, attributes ignored);
//! * newtype structs (`struct SimTime(u64);`) — serialized transparently
//!   as the inner value;
//! * enums with only unit variants — serialized as the variant name.
//!
//! Generics, tuple structs with more than one field, and data-carrying
//! enum variants are rejected with a compile-time panic naming the
//! offending type. `#[serde(...)]` attributes are not interpreted.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the stub's `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ty = parse(input);
    gen_serialize(&ty).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (the stub's `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ty = parse(input);
    gen_deserialize(&ty).parse().expect("generated impl parses")
}

/// The shapes the stub supports.
enum Shape {
    /// Named-field struct: the field identifiers in declaration order.
    Struct(Vec<String>),
    /// One-field tuple struct.
    Newtype,
    /// Unit-variant enum: the variant identifiers.
    Enum(Vec<String>),
}

struct Ty {
    name: String,
    shape: Shape,
}

/// Splits a derive input into the type name and its shape.
fn parse(input: TokenStream) -> Ty {
    let mut iter = input.into_iter().peekable();
    // Item-level attributes and visibility before `struct` / `enum`.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(w)) => {
                let w = w.to_string();
                if w == "struct" || w == "enum" {
                    break w;
                }
                // `pub`, `pub(crate)`, ...: skip a following paren group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            other => panic!("serde_derive stub: unexpected token {other:?}"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    match iter.next() {
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            let shape = if kind == "struct" {
                Shape::Struct(named_fields(&name, body.stream()))
            } else {
                Shape::Enum(unit_variants(&name, body.stream()))
            };
            Ty { name, shape }
        }
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(kind, "struct", "serde_derive stub: bad enum body in {name}");
            let n = tuple_field_count(body.stream());
            assert!(
                n == 1,
                "serde_derive stub: {name} has {n} tuple fields; only newtypes are supported"
            );
            Ty {
                name,
                shape: Shape::Newtype,
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive stub: {name} is generic, which is unsupported")
        }
        other => panic!("serde_derive stub: unsupported body for {name}: {other:?}"),
    }
}

/// Field identifiers of a named-field struct body, in order.
fn named_fields(ty: &str, body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field attributes and visibility.
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(w)) if w.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("serde_derive stub: unexpected token in {ty}: {other:?}"),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected ':' after {ty}.{name}, got {other:?}"),
        }
        fields.push(name);
        // Skip the type: everything up to a comma outside angle brackets.
        // `<`/`>` are plain puncts (not groups), so track their depth.
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
}

/// Number of fields in a tuple-struct body (trailing comma tolerated).
fn tuple_field_count(body: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut pending = false;
    let mut angle = 0i32;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += usize::from(pending);
                pending = false;
            }
            _ => pending = true,
        }
    }
    fields + usize::from(pending)
}

/// Variant identifiers of a unit-variant enum body.
fn unit_variants(ty: &str, body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        match iter.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
            }
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                match iter.next() {
                    None => return variants,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                        "serde_derive stub: explicit discriminants in {ty} are unsupported"
                    ),
                    Some(TokenTree::Group(_)) => panic!(
                        "serde_derive stub: {ty}::{} carries data; only unit variants are supported",
                        variants.last().unwrap()
                    ),
                    other => panic!("serde_derive stub: unexpected token in {ty}: {other:?}"),
                }
            }
            other => panic!("serde_derive stub: unexpected token in {ty}: {other:?}"),
        }
    }
}

fn gen_serialize(ty: &Ty) -> String {
    let name = &ty.name;
    let body = match &ty.shape {
        Shape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "::serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(ty: &Ty) -> String {
    let name = &ty.name;
    let body = match &ty.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Newtype => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }},\n\
                 other => ::std::result::Result::Err(\
                 ::serde::Error::type_mismatch(\"{name} string\", other)),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
