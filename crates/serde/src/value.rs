//! The in-memory data model shared by the `serde` and `serde_json`
//! stubs.

use std::fmt;

/// A JSON-shaped value tree.
///
/// Objects keep **insertion order** (a `Vec` of pairs, like
/// `serde_json`'s `preserve_order` feature): rendering the same data
/// twice yields byte-identical text, which the golden-snapshot suite
/// depends on.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (non-negative integers parse as [`Value::U64`]).
    I64(i64),
    /// A floating-point number (always rendered with `.` or exponent).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As f64, accepting any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// As u64 (only for non-negative integer values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Member of an object, erroring with the key name when missing —
    /// the accessor derive-generated `from_value` impls use.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::msg(format!("missing field {key:?} in {}", self.kind())))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object member lookup; yields [`Value::Null`] when absent, like
    /// real `serde_json`.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying `message`.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, got Y" constructor.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error::msg(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_lookup_preserves_first_match() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Bool(true)),
        ]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v["b"], Value::Bool(true));
        assert_eq!(v["missing"], Value::Null);
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn index_arrays() {
        let v = Value::Array(vec![Value::U64(7)]);
        assert_eq!(v[0], Value::U64(7));
        assert_eq!(v[9], Value::Null);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::U64(3).as_f64(), Some(3.0));
        assert_eq!(Value::I64(-3).as_u64(), None);
        assert_eq!(Value::F64(1.5).as_u64(), None);
    }
}
