//! Offline, deterministic subset of the [serde](https://docs.rs/serde)
//! API.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this vendored stub provides the surface the workspace uses:
//!
//! * the [`Serialize`] / [`Deserialize`] traits, reduced from serde's
//!   visitor architecture to a single in-memory data model ([`Value`],
//!   re-exported by the companion `serde_json` stub);
//! * `#[derive(Serialize, Deserialize)]` via the vendored
//!   `serde_derive` proc-macro for named-field structs, newtype
//!   structs, and unit-variant enums;
//! * impls for the primitives, `String`, `Option<T>`, `Vec<T>`, and
//!   tuples the workspace's report types contain. `u128` serializes as
//!   a decimal string so histogram sums round-trip losslessly through
//!   JSON.
//!
//! Object keys keep insertion order (like `serde_json`'s
//! `preserve_order` feature), which is what makes rendered artifacts
//! byte-stable.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Error, Value};

/// A type that can convert itself into the [`Value`] data model.
///
/// Collapsed from serde's `Serializer` visitor pair to one method; the
/// derive macro generates field-by-field implementations.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => {
                        i64::try_from(*n).map_err(|_| Error::msg(format!("{n} overflows i64")))?
                    }
                    other => return Err(Error::type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    /// Decimal string: JSON numbers cannot hold a u128 losslessly.
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::msg(format!("bad u128 literal {s:?}"))),
            Value::U64(n) => Ok(*n as u128),
            other => Err(Error::type_mismatch("u128", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::type_mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! tuple_serde {
    ($(($($t:ident . $idx:tt),+));+ $(;)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return Err(Error::type_mismatch("tuple array", other)),
                };
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::msg(format!(
                        "tuple length mismatch: want {want}, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

tuple_serde! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
        let big: u128 = u128::MAX - 3;
        assert_eq!(u128::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn integers_accept_cross_signed_values() {
        assert_eq!(u32::from_value(&Value::I64(9)).unwrap(), 9);
        assert_eq!(i32::from_value(&Value::U64(9)).unwrap(), 9);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
        let p = (3u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&p.to_value()).unwrap(), p);
    }

    #[test]
    fn f64_accepts_integer_values() {
        // "1.0" may print as an integer after formatting round-trips.
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
    }
}
