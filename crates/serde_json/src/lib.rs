//! Offline, deterministic subset of the
//! [serde_json](https://docs.rs/serde_json) API.
//!
//! Backed by the vendored `serde` stub's [`Value`] data model. Two
//! properties matter to the golden-snapshot suite and are guaranteed
//! here:
//!
//! * **Byte-stable output.** Object keys keep insertion order and
//!   floats render via Rust's shortest-round-trip formatter (with a
//!   `.0` suffix forced onto integral values), so equal `Value` trees
//!   always produce identical text.
//! * **Lossless round-trips.** `from_str(&to_string(v)) == v` for every
//!   tree the workspace produces: integers stay integers, floats
//!   re-parse to the same bits, `u128` travels as a decimal string.
//!
//! Non-finite floats are rejected at serialization time (JSON has no
//! representation for them), matching real serde_json's behaviour.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Value};
use serde::{Deserialize, Serialize};

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indent, trailing
/// newline — the artifact format under `results/`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out)?;
    out.push('\n');
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg(format!("non-finite float {x} has no JSON form")));
            }
            let s = format!("{x}");
            out.push_str(&s);
            // Keep the float-ness visible so the value re-parses as F64.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON parser over the full input.
fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::msg(format!(
            "expected {:?} at byte {pos}",
            b as char,
            pos = *pos
        )))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(Error::msg("unexpected end of input"));
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Value::Null),
        b't' => parse_lit(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg(format!("bad array at byte {pos}", pos = *pos))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_at(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::msg(format!("bad object at byte {pos}", pos = *pos))),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(Error::msg(format!(
            "unexpected byte {:?} at {pos}",
            other as char,
            pos = *pos
        ))),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::msg(format!("bad literal at byte {pos}", pos = *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::msg(format!(
            "expected string at byte {pos}",
            pos = *pos
        )));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(Error::msg("unterminated string"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::msg("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error::msg("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::msg("bad \\u code point"))?,
                        );
                    }
                    other => {
                        return Err(Error::msg(format!("bad escape \\{}", other as char)));
                    }
                }
            }
            _ => {
                // Re-synchronize on UTF-8 boundaries: push the whole char.
                let start = *pos - 1;
                let s = std::str::from_utf8(&bytes[start..])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos = start + c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if is_float {
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("bad number {text:?}")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Value::I64)
            .map_err(|_| Error::msg(format!("bad number {text:?}")))
    } else {
        text.parse::<u64>()
            .map(Value::U64)
            .map_err(|_| Error::msg(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str("fig09 \"quoted\"\n".into())),
            ("count".into(), Value::U64(18446744073709551615)),
            ("delta".into(), Value::I64(-42)),
            ("ratio".into(), Value::F64(0.1)),
            ("whole".into(), Value::F64(2.0)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "rows".into(),
                Value::Array(vec![Value::U64(1), Value::F64(1.5)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ])
    }

    #[test]
    fn round_trip_is_lossless() {
        let v = sample();
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn output_is_stable() {
        let a = to_string_pretty(&sample()).unwrap();
        let b = to_string_pretty(&sample()).unwrap();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<Value>(&text).unwrap(), Value::F64(2.0));
    }

    #[test]
    fn shortest_float_repr_reparses_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX] {
            let text = to_string(&Value::F64(x)).unwrap();
            match from_str::<Value>(&text).unwrap() {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{text}"),
                other => panic!("{text} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        assert!(to_string(&Value::F64(f64::NAN)).is_err());
        assert!(to_string(&Value::F64(f64::INFINITY)).is_err());
    }

    #[test]
    fn parse_errors_name_the_byte() {
        let err = from_str::<Value>("{\"a\": 1,}").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }

    #[test]
    fn typed_round_trip_via_derive_traits() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
