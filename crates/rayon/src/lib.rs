//! Offline, deterministic subset of the [rayon](https://docs.rs/rayon) API.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this vendored stub provides exactly the surface the experiment
//! harness uses:
//!
//! * [`prelude`] with [`IntoParallelIterator`]/[`ParallelIterator`]
//!   implemented for `Vec<T>`, slices, and `Range<usize>`, plus
//!   [`ParallelIterator::map`] and `collect::<Vec<_>>()`;
//! * [`ThreadPoolBuilder`]/[`ThreadPool::install`] for scoped thread
//!   counts;
//! * [`current_num_threads`], honouring (in priority order) an
//!   installed pool, the `RAYON_NUM_THREADS` environment variable, and
//!   [`std::thread::available_parallelism`].
//!
//! Unlike real rayon there is no work stealing: a parallel iterator
//! materializes its items, spawns `current_num_threads()` scoped worker
//! threads that claim items through an atomic cursor, and collects the
//! results **in input order** regardless of completion order. That is
//! the exact contract the harness's determinism tests pin down.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel iterator will use on this thread:
/// the installed pool's size, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism, else 1.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        return installed;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (environment-derived) size.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker-thread count; `0` means "derive from the
    /// environment", as in real rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the stub; the `Result` mirrors
    /// rayon's signature so call sites read identically.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads,
        })
    }
}

/// Error type mirroring rayon's; the stub never produces one.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that pins the thread count of parallel iterators run inside
/// [`ThreadPool::install`]. Workers are spawned per iterator (scoped
/// threads), not kept alive — acceptable for batch workloads.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in force on the calling
    /// thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.threads));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(prev));
        result
    }

    /// The pinned thread count (0 = environment-derived).
    pub fn current_num_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            current_num_threads()
        }
    }
}

/// Runs `f` over `items`, returning outputs in input order. Items are
/// claimed through an atomic cursor by `current_num_threads()` scoped
/// workers, so *completion* order is arbitrary but the result vector
/// never is.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Hand out items through a cursor; each slot is filled exactly once.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// A materialized parallel iterator: items plus a deferred pipeline.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Minimal mirror of rayon's `ParallelIterator`.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consumes the iterator, returning its items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `op` (executed on the worker threads).
    fn map<R, F>(self, op: F) -> MappedDrive<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        MappedDrive { inner: self, op }
    }

    /// Collects into a container (only `Vec` is supported).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_vec(self.drive())
    }
}

/// A mapped parallel iterator; the map runs on worker threads at drive
/// time.
pub struct MappedDrive<I, F> {
    inner: I,
    op: F,
}

impl<I, R, F> ParallelIterator for MappedDrive<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map(self.inner.drive(), self.op)
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Collection target of [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Builds the container from items already in input order.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Mirror of rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type of the produced iterator.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Mirror of rayon's `IntoParallelRefIterator` (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the produced iterator.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Everything call sites need: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u64, 2, 3];
        let out: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(v.len(), 3); // still usable
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 7);
            assert_eq!(current_num_threads(), 3); // restored after nested install
        });
    }

    #[test]
    fn results_ordered_even_with_many_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..1000)
                .into_par_iter()
                .map(|i| {
                    if i % 97 == 0 {
                        std::thread::yield_now();
                    }
                    i
                })
                .collect()
        });
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }
}
