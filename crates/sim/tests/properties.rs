//! Property tests over the measurement instruments: merge equivalence,
//! percentile monotonicity, and windowed-utilization bounds.

use proptest::prelude::*;

use triplea_sim::stats::{Histogram, UtilizationTracker};
use triplea_sim::SimTime;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Merging two histograms is indistinguishable from recording the
    /// interleaved stream into one.
    #[test]
    fn merge_equals_interleaved_recording(
        xs in proptest::collection::vec(0u64..10_000_000, 0..64),
        ys in proptest::collection::vec(0u64..10_000_000, 0..64),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for (i, &v) in xs.iter().enumerate() {
            a.record(v);
            both.record(v);
            // Interleave: alternate streams where lengths allow.
            if let Some(&w) = ys.get(i) {
                b.record(w);
                both.record(w);
            }
        }
        for &w in ys.iter().skip(xs.len()) {
            b.record(w);
            both.record(w);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), both.count());
        prop_assert_eq!(a.max(), both.max());
        prop_assert_eq!(a.min(), both.min());
        prop_assert!((a.mean() - both.mean()).abs() < 1e-9);
        for p in [0u64, 25, 50, 90, 99, 100] {
            let p = p as f64 / 100.0;
            prop_assert_eq!(a.percentile(p), both.percentile(p));
        }
        prop_assert_eq!(a.cdf_points(), both.cdf_points());
    }

    /// Percentiles are monotone in `p`, bounded by `[min, max]`, and the
    /// top quantile is exactly the maximum.
    #[test]
    fn percentiles_monotone_in_p(
        xs in proptest::collection::vec(0u64..100_000_000, 1..128),
        cut in 1u64..100,
    ) {
        let mut h = Histogram::new();
        for &v in &xs {
            h.record(v);
        }
        let lo = h.percentile(cut as f64 / 200.0);
        let hi = h.percentile(cut as f64 / 100.0);
        prop_assert!(lo <= hi, "p is not monotone: {lo} > {hi}");
        prop_assert!(h.percentile(0.0) >= h.min());
        prop_assert_eq!(h.percentile(1.0), h.max());
        // Upper-bound contract: every percentile is >= the true
        // quantile of the recorded stream.
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * cut as f64 / 100.0).ceil() as usize)
            .clamp(1, sorted.len());
        prop_assert!(
            hi >= sorted[rank - 1],
            "percentile({}) = {} understates true quantile {}",
            cut as f64 / 100.0,
            hi,
            sorted[rank - 1]
        );
    }

    /// Windowed utilization stays within [0, 1] under arbitrary busy
    /// intervals and probe instants.
    #[test]
    fn windowed_utilization_bounded(
        window in 1u64..1_000_000,
        intervals in proptest::collection::vec((0u64..10_000_000, 0u64..5_000_000), 0..32),
        probes in proptest::collection::vec(0u64..20_000_000, 1..16),
    ) {
        let mut m = UtilizationTracker::with_window(window);
        // add_busy expects non-decreasing-ish starts in practice; feed
        // sorted starts like the simulator's FIFO reservations do.
        let mut sorted = intervals.clone();
        sorted.sort_unstable();
        for &(start, dur) in &sorted {
            m.add_busy(SimTime::from_nanos(start), dur);
        }
        for &t in &probes {
            let u = m.windowed_utilization(SimTime::from_nanos(t));
            prop_assert!((0.0..=1.0).contains(&u), "u = {u} out of [0,1]");
            let c = m.utilization(SimTime::from_nanos(t));
            prop_assert!((0.0..=1.0).contains(&c), "cumulative {c} out of [0,1]");
        }
    }
}
