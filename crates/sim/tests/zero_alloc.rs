//! Pins down the zero-cost contract of the disabled trace path and the
//! calendar queue's near-future fast path.
//!
//! Every component in the simulator carries a [`TracePort`] and calls
//! `emit` on hot paths; runs without a recorder must pay exactly one
//! branch per emit — no payload construction, no formatting, and (this
//! test's concern) **zero heap allocations**. Likewise, push/pop
//! traffic through an [`EventQueue`]'s active bucket must recycle its
//! buffers instead of allocating, and the cross-shard [`Outbox`]
//! send/drain cycle of the conservative executor must reuse its
//! per-destination buckets window after window.
//!
//! The test binary installs [`CountingAllocator`] as its global
//! allocator, so any allocation anywhere in the measured region is
//! counted — including ones hidden behind inlined library calls.

use triplea_alloc_counter::{measure, CountingAllocator};
use triplea_sim::trace::{TraceEventKind, TracePort};
use triplea_sim::{Envelope, EventQueue, Outbox, SimTime};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Asserts that `f` can run without a single heap allocation.
///
/// The counters are process-global, and the libtest harness keeps its
/// own threads (the sibling test, stdout capture) that allocate at
/// unpredictable instants — a single measurement would occasionally
/// blame `f` for a neighbour's allocation. So measure up to 16 times:
/// if the region is genuinely allocation-free, some quiet attempt
/// observes a zero delta; if `f` itself allocates, every attempt counts
/// it and the assertion fails with the last delta.
fn assert_zero_alloc(what: &str, mut f: impl FnMut()) {
    let mut last = measure(&mut f).1;
    for _ in 0..15 {
        if last.allocations == 0 {
            return;
        }
        last = measure(&mut f).1;
    }
    assert_eq!(
        last.allocations, 0,
        "{what} must not allocate (saw {} allocations, {} bytes)",
        last.allocations, last.bytes
    );
}

#[test]
fn disabled_recorder_emit_allocates_nothing() {
    let port = TracePort::off();
    // Warm up once so lazy runtime initialization (if any) is paid
    // outside the measured region.
    port.emit(|| TraceEventKind::MapMiss { lpn: 0 });

    assert_zero_alloc("disabled-recorder emit", || {
        for i in 0..100_000u64 {
            port.emit(|| TraceEventKind::Submit {
                req: i as u32,
                read: i % 2 == 0,
                lpn: i,
                pages: 4,
            });
            port.emit_at(SimTime::from_nanos(i), || TraceEventKind::Complete {
                req: i as u32,
                latency_ns: 100,
            });
        }
    });
}

#[test]
fn active_bucket_push_pop_allocates_nothing() {
    // The claim under test is the queue's documented fast path: a push
    // whose timestamp lands in the *active* bucket is a sorted insert
    // into the already-grown `current` buffer. (Ring slots for future
    // buckets do grow on first touch — that cost amortizes over the
    // ring's ~1 ms wrap in a real run and is not asserted here.)
    let mut q = EventQueue::new();
    // Grow the active-bucket buffer once, outside the measured region.
    for i in 0..2_048u64 {
        q.push(SimTime::ZERO, i);
    }
    while q.pop().is_some() {}

    assert_zero_alloc("active-bucket push/pop", || {
        let mut now = 0u64;
        for round in 0..64u64 {
            // Deltas of at most 7 ns over 64 rounds keep every event
            // inside the 1024 ns active bucket.
            for i in 0..1_024u64 {
                q.push(SimTime::from_nanos(now + (i * 7) % 8), round * 1_024 + i);
            }
            for _ in 0..1_024 {
                let (t, _) = q.pop().expect("queue holds what was pushed");
                now = t.as_nanos();
            }
        }
        assert!(q.is_empty());
    });
}

#[test]
fn cross_shard_mailbox_cycle_allocates_nothing() {
    // The sharded executor's per-window message exchange: every shard
    // pushes envelopes into its outbox buckets, the receiver drains them
    // into a scratch vector and sorts by the deterministic
    // `(at, seq, src)` key. Buckets and scratch keep their capacity
    // across windows, so the steady state must be allocation-free.
    const SHARDS: usize = 4;
    let mut out: Outbox<u64> = Outbox::new(0, SHARDS);
    let mut scratch: Vec<Envelope<u64>> = Vec::new();
    // Grow every destination bucket and the scratch buffer once,
    // outside the measured region.
    for i in 0..1_024u64 {
        for dst in 0..SHARDS {
            out.send(dst, SimTime::from_nanos(i), i);
        }
    }
    for dst in 0..SHARDS {
        out.drain_to(dst, &mut scratch);
    }
    scratch.clear();

    assert_zero_alloc("cross-shard mailbox push/drain", || {
        for window in 0..64u64 {
            for i in 0..1_024u64 {
                // Spread sends across destinations with non-monotonic
                // timestamps so the sort has real work to do.
                out.send(
                    (i % SHARDS as u64) as usize,
                    SimTime::from_nanos(window * 1_024 + (i * 7) % 512),
                    i,
                );
            }
            for dst in 0..SHARDS {
                scratch.clear();
                out.drain_to(dst, &mut scratch);
                scratch.sort_unstable_by_key(Envelope::order_key);
            }
        }
        assert_eq!(out.pending(), 0);
    });
}
