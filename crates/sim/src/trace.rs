//! Array-wide event tracing and the metric/probe registry.
//!
//! The simulator's components emit typed [`TraceEvent`]s through
//! [`TracePort`]s into one shared [`Recorder`] — a bounded ring buffer
//! that keeps the most recent events of a run. Tracing is strictly
//! opt-in: a detached port ([`TracePort::off`], the default every
//! component is built with) reduces every emit site to a single branch
//! on `Option::None`, the closure carrying the payload is never invoked,
//! and no allocation or formatting happens. Runs with tracing disabled
//! are therefore byte-identical to runs on builds that predate tracing
//! (the golden-snapshot suite pins this down).
//!
//! At the end of a run the engine harvests the recorder plus a
//! [`MetricRegistry`] of per-component instruments (histograms,
//! utilization trackers, queue-depth time series) registered under
//! stable hierarchical names (`cluster.2.fimm.1.queue_depth`) into a
//! [`RunTrace`], which exports as byte-stable JSON and as Chrome
//! `trace_event` JSON loadable in `about:tracing` / Perfetto.
//!
//! # Determinism contract
//!
//! The simulation is single-threaded and deterministic, so the emitted
//! event stream — order, timestamps, sequence numbers — is a pure
//! function of the configuration and trace. Both exports are built with
//! integer-only formatting, so the artifact bytes are identical across
//! platforms and across any harness thread count.

use std::sync::{Arc, Mutex};

use crate::stats::{Histogram, TimeSeries};
use crate::time::{Nanos, SimTime};

/// Coarse event categories, used to gate emission per [`TraceConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceCategory {
    /// Request lifecycle: submit, dispatch, complete.
    Lifecycle,
    /// ONFi bus arbitration and transfers.
    Bus,
    /// PCI-E link transmissions and flow control.
    Link,
    /// NAND package operations (die reservations).
    Flash,
    /// Autonomic detector samples, laggard/escalation decisions.
    Autonomic,
    /// Migration / reshaping / shadow-clone begin, commit, rollback.
    Migration,
    /// Injected faults firing anywhere in the stack.
    Fault,
    /// Garbage-collection activity.
    Gc,
    /// Crash-recovery activity: power loss, journal checkpoints and
    /// replay, hot-spare rebuild phases.
    Recovery,
}

/// What to record and how much to keep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events; older events are dropped (and
    /// counted) once the buffer is full.
    pub capacity: usize,
    /// Record request-lifecycle events.
    pub lifecycle: bool,
    /// Record ONFi bus events.
    pub bus: bool,
    /// Record PCI-E link/flow events.
    pub link: bool,
    /// Record NAND package events.
    pub flash: bool,
    /// Record autonomic detector events.
    pub autonomic: bool,
    /// Record migration/reshape events.
    pub migration: bool,
    /// Record fault injections.
    pub faults: bool,
    /// Record garbage-collection events.
    pub gc: bool,
    /// Record crash-recovery events (power loss, journal, rebuild).
    pub recovery: bool,
}

impl TraceConfig {
    /// Every category on, with the default 64 Ki-event ring.
    pub fn all() -> Self {
        TraceConfig {
            capacity: 65_536,
            lifecycle: true,
            bus: true,
            link: true,
            flash: true,
            autonomic: true,
            migration: true,
            faults: true,
            gc: true,
            recovery: true,
        }
    }

    /// Same categories, different ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// `true` when events of `cat` should be recorded.
    pub fn enabled(&self, cat: TraceCategory) -> bool {
        match cat {
            TraceCategory::Lifecycle => self.lifecycle,
            TraceCategory::Bus => self.bus,
            TraceCategory::Link => self.link,
            TraceCategory::Flash => self.flash,
            TraceCategory::Autonomic => self.autonomic,
            TraceCategory::Migration => self.migration,
            TraceCategory::Fault => self.faults,
            TraceCategory::Gc => self.gc,
            TraceCategory::Recovery => self.recovery,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::all()
    }
}

/// Which component emitted an event: the hierarchical position the
/// metric names and the Chrome-trace lanes are derived from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceScope {
    /// Global cluster index, or `u32::MAX` when array-wide.
    pub cluster: u32,
    /// FIMM index within the cluster, or `u32::MAX` when cluster-wide.
    pub fimm: u32,
    /// Free-form sub-unit (package index, switch index, …).
    pub unit: u32,
}

impl TraceScope {
    /// The array-wide (engine) scope.
    pub fn array() -> Self {
        TraceScope {
            cluster: u32::MAX,
            fimm: u32::MAX,
            unit: 0,
        }
    }

    /// Scope of one cluster.
    pub fn cluster(cluster: u32) -> Self {
        TraceScope {
            cluster,
            fimm: u32::MAX,
            unit: 0,
        }
    }

    /// Scope of one FIMM within a cluster.
    pub fn fimm(cluster: u32, fimm: u32) -> Self {
        TraceScope {
            cluster,
            fimm,
            unit: 0,
        }
    }

    /// This scope with the sub-unit set.
    pub fn unit(mut self, unit: u32) -> Self {
        self.unit = unit;
        self
    }
}

/// One typed trace event: the payload plus where and when it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event, in nanoseconds.
    pub at: Nanos,
    /// Emission sequence number (total order over the whole run).
    pub seq: u64,
    /// Emitting component.
    pub scope: TraceScope,
    /// The typed payload.
    pub kind: TraceEventKind,
}

/// The taxonomy of recorded events. Payloads are primitive-typed so the
/// `sim` crate stays free of higher-layer vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A host request entered the array.
    Submit {
        /// Request id (trace index).
        req: u32,
        /// `true` for reads, `false` for writes.
        read: bool,
        /// First logical page.
        lpn: u64,
        /// Request size in pages.
        pages: u32,
    },
    /// The root complex routed a request to its home cluster.
    Dispatch {
        /// Request id.
        req: u32,
        /// Mapping-cache miss: the dispatch paid a translation-page read.
        map_miss: bool,
    },
    /// The shared ONFi bus granted a reservation.
    BusAcquire {
        /// Arbitration wait before the grant, ns.
        wait_ns: Nanos,
        /// Reserved transfer duration, ns.
        dur_ns: Nanos,
        /// Payload bytes moved (0 for a command cycle).
        bytes: u64,
    },
    /// A NAND package started an operation on a die.
    FlashStart {
        /// Operation class: `"read"`, `"program"`, or `"erase"`.
        op: &'static str,
        /// Die index within the package.
        die: u32,
        /// Time spent queued behind the die, ns.
        die_wait_ns: Nanos,
        /// Cell-operation duration, ns.
        dur_ns: Nanos,
    },
    /// A host request completed.
    Complete {
        /// Request id.
        req: u32,
        /// End-to-end latency, ns.
        latency_ns: Nanos,
    },
    /// A PCI-E link transmitted a TLP batch.
    LinkTx {
        /// Payload bytes.
        bytes: u64,
        /// Wait behind earlier transmissions, ns.
        wait_ns: Nanos,
        /// Serialization time on the wire, ns.
        dur_ns: Nanos,
        /// The transfer was corrupted and replayed.
        replayed: bool,
    },
    /// A credit queue had to park an arrival (no credit left).
    QueueFull {
        /// Occupants at the time of the refusal.
        occupied: usize,
        /// Arrivals already waiting.
        waiting: usize,
    },
    /// An autonomic hot-cluster detector sample (Eq. 1).
    DetectorSample {
        /// Windowed bus utilization, in milli-units (0–1000).
        bus_util_milli: u32,
        /// Observed request flash latency, ns.
        latency_ns: Nanos,
        /// The sample crossed the hot threshold.
        hot: bool,
    },
    /// A FIMM was flagged as a laggard (Eq. 3 / queue examination).
    LaggardDetected,
    /// "All FIMMs are laggards" escalation to inter-cluster migration.
    Escalation,
    /// An inter-cluster migration began (shadow cloning starts).
    MigrationBegin {
        /// Destination cluster (global index).
        dst_cluster: u32,
        /// Pages claimed for the move.
        pages: u32,
    },
    /// An intra-cluster reshape began on a laggard FIMM.
    ReshapeBegin {
        /// FIMM the pages are moving to.
        target_fimm: u32,
        /// Pages claimed for the move.
        pages: u32,
    },
    /// One relocated page committed (clone-then-unlink switched readers).
    RelocCommit {
        /// The logical page that moved.
        lpn: u64,
    },
    /// One relocated page rolled back after a mid-copy fault.
    RelocRollback {
        /// The logical page whose clone was discarded.
        lpn: u64,
    },
    /// A stalled write was redirected to an adjacent FIMM.
    WriteRedirect {
        /// FIMM the write was redirected to.
        target_fimm: u32,
    },
    /// An injected fault fired.
    FaultInjected {
        /// Fault domain: `"flash"`, `"fimm"`, or `"pcie"`.
        domain: &'static str,
        /// Domain-specific detail (`"read-transient"`, `"dead"`, …).
        detail: &'static str,
    },
    /// Garbage collection ran one unit on a FIMM.
    GcRun {
        /// Live pages rewritten before the erase.
        valid_pages: u32,
    },
    /// A mapping-cache miss paid a translation-page flash read.
    MapMiss {
        /// The logical page whose translation missed.
        lpn: u64,
    },
    /// The array lost power: volatile state discarded, remount begins.
    PowerLoss {
        /// In-flight requests lost with the volatile queues.
        lost_requests: u64,
        /// Not-yet-arrived requests re-queued behind the remount.
        requeued: u64,
    },
    /// The FTL journal took a checkpoint and truncated itself.
    JournalCheckpoint {
        /// Lifetime records appended when the checkpoint was taken.
        records: u64,
    },
    /// A mount-time recovery scan replayed the journal.
    JournalReplay {
        /// Flushed records replayed onto the checkpoint.
        replayed: u64,
        /// Un-flushed records lost with the cut.
        dropped: u64,
    },
    /// A hot-spare rebuild of a dead FIMM began.
    RebuildStart {
        /// Live pages to reconstruct onto the spare.
        pages: u64,
    },
    /// A hot-spare rebuild finished; the spare is in service.
    RebuildDone {
        /// Pages reconstructed.
        pages: u64,
        /// Wall-clock rebuild duration, ns.
        dur_ns: Nanos,
    },
    /// A federated volume fragment was routed to a member array
    /// (cross-array hop through the volume manager).
    FederationHop {
        /// Volume-level request id (trace index).
        req: u32,
        /// Member array the fragment was routed to.
        array: u32,
        /// Replica copy the fragment addressed.
        copy: u32,
    },
    /// A member array's cumulative p99 lagged the federation budget
    /// (the inter-array Eq. 3 analogue fired).
    FederationLaggard {
        /// The lagging member array.
        array: u32,
        /// Its observed p99, ns.
        p99_ns: Nanos,
        /// The federation SLA budget it violated, ns.
        budget_ns: Nanos,
    },
    /// An inter-array chunk migration began (shadow clone to a peer).
    FederationMigrationBegin {
        /// Volume chunk being cloned.
        chunk: u64,
        /// Source member array.
        from_array: u32,
        /// Destination member array.
        to_array: u32,
        /// Pages in the chunk.
        pages: u64,
    },
    /// An inter-array migration committed: the clone is fully durable on
    /// the peer and the mapper now reads the new placement.
    FederationMigrationCommit {
        /// The migrated volume chunk.
        chunk: u64,
        /// Source member array.
        from_array: u32,
        /// Destination member array.
        to_array: u32,
    },
    /// An inter-array migration aborted (clone I/O lost, e.g. to a power
    /// cut); the source placement stays live.
    FederationMigrationAbort {
        /// The chunk whose clone was discarded.
        chunk: u64,
        /// Source member array.
        from_array: u32,
        /// Destination member array.
        to_array: u32,
    },
    /// A read fragment lost to an array failure was re-issued against a
    /// surviving replica.
    FederationRetry {
        /// Volume-level request id.
        req: u32,
        /// The surviving array the retry was routed to.
        array: u32,
    },
}

impl TraceEventKind {
    /// The category this event is gated by.
    pub fn category(&self) -> TraceCategory {
        use TraceEventKind::*;
        match self {
            Submit { .. } | Dispatch { .. } | Complete { .. } => TraceCategory::Lifecycle,
            BusAcquire { .. } => TraceCategory::Bus,
            LinkTx { .. } | QueueFull { .. } => TraceCategory::Link,
            FlashStart { .. } => TraceCategory::Flash,
            DetectorSample { .. } | LaggardDetected | Escalation | MapMiss { .. } => {
                TraceCategory::Autonomic
            }
            MigrationBegin { .. }
            | ReshapeBegin { .. }
            | RelocCommit { .. }
            | RelocRollback { .. }
            | WriteRedirect { .. } => TraceCategory::Migration,
            FaultInjected { .. } => TraceCategory::Fault,
            GcRun { .. } => TraceCategory::Gc,
            PowerLoss { .. }
            | JournalCheckpoint { .. }
            | JournalReplay { .. }
            | RebuildStart { .. }
            | RebuildDone { .. }
            | FederationRetry { .. } => TraceCategory::Recovery,
            FederationHop { .. } => TraceCategory::Lifecycle,
            FederationLaggard { .. } => TraceCategory::Autonomic,
            FederationMigrationBegin { .. }
            | FederationMigrationCommit { .. }
            | FederationMigrationAbort { .. } => TraceCategory::Migration,
        }
    }

    /// Stable event name used in both exports.
    pub fn name(&self) -> &'static str {
        use TraceEventKind::*;
        match self {
            Submit { .. } => "submit",
            Dispatch { .. } => "dispatch",
            BusAcquire { .. } => "bus_acquire",
            FlashStart { .. } => "flash_start",
            Complete { .. } => "complete",
            LinkTx { .. } => "link_tx",
            QueueFull { .. } => "queue_full",
            DetectorSample { .. } => "detector_sample",
            LaggardDetected => "laggard_detected",
            Escalation => "escalation",
            MigrationBegin { .. } => "migration_begin",
            ReshapeBegin { .. } => "reshape_begin",
            RelocCommit { .. } => "reloc_commit",
            RelocRollback { .. } => "reloc_rollback",
            WriteRedirect { .. } => "write_redirect",
            FaultInjected { .. } => "fault_injected",
            GcRun { .. } => "gc_run",
            MapMiss { .. } => "map_miss",
            PowerLoss { .. } => "power_loss",
            JournalCheckpoint { .. } => "journal_checkpoint",
            JournalReplay { .. } => "journal_replay",
            RebuildStart { .. } => "rebuild_start",
            RebuildDone { .. } => "rebuild_done",
            FederationHop { .. } => "federation_hop",
            FederationLaggard { .. } => "federation_laggard",
            FederationMigrationBegin { .. } => "federation_migration_begin",
            FederationMigrationCommit { .. } => "federation_migration_commit",
            FederationMigrationAbort { .. } => "federation_migration_abort",
            FederationRetry { .. } => "federation_retry",
        }
    }

    /// Duration payload for events that represent an interval, ns.
    fn duration_ns(&self) -> Option<Nanos> {
        use TraceEventKind::*;
        match self {
            BusAcquire { dur_ns, .. } | FlashStart { dur_ns, .. } | LinkTx { dur_ns, .. } => {
                Some(*dur_ns)
            }
            Complete { latency_ns, .. } => Some(*latency_ns),
            RebuildDone { dur_ns, .. } => Some(*dur_ns),
            _ => None,
        }
    }

    /// `(key, value)` argument pairs, integer-valued, in stable order.
    fn args(&self) -> Vec<(&'static str, u64)> {
        use TraceEventKind::*;
        match self {
            Submit {
                req,
                read,
                lpn,
                pages,
            } => vec![
                ("req", *req as u64),
                ("read", *read as u64),
                ("lpn", *lpn),
                ("pages", *pages as u64),
            ],
            Dispatch { req, map_miss } => {
                vec![("req", *req as u64), ("map_miss", *map_miss as u64)]
            }
            BusAcquire {
                wait_ns,
                dur_ns,
                bytes,
            } => vec![("wait_ns", *wait_ns), ("dur_ns", *dur_ns), ("bytes", *bytes)],
            FlashStart {
                die,
                die_wait_ns,
                dur_ns,
                ..
            } => vec![
                ("die", *die as u64),
                ("die_wait_ns", *die_wait_ns),
                ("dur_ns", *dur_ns),
            ],
            Complete { req, latency_ns } => {
                vec![("req", *req as u64), ("latency_ns", *latency_ns)]
            }
            LinkTx {
                bytes,
                wait_ns,
                dur_ns,
                replayed,
            } => vec![
                ("bytes", *bytes),
                ("wait_ns", *wait_ns),
                ("dur_ns", *dur_ns),
                ("replayed", *replayed as u64),
            ],
            QueueFull { occupied, waiting } => vec![
                ("occupied", *occupied as u64),
                ("waiting", *waiting as u64),
            ],
            DetectorSample {
                bus_util_milli,
                latency_ns,
                hot,
            } => vec![
                ("bus_util_milli", *bus_util_milli as u64),
                ("latency_ns", *latency_ns),
                ("hot", *hot as u64),
            ],
            LaggardDetected | Escalation => Vec::new(),
            MigrationBegin { dst_cluster, pages } => vec![
                ("dst_cluster", *dst_cluster as u64),
                ("pages", *pages as u64),
            ],
            ReshapeBegin { target_fimm, pages } => vec![
                ("target_fimm", *target_fimm as u64),
                ("pages", *pages as u64),
            ],
            RelocCommit { lpn } | RelocRollback { lpn } | MapMiss { lpn } => {
                vec![("lpn", *lpn)]
            }
            WriteRedirect { target_fimm } => vec![("target_fimm", *target_fimm as u64)],
            FaultInjected { .. } => Vec::new(),
            GcRun { valid_pages } => vec![("valid_pages", *valid_pages as u64)],
            PowerLoss {
                lost_requests,
                requeued,
            } => vec![("lost_requests", *lost_requests), ("requeued", *requeued)],
            JournalCheckpoint { records } => vec![("records", *records)],
            JournalReplay { replayed, dropped } => {
                vec![("replayed", *replayed), ("dropped", *dropped)]
            }
            RebuildStart { pages } => vec![("pages", *pages)],
            RebuildDone { pages, dur_ns } => {
                vec![("pages", *pages), ("dur_ns", *dur_ns)]
            }
            FederationHop { req, array, copy } => vec![
                ("req", *req as u64),
                ("array", *array as u64),
                ("copy", *copy as u64),
            ],
            FederationLaggard {
                array,
                p99_ns,
                budget_ns,
            } => vec![
                ("array", *array as u64),
                ("p99_ns", *p99_ns),
                ("budget_ns", *budget_ns),
            ],
            FederationMigrationBegin {
                chunk,
                from_array,
                to_array,
                pages,
            } => vec![
                ("chunk", *chunk),
                ("from_array", *from_array as u64),
                ("to_array", *to_array as u64),
                ("pages", *pages),
            ],
            FederationMigrationCommit {
                chunk,
                from_array,
                to_array,
            }
            | FederationMigrationAbort {
                chunk,
                from_array,
                to_array,
            } => vec![
                ("chunk", *chunk),
                ("from_array", *from_array as u64),
                ("to_array", *to_array as u64),
            ],
            FederationRetry { req, array } => {
                vec![("req", *req as u64), ("array", *array as u64)]
            }
        }
    }
}

/// The ring-buffer recorder behind a traced run.
#[derive(Clone, Debug)]
pub struct Recorder {
    cfg: TraceConfig,
    ring: Vec<TraceEvent>,
    /// Next overwrite position once the ring is full.
    head: usize,
    seq: u64,
    dropped: u64,
    now: Nanos,
}

impl Recorder {
    /// Creates an empty recorder.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.capacity == 0`.
    pub fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.capacity > 0, "trace ring capacity must be positive");
        Recorder {
            cfg,
            ring: Vec::new(),
            head: 0,
            seq: 0,
            dropped: 0,
            now: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Advances the recorder's clock; events emitted without an explicit
    /// timestamp are stamped with this instant. The engine calls this at
    /// the top of every event-loop iteration, so components without
    /// direct access to simulated time (the FTL, credit queues) still
    /// emit correctly timed events.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now.as_nanos();
    }

    /// The recorder clock, ns.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Records an event at the recorder clock.
    pub fn emit(&mut self, scope: TraceScope, kind: TraceEventKind) {
        self.emit_at_nanos(self.now, scope, kind);
    }

    /// Records an event at an explicit instant.
    pub fn emit_at(&mut self, at: SimTime, scope: TraceScope, kind: TraceEventKind) {
        self.emit_at_nanos(at.as_nanos(), scope, kind);
    }

    fn emit_at_nanos(&mut self, at: Nanos, scope: TraceScope, kind: TraceEventKind) {
        if !self.cfg.enabled(kind.category()) {
            return;
        }
        let ev = TraceEvent {
            at,
            seq: self.seq,
            scope,
            kind,
        };
        self.seq += 1;
        if self.ring.len() < self.cfg.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.cfg.capacity;
            self.dropped += 1;
        }
    }

    /// Events accepted over the whole run (including dropped ones).
    pub fn total(&self) -> u64 {
        self.seq
    }

    /// Events overwritten by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events_in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }
}

/// A clonable handle to one run's [`Recorder`]. Every traced component
/// holds one (inside its [`TracePort`]); the engine keeps the original
/// and harvests it at the end of the run.
///
/// Backed by `Arc<Mutex<…>>` so traced components stay `Send` — the
/// sharded executor moves engines onto worker threads, and a `Send`
/// bound on the whole engine is how that stays `unsafe`-free. Recorded
/// runs are themselves single-threaded (sharding falls back to serial
/// when a recorder is attached), so the lock is never contended.
#[derive(Clone, Debug)]
pub struct SharedRecorder(Arc<Mutex<Recorder>>);

impl SharedRecorder {
    /// Creates a recorder and wraps it for sharing.
    pub fn new(cfg: TraceConfig) -> Self {
        SharedRecorder(Arc::new(Mutex::new(Recorder::new(cfg))))
    }

    /// See [`Recorder::set_now`].
    pub fn set_now(&self, now: SimTime) {
        self.0.lock().unwrap().set_now(now);
    }

    /// See [`Recorder::emit`].
    pub fn emit(&self, scope: TraceScope, kind: TraceEventKind) {
        self.0.lock().unwrap().emit(scope, kind);
    }

    /// See [`Recorder::emit_at`].
    pub fn emit_at(&self, at: SimTime, scope: TraceScope, kind: TraceEventKind) {
        self.0.lock().unwrap().emit_at(at, scope, kind);
    }

    /// A snapshot of the recorder's current state.
    pub fn snapshot(&self) -> Recorder {
        self.0.lock().unwrap().clone()
    }
}

/// A component's emission endpoint: either detached (the default — every
/// emit is a single `None` check, payload closures never run) or
/// attached to a [`SharedRecorder`] with the component's [`TraceScope`].
#[derive(Clone, Debug, Default)]
pub struct TracePort {
    rec: Option<SharedRecorder>,
    scope: TraceScope,
}

impl TracePort {
    /// The detached port: records nothing, costs one branch per emit.
    pub fn off() -> Self {
        TracePort::default()
    }

    /// A port feeding `rec`, stamped with `scope`.
    pub fn attached(rec: SharedRecorder, scope: TraceScope) -> Self {
        TracePort {
            rec: Some(rec),
            scope,
        }
    }

    /// `true` when events will actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// The scope this port stamps onto events.
    pub fn scope(&self) -> TraceScope {
        self.scope
    }

    /// This port with a different scope (same recorder).
    pub fn with_scope(&self, scope: TraceScope) -> TracePort {
        TracePort {
            rec: self.rec.clone(),
            scope,
        }
    }

    /// Emits at the recorder clock. `f` builds the payload and is only
    /// invoked when the port is attached.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEventKind) {
        if let Some(rec) = &self.rec {
            rec.emit(self.scope, f());
        }
    }

    /// Emits at an explicit instant. `f` is only invoked when attached.
    #[inline]
    pub fn emit_at(&self, at: SimTime, f: impl FnOnce() -> TraceEventKind) {
        if let Some(rec) = &self.rec {
            rec.emit_at(at, self.scope, f());
        }
    }
}

/// One registered instrument snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A monotonic count.
    Counter(u64),
    /// A point-in-time value (utilizations, ratios).
    Gauge(f64),
    /// A latency/duration distribution summary.
    Summary {
        /// Recorded values.
        count: u64,
        /// Arithmetic mean, ns.
        mean_ns: f64,
        /// Median (upper bound within bucket resolution), ns.
        p50_ns: u64,
        /// 99th percentile (upper bound), ns.
        p99_ns: u64,
        /// Largest recorded value, ns.
        max_ns: u64,
    },
    /// A sampled time series `(t_ns, value)`.
    Series(Vec<(Nanos, f64)>),
}

/// An interned metric name: a dense handle into a [`MetricRegistry`].
///
/// Interning happens once, at wiring time; every per-harvest update is
/// then an indexed store with no name formatting, hashing, or string
/// comparison on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(u32);

impl MetricId {
    /// The dense slot index behind this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-component instruments registered under stable hierarchical names
/// (`cluster.2.fimm.1.queue_depth`).
///
/// Names are interned into [`MetricId`] handles; the registry keeps an
/// index of ids sorted by name, maintained incrementally at intern time
/// (binary-search insertion), so [`MetricRegistry::sorted`] is a single
/// pass with no per-export clone or re-sort and artifact bytes never
/// depend on harvest order. Setting an instrument twice overwrites the
/// previous value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricRegistry {
    /// Interned names, indexed by `MetricId`.
    names: Vec<String>,
    /// Instrument value per id (`None` until first set).
    slots: Vec<Option<Metric>>,
    /// Ids ordered by their name — the export order.
    by_name: Vec<MetricId>,
    /// Slots currently holding a value.
    set_count: usize,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Position of `name` in the sorted index: `Ok` when already
    /// interned, `Err` with the insertion point otherwise.
    fn search(&self, name: &str) -> Result<usize, usize> {
        self.by_name
            .binary_search_by(|id| self.names[id.index()].as_str().cmp(name))
    }

    /// Interns `name`, returning its stable handle. Idempotent: the same
    /// name always yields the same id.
    pub fn intern(&mut self, name: impl AsRef<str>) -> MetricId {
        let name = name.as_ref();
        match self.search(name) {
            Ok(pos) => self.by_name[pos],
            Err(pos) => {
                let id = MetricId(self.names.len() as u32);
                self.names.push(name.to_string());
                self.slots.push(None);
                self.by_name.insert(pos, id);
                id
            }
        }
    }

    /// The interned name behind `id`.
    pub fn name(&self, id: MetricId) -> &str {
        &self.names[id.index()]
    }

    fn set(&mut self, id: MetricId, m: Metric) {
        let slot = &mut self.slots[id.index()];
        if slot.is_none() {
            self.set_count += 1;
        }
        *slot = Some(m);
    }

    /// Sets a counter on a pre-interned handle.
    pub fn set_counter(&mut self, id: MetricId, v: u64) {
        self.set(id, Metric::Counter(v));
    }

    /// Sets a gauge on a pre-interned handle.
    pub fn set_gauge(&mut self, id: MetricId, v: f64) {
        self.set(id, Metric::Gauge(v));
    }

    /// Sets a histogram summary on a pre-interned handle.
    pub fn set_histogram(&mut self, id: MetricId, h: &Histogram) {
        self.set(
            id,
            Metric::Summary {
                count: h.count(),
                mean_ns: h.mean(),
                p50_ns: h.percentile(0.5),
                p99_ns: h.percentile(0.99),
                max_ns: h.max(),
            },
        );
    }

    /// Sets a time series on a pre-interned handle, thinned to at most
    /// `max_points` samples.
    pub fn set_series(&mut self, id: MetricId, s: &TimeSeries, max_points: usize) {
        let pts = s
            .thin(max_points)
            .into_iter()
            .map(|(t, v)| (t.as_nanos(), v))
            .collect();
        self.set(id, Metric::Series(pts));
    }

    /// Registers a counter by name (interns on the fly).
    pub fn counter(&mut self, name: impl AsRef<str>, v: u64) {
        let id = self.intern(name);
        self.set_counter(id, v);
    }

    /// Registers a gauge by name (interns on the fly).
    pub fn gauge(&mut self, name: impl AsRef<str>, v: f64) {
        let id = self.intern(name);
        self.set_gauge(id, v);
    }

    /// Registers a histogram's summary by name (interns on the fly).
    pub fn histogram(&mut self, name: impl AsRef<str>, h: &Histogram) {
        let id = self.intern(name);
        self.set_histogram(id, h);
    }

    /// Registers a time series by name, thinned to at most `max_points`
    /// samples.
    pub fn series(&mut self, name: impl AsRef<str>, s: &TimeSeries, max_points: usize) {
        let id = self.intern(name);
        self.set_series(id, s, max_points);
    }

    /// Number of instruments holding a value.
    pub fn len(&self) -> usize {
        self.set_count
    }

    /// `true` when no instrument holds a value.
    pub fn is_empty(&self) -> bool {
        self.set_count == 0
    }

    /// The set instruments in name order — a single pass over the index
    /// maintained at intern time.
    pub fn sorted(&self) -> Vec<(&str, &Metric)> {
        self.by_name
            .iter()
            .filter_map(|id| {
                self.slots[id.index()]
                    .as_ref()
                    .map(|m| (self.names[id.index()].as_str(), m))
            })
            .collect()
    }

    /// Looks up one instrument by exact name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        let pos = self.search(name).ok()?;
        self.slots[self.by_name[pos].index()].as_ref()
    }
}

/// The harvested observability output of one traced run.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound.
    pub dropped: u64,
    /// Events accepted over the whole run.
    pub total: u64,
    /// Instrument snapshots under hierarchical names.
    pub metrics: MetricRegistry,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Chrome `trace_event` µs timestamp from integer nanoseconds — integer
/// formatting only, so the bytes are platform-invariant.
fn chrome_us(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl RunTrace {
    /// Builds the harvest from a recorder snapshot and a filled registry.
    pub fn from_recorder(rec: &Recorder, metrics: MetricRegistry) -> Self {
        RunTrace {
            events: rec.events_in_order(),
            dropped: rec.dropped(),
            total: rec.total(),
            metrics,
        }
    }

    /// Event counts per kind name, sorted by name.
    pub fn counts_by_kind(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for ev in &self.events {
            let name = ev.kind.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts.sort_by(|a, b| a.0.cmp(b.0));
        counts
    }

    /// Byte-stable structured JSON: totals, per-kind counts, the sorted
    /// metric registry, and the full retained event list.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"total\": {},\n", self.total));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        out.push_str("  \"counts\": {");
        let counts = self.counts_by_kind();
        for (i, (name, c)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {c}"));
        }
        if !counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"metrics\": {");
        let metrics = self.metrics.sorted();
        for (i, (name, m)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": ", json_escape(name)));
            match m {
                Metric::Counter(v) => out.push_str(&v.to_string()),
                Metric::Gauge(v) => out.push_str(&format!("{v:.6}")),
                Metric::Summary {
                    count,
                    mean_ns,
                    p50_ns,
                    p99_ns,
                    max_ns,
                } => out.push_str(&format!(
                    "{{\"count\": {count}, \"mean_ns\": {mean_ns:.3}, \"p50_ns\": {p50_ns}, \
                     \"p99_ns\": {p99_ns}, \"max_ns\": {max_ns}}}"
                )),
                Metric::Series(pts) => {
                    out.push('[');
                    for (j, (t, v)) in pts.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{t}, {v:.3}]"));
                    }
                    out.push(']');
                }
            }
        }
        if !metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"at_ns\": {}, \"cluster\": {}, \"fimm\": {}, \
                 \"kind\": \"{}\"",
                ev.seq,
                ev.at,
                ev.scope.cluster as i32,
                ev.scope.fimm as i32,
                ev.kind.name()
            ));
            for (k, v) in ev.kind.args() {
                out.push_str(&format!(", \"{k}\": {v}"));
            }
            out.push('}');
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Chrome `trace_event` JSON, loadable in `about:tracing` / Perfetto.
    ///
    /// Interval events (`bus_acquire`, `flash_start`, `link_tx`,
    /// `complete`) render as `ph:"X"` duration slices; everything else as
    /// `ph:"i"` instants. Lanes (`pid`/`tid`) encode the emitting scope:
    /// one process per cluster (the array itself is pid 0), one thread
    /// per FIMM.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let pid = if ev.scope.cluster == u32::MAX {
                0
            } else {
                ev.scope.cluster as u64 + 1
            };
            let tid = if ev.scope.fimm == u32::MAX {
                0
            } else {
                ev.scope.fimm as u64 + 1
            };
            let cat = format!("{:?}", ev.kind.category()).to_lowercase();
            let mut args = format!("\"seq\": {}", ev.seq);
            for (k, v) in ev.kind.args() {
                args.push_str(&format!(", \"{k}\": {v}"));
            }
            match ev.kind.duration_ns() {
                Some(dur) => out.push_str(&format!(
                    "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
                     \"dur\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{{}}}}}",
                    ev.kind.name(),
                    cat,
                    chrome_us(ev.at),
                    chrome_us(dur),
                    pid,
                    tid,
                    args
                )),
                None => out.push_str(&format!(
                    "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{{}}}}}",
                    ev.kind.name(),
                    cat,
                    chrome_us(ev.at),
                    pid,
                    tid,
                    args
                )),
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// A terminal-friendly timeline: one line per event, `| `-indented by
    /// cluster, capped at `max_rows` rows (the Perfetto-equivalent
    /// rendering EXPERIMENTS.md shows).
    pub fn render_text(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} events retained ({} total, {} dropped)\n",
            self.events.len(),
            self.total,
            self.dropped
        ));
        for ev in self.events.iter().take(max_rows) {
            let lane = if ev.scope.cluster == u32::MAX {
                "array ".to_string()
            } else if ev.scope.fimm == u32::MAX {
                format!("c{:02}   ", ev.scope.cluster)
            } else {
                format!("c{:02}.f{}", ev.scope.cluster, ev.scope.fimm)
            };
            let args = ev
                .kind
                .args()
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{:>12} ns  {}  {:<16} {}\n",
                ev.at,
                lane,
                ev.kind.name(),
                args
            ));
        }
        if self.events.len() > max_rows {
            out.push_str(&format!("… {} more events\n", self.events.len() - max_rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(lpn: u64) -> TraceEventKind {
        TraceEventKind::MapMiss { lpn }
    }

    #[test]
    fn ring_buffer_wraps_and_keeps_newest() {
        let mut r = Recorder::new(TraceConfig::all().with_capacity(4));
        for i in 0..10u64 {
            r.set_now(SimTime::from_nanos(i));
            r.emit(TraceScope::array(), ev(i));
        }
        assert_eq!(r.total(), 10);
        assert_eq!(r.dropped(), 6);
        let events = r.events_in_order();
        assert_eq!(events.len(), 4);
        let lpns: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                TraceEventKind::MapMiss { lpn } => lpn,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lpns, vec![6, 7, 8, 9], "oldest events evicted first");
    }

    #[test]
    fn events_keep_emission_order_and_seq() {
        let mut r = Recorder::new(TraceConfig::all());
        r.set_now(SimTime::from_nanos(50));
        r.emit(TraceScope::array(), ev(1));
        // An explicitly *earlier* stamp still sequences after: seq is
        // emission order, `at` is payload.
        r.emit_at(SimTime::from_nanos(10), TraceScope::array(), ev(2));
        let events = r.events_in_order();
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].at, 50);
        assert_eq!(events[1].at, 10);
    }

    #[test]
    fn category_gating_filters_events() {
        let mut cfg = TraceConfig::all();
        cfg.autonomic = false;
        let mut r = Recorder::new(cfg);
        r.emit(TraceScope::array(), ev(1)); // MapMiss is Autonomic
        r.emit(
            TraceScope::array(),
            TraceEventKind::Complete {
                req: 0,
                latency_ns: 5,
            },
        );
        assert_eq!(r.total(), 1);
        assert_eq!(r.events_in_order()[0].kind.name(), "complete");
    }

    #[test]
    fn detached_port_never_runs_payload_closure() {
        let port = TracePort::off();
        let mut ran = false;
        port.emit(|| {
            ran = true;
            ev(0)
        });
        assert!(!ran, "payload closure must not run when detached");
        assert!(!port.is_enabled());
    }

    #[test]
    fn attached_port_stamps_scope() {
        let rec = SharedRecorder::new(TraceConfig::all());
        let port = TracePort::attached(rec.clone(), TraceScope::fimm(3, 1));
        port.emit(|| ev(9));
        let snap = rec.snapshot();
        let events = snap.events_in_order();
        assert_eq!(events[0].scope, TraceScope::fimm(3, 1));
    }

    #[test]
    fn chrome_trace_is_wellformed_and_stable() {
        let rec = SharedRecorder::new(TraceConfig::all());
        let port = TracePort::attached(rec.clone(), TraceScope::cluster(2));
        port.emit_at(SimTime::from_nanos(1_234), || TraceEventKind::BusAcquire {
            wait_ns: 7,
            dur_ns: 2_660,
            bytes: 4_096,
        });
        port.emit_at(SimTime::from_nanos(2_000), || TraceEventKind::LaggardDetected);
        let trace = RunTrace::from_recorder(&rec.snapshot(), MetricRegistry::new());
        let a = trace.chrome_trace();
        let b = trace.chrome_trace();
        assert_eq!(a, b);
        assert!(a.contains("\"ts\": 1.234"), "{a}");
        assert!(a.contains("\"ph\": \"X\""));
        assert!(a.contains("\"ph\": \"i\""));
        assert!(a.contains("\"traceEvents\""));
    }

    #[test]
    fn registry_sorts_by_name_and_looks_up() {
        let mut m = MetricRegistry::new();
        m.counter("z.count", 3);
        m.gauge("a.util", 0.5);
        let names: Vec<&str> = m.sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["a.util", "z.count"]);
        assert_eq!(m.get("z.count"), Some(&Metric::Counter(3)));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn run_trace_json_counts_kinds() {
        let rec = SharedRecorder::new(TraceConfig::all());
        let port = TracePort::attached(rec.clone(), TraceScope::array());
        port.emit(|| ev(1));
        port.emit(|| ev(2));
        port.emit(|| TraceEventKind::Escalation);
        let trace = RunTrace::from_recorder(&rec.snapshot(), MetricRegistry::new());
        assert_eq!(
            trace.counts_by_kind(),
            vec![("escalation", 1), ("map_miss", 2)]
        );
        let json = trace.to_json();
        assert!(json.contains("\"map_miss\": 2"), "{json}");
        assert!(json.ends_with("}\n"));
    }
}
