//! Conservative parallel shard executor.
//!
//! Splits one simulation into independent *shards*, each owning its own
//! event queue, and advances them in lock-step windows: if `T` is the
//! earliest pending event across all shards and `L` the minimum
//! cross-shard link latency (the *lookahead*), every shard may safely
//! execute all local events in `[T, T + L)` — no message sent during the
//! window can arrive before it ends. Cross-shard traffic travels in
//! [`Envelope`]s through per-sender [`Outbox`]es and is delivered in
//! `(timestamp, seq, sender)` order, so the merged stream is a pure
//! function of the shard states and never of worker scheduling: one
//! worker or many, the simulation is bit-for-bit identical.
//!
//! The executor is deliberately topology-agnostic: a [`Shard`] is
//! anything that can report its next event time, run a bounded window,
//! and accept messages. `triplea-core` maps PCI-E switch domains onto
//! shards and derives the lookahead from the root-complex routing
//! latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::time::{Nanos, SimTime};

/// One cross-shard message in flight: the payload plus the ordering key
/// `(at, seq, src)` that makes delivery deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Simulated arrival time at the destination shard. Conservative
    /// synchronisation guarantees `at >= horizon` of the window that
    /// sent it, so the destination has not yet simulated past it.
    pub at: SimTime,
    /// Sending shard index.
    pub src: u32,
    /// Per-sender sequence number; preserves each sender's send order
    /// when arrival times tie.
    pub seq: u32,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// The `(timestamp, seq, sender)` key envelopes are delivered in.
    #[inline]
    pub fn order_key(&self) -> (SimTime, u32, u32) {
        (self.at, self.seq, self.src)
    }
}

/// Sender-side buffer for one shard's outgoing messages, bucketed by
/// destination. Buffers are reused across windows, so the steady-state
/// push/drain cycle allocates nothing (see `sim/tests/zero_alloc.rs`).
#[derive(Debug)]
pub struct Outbox<M> {
    src: u32,
    seq: u32,
    buckets: Vec<Vec<Envelope<M>>>,
}

impl<M> Outbox<M> {
    /// An outbox for shard `src` in a topology of `shards` shards.
    pub fn new(src: u32, shards: usize) -> Self {
        Outbox {
            src,
            seq: 0,
            buckets: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Queues `msg` for delivery to shard `dst` at simulated time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    #[inline]
    pub fn send(&mut self, dst: usize, at: SimTime, msg: M) {
        let env = Envelope {
            at,
            src: self.src,
            seq: self.seq,
            msg,
        };
        self.seq = self.seq.wrapping_add(1);
        self.buckets[dst].push(env);
    }

    /// Number of destination shards this outbox can address.
    pub fn shard_count(&self) -> usize {
        self.buckets.len()
    }

    /// Messages currently buffered across all destinations.
    pub fn pending(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Moves every buffered envelope bound for `dst` into `sink`,
    /// keeping the bucket's capacity for reuse.
    #[inline]
    pub fn drain_to(&mut self, dst: usize, sink: &mut Vec<Envelope<M>>) {
        sink.append(&mut self.buckets[dst]);
    }
}

/// One conservatively synchronised partition of a simulation.
///
/// Implementations own their local event queue; the executor only ever
/// asks three things of them, all through `&mut self`, so shards need no
/// interior mutability.
pub trait Shard: Send {
    /// Payload type exchanged between shards.
    type Msg: Send;

    /// Simulated time of the earliest pending local event, or `None`
    /// when the shard is idle.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Executes every local event strictly before `horizon`, pushing any
    /// cross-shard messages produced into `out`. A conservative shard
    /// must never emit an envelope with `at < horizon`.
    fn run_window(&mut self, horizon: SimTime, out: &mut Outbox<Self::Msg>);

    /// Accepts one cross-shard envelope, scheduling it as a local event
    /// at `env.at`. Envelopes arrive in `(at, seq, src)` order.
    fn deliver(&mut self, env: Envelope<Self::Msg>);
}

/// Outcome counters from [`run_conservative`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Synchronisation windows executed.
    pub windows: u64,
    /// Cross-shard envelopes delivered.
    pub messages: u64,
    /// Envelopes that arrived with `at` earlier than the horizon their
    /// receiver had already simulated to — causality violations. Always
    /// zero when every shard respects the configured lookahead; exposed
    /// so property tests can assert exactly that.
    pub late_deliveries: u64,
    /// Worker threads actually used (requested count clamped to the
    /// shard count).
    pub workers: usize,
}

/// Runs `shards` to completion (or to `until`) under conservative
/// synchronisation with the given `lookahead`, using `workers` threads.
///
/// Every window: the executor finds the global minimum next-event time
/// `T`, sets the horizon `H = min(T + lookahead, until)`, lets every
/// shard execute `[T, H)` in parallel, then exchanges and delivers the
/// produced envelopes in `(at, seq, src)` order. The result is
/// independent of `workers` by construction.
///
/// `workers <= 1` runs everything on the calling thread with zero
/// synchronisation overhead; `workers > 1` partitions shards round-robin
/// over scoped threads. Oversubscribing the machine is safe — the
/// barriers block rather than spin — it just stops paying off.
///
/// # Panics
///
/// Panics if `lookahead == 0` (the window would be empty and no shard
/// could ever advance) or if `shards` is empty.
pub fn run_conservative<S: Shard>(
    shards: &mut [S],
    lookahead: Nanos,
    workers: usize,
    until: SimTime,
) -> ShardRunStats {
    assert!(lookahead > 0, "conservative execution needs lookahead > 0");
    assert!(!shards.is_empty(), "no shards to run");
    let workers = workers.clamp(1, shards.len());
    if workers == 1 {
        run_serial(shards, lookahead, until)
    } else {
        run_parallel(shards, lookahead, workers, until)
    }
}

#[inline]
fn horizon(t: SimTime, lookahead: Nanos, until: SimTime) -> SimTime {
    SimTime::from_nanos(t.as_nanos().saturating_add(lookahead)).min(until)
}

fn run_serial<S: Shard>(shards: &mut [S], lookahead: Nanos, until: SimTime) -> ShardRunStats {
    let n = shards.len();
    let mut outboxes: Vec<Outbox<S::Msg>> =
        (0..n).map(|i| Outbox::new(i as u32, n)).collect();
    let mut scratch: Vec<Envelope<S::Msg>> = Vec::new();
    let mut stats = ShardRunStats {
        workers: 1,
        ..ShardRunStats::default()
    };
    loop {
        let t = shards.iter().filter_map(Shard::next_event_time).min();
        let Some(t) = t else { break };
        if t >= until {
            break;
        }
        let h = horizon(t, lookahead, until);
        for (s, out) in shards.iter_mut().zip(outboxes.iter_mut()) {
            s.run_window(h, out);
        }
        stats.windows += 1;
        for (r, shard) in shards.iter_mut().enumerate() {
            scratch.clear();
            for out in outboxes.iter_mut() {
                out.drain_to(r, &mut scratch);
            }
            scratch.sort_unstable_by_key(Envelope::order_key);
            for env in scratch.drain(..) {
                stats.messages += 1;
                if env.at < h {
                    stats.late_deliveries += 1;
                }
                shard.deliver(env);
            }
        }
    }
    stats
}

/// Shared state for the threaded executor. Two min-reduction slots
/// alternate by window parity: slot `w % 2` is consumed at window `w`'s
/// first barrier and reset by the second barrier's leader, two barriers
/// before its next use — so two barriers per window suffice.
struct Sync {
    barrier: Barrier,
    next_min: [AtomicU64; 2],
    messages: AtomicU64,
    late: AtomicU64,
    windows: AtomicU64,
}

fn run_parallel<S: Shard>(
    shards: &mut [S],
    lookahead: Nanos,
    workers: usize,
    until: SimTime,
) -> ShardRunStats {
    let n = shards.len();
    let inboxes: Vec<Mutex<Vec<Envelope<S::Msg>>>> =
        (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let sync = Sync {
        barrier: Barrier::new(workers),
        next_min: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
        messages: AtomicU64::new(0),
        late: AtomicU64::new(0),
        windows: AtomicU64::new(0),
    };

    // Round-robin partition: worker w owns shards w, w+workers, …
    // Each entry keeps its global shard index for outbox addressing.
    let mut parts: Vec<Vec<(usize, &mut S)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, s) in shards.iter_mut().enumerate() {
        parts[i % workers].push((i, s));
    }

    std::thread::scope(|scope| {
        for part in parts {
            let sync = &sync;
            let inboxes = &inboxes;
            scope.spawn(move || {
                worker_loop(part, sync, inboxes, n, lookahead, until);
            });
        }
    });

    ShardRunStats {
        windows: sync.windows.load(Ordering::Relaxed),
        messages: sync.messages.load(Ordering::Relaxed),
        late_deliveries: sync.late.load(Ordering::Relaxed),
        workers,
    }
}

fn worker_loop<S: Shard>(
    mut part: Vec<(usize, &mut S)>,
    sync: &Sync,
    inboxes: &[Mutex<Vec<Envelope<S::Msg>>>],
    n: usize,
    lookahead: Nanos,
    until: SimTime,
) {
    let mut outboxes: Vec<Outbox<S::Msg>> = part
        .iter()
        .map(|(i, _)| Outbox::new(*i as u32, n))
        .collect();
    let mut scratch: Vec<Envelope<S::Msg>> = Vec::new();
    let mut window: u64 = 0;
    loop {
        // Phase 1: global min next-event time via an atomic reduction.
        let slot = &sync.next_min[(window % 2) as usize];
        let local = part
            .iter()
            .filter_map(|(_, s)| s.next_event_time())
            .min()
            .map_or(u64::MAX, SimTime::as_nanos);
        slot.fetch_min(local, Ordering::AcqRel);
        sync.barrier.wait();
        let t = slot.load(Ordering::Acquire);
        if t == u64::MAX || SimTime::from_nanos(t) >= until {
            break;
        }
        let h = horizon(SimTime::from_nanos(t), lookahead, until);

        // Phase 2: run the window, then publish outgoing envelopes.
        for ((_, s), out) in part.iter_mut().zip(outboxes.iter_mut()) {
            s.run_window(h, out);
        }
        for out in outboxes.iter_mut() {
            for (dst, inbox) in inboxes.iter().enumerate() {
                if out.buckets[dst].is_empty() {
                    continue;
                }
                out.drain_to(dst, &mut inbox.lock().unwrap());
            }
        }
        let leader = sync.barrier.wait().is_leader();
        if leader {
            // Safe to reset: every worker read `t` before this barrier,
            // and this slot is next written two barriers from now.
            slot.store(u64::MAX, Ordering::Release);
            sync.windows.fetch_add(1, Ordering::Relaxed);
        }

        // Phase 3: drain own shards' inboxes in deterministic order.
        // Concurrent workers only touch their own shards here, so no
        // further barrier is needed before the next window's reduction.
        let mut messages = 0u64;
        let mut late = 0u64;
        for (i, s) in part.iter_mut() {
            scratch.clear();
            {
                let mut inbox = inboxes[*i].lock().unwrap();
                std::mem::swap(&mut *inbox, &mut scratch);
            }
            scratch.sort_unstable_by_key(Envelope::order_key);
            for env in scratch.drain(..) {
                messages += 1;
                if env.at < h {
                    late += 1;
                }
                s.deliver(env);
            }
        }
        if messages > 0 {
            sync.messages.fetch_add(messages, Ordering::Relaxed);
        }
        if late > 0 {
            sync.late.fetch_add(late, Ordering::Relaxed);
        }
        window += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    /// Toy shard: a counter network. Each event carries a hop budget;
    /// executing it bumps a checksum and forwards the remainder to the
    /// next shard one `LINK_NS` away.
    const LINK_NS: Nanos = 50;

    struct Ring {
        id: usize,
        shards: usize,
        queue: EventQueue<u32>,
        checksum: u64,
        executed: u64,
    }

    impl Ring {
        fn new(id: usize, shards: usize) -> Self {
            Ring {
                id,
                shards,
                queue: EventQueue::new(),
                checksum: 0,
                executed: 0,
            }
        }
    }

    impl Shard for Ring {
        type Msg = u32;

        fn next_event_time(&self) -> Option<SimTime> {
            self.queue.peek_time()
        }

        fn run_window(&mut self, horizon: SimTime, out: &mut Outbox<u32>) {
            while self.queue.peek_time().is_some_and(|t| t < horizon) {
                let (t, hops) = self.queue.pop().unwrap();
                self.executed += 1;
                self.checksum = self
                    .checksum
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add(t.as_nanos() ^ hops as u64);
                if hops > 0 {
                    out.send((self.id + 1) % self.shards, t + LINK_NS, hops - 1);
                }
            }
        }

        fn deliver(&mut self, env: Envelope<u32>) {
            self.queue.push(env.at, env.msg);
        }
    }

    fn seeded_ring(shards: usize) -> Vec<Ring> {
        let mut v: Vec<Ring> = (0..shards).map(|i| Ring::new(i, shards)).collect();
        // A deterministic splay of initial events, several per shard.
        for (i, r) in v.iter_mut().enumerate() {
            for k in 0..7u64 {
                let at = SimTime::from_nanos(1 + (i as u64 * 13 + k * 31) % 97);
                r.queue.push(at, (3 + (i as u32 + k as u32) % 5) * 2);
            }
        }
        v
    }

    fn run(shards: usize, workers: usize) -> (Vec<u64>, Vec<u64>, ShardRunStats) {
        let mut ring = seeded_ring(shards);
        let stats = run_conservative(&mut ring, LINK_NS, workers, SimTime::MAX);
        (
            ring.iter().map(|r| r.checksum).collect(),
            ring.iter().map(|r| r.executed).collect(),
            stats,
        )
    }

    #[test]
    fn results_invariant_to_worker_count() {
        let (sums1, execs1, stats1) = run(5, 1);
        for workers in [2, 3, 8] {
            let (sums, execs, stats) = run(5, workers);
            assert_eq!(sums, sums1, "checksums differ at {workers} workers");
            assert_eq!(execs, execs1);
            assert_eq!(stats.messages, stats1.messages);
            assert_eq!(stats.late_deliveries, 0);
        }
        assert_eq!(stats1.late_deliveries, 0);
        assert!(stats1.messages > 0, "test should exercise cross-shard traffic");
    }

    #[test]
    fn worker_count_clamps_to_shards() {
        let (_, _, stats) = run(3, 64);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn until_bounds_execution() {
        let mut ring = seeded_ring(4);
        let until = SimTime::from_nanos(120);
        run_conservative(&mut ring, LINK_NS, 1, until);
        for r in &ring {
            assert!(r.queue.peek_time().is_none_or(|t| t >= until));
        }
    }

    #[test]
    fn envelope_order_is_timestamp_seq_sender() {
        let mut a: Outbox<u8> = Outbox::new(2, 3);
        let mut b: Outbox<u8> = Outbox::new(1, 3);
        a.send(0, SimTime::from_nanos(10), 1);
        a.send(0, SimTime::from_nanos(10), 2);
        b.send(0, SimTime::from_nanos(5), 3);
        let mut sink = Vec::new();
        a.drain_to(0, &mut sink);
        b.drain_to(0, &mut sink);
        sink.sort_unstable_by_key(Envelope::order_key);
        assert_eq!(sink.iter().map(|e| e.msg).collect::<Vec<_>>(), [3, 1, 2]);
        assert_eq!(a.pending(), 0);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "lookahead > 0")]
    fn zero_lookahead_rejected() {
        let mut ring = seeded_ring(2);
        run_conservative(&mut ring, 0, 1, SimTime::MAX);
    }
}
