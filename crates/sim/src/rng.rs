//! A tiny deterministic PRNG for simulator-internal decisions.

/// SplitMix64 pseudo-random number generator.
///
/// Used for tie-breaking choices inside the simulator (e.g. picking among
/// equally cold clusters) where dragging in the full `rand` stack would be
/// overkill. Sequences are fully determined by the seed, which keeps
/// simulation runs reproducible.
///
/// # Example
///
/// ```
/// use triplea_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free reduction is fine here: simulation
        // decisions do not need perfect uniformity, only determinism, but
        // the widening multiply keeps bias negligible for small bounds.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_1234_5678_9ABC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = SplitMix64::new(7);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[rng.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            // each bucket expects 10_000 hits; allow +-10%
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }
}
