//! A stable, timestamped event queue.
//!
//! Two implementations live here:
//!
//! * [`EventQueue`] — the production **calendar queue**: a ring of
//!   fixed-width time buckets for the near future plus a binary-heap
//!   overflow for far-future events. Near-future traffic (the vast
//!   majority of a simulation's events: resource grants, bus transfers,
//!   completions a few microseconds out) never touches the heap, and
//!   the common push-at-`now` case is an allocation-free insertion into
//!   the already-sorted active bucket.
//! * [`BaselineHeapQueue`] — the original global `BinaryHeap`, kept as
//!   the executable specification: a differential property test proves
//!   the calendar queue pops in exactly the same `(time, seq)` order,
//!   and the criterion benches race the two.
//!
//! Both order events by timestamp with FIFO tie-breaking on a
//! monotonically increasing sequence number, which is what makes every
//! simulation run bit-for-bit deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the bucket width: 1024 ns buckets. Flash-array event
/// horizons cluster in the 1 µs – 1 ms range (ONFi transfers ~2.6 µs,
/// reads ~25 µs, programs ~200–600 µs), so with [`NUM_BUCKETS`] the
/// ring covers ~1 ms and nearly every dynamically scheduled event lands
/// in it.
const BUCKET_SHIFT: u32 = 10;

/// Ring size (power of two). 1024 buckets × 1024 ns ≈ 1.05 ms horizon;
/// the ring itself is ~24 KB of empty `Vec` headers per queue.
const NUM_BUCKETS: usize = 1024;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        // Sequence numbers break ties, giving FIFO order among simultaneous
        // events and therefore fully deterministic simulations.
        other.key().cmp(&self.key())
    }
}

#[inline]
fn bucket_of(time: SimTime) -> u64 {
    time.as_nanos() >> BUCKET_SHIFT
}

/// A priority queue of events ordered by [`SimTime`], with FIFO tie-breaking.
///
/// Events pushed at equal timestamps pop in insertion order, which makes the
/// simulation deterministic regardless of queue internals. Internally a
/// calendar queue (see the module docs); the observable contract is
/// identical to [`BaselineHeapQueue`], and `tests::properties` proves it
/// differentially.
///
/// # Example
///
/// ```
/// use triplea_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(5), 'b');
/// q.push(SimTime::from_us(5), 'c');
/// q.push(SimTime::from_us(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    /// Active bucket's pending events, sorted **descending** by
    /// `(time, seq)` so the next event pops from the tail by value.
    current: Vec<Entry<E>>,
    /// Ring of near-future buckets covering absolute bucket numbers
    /// `(cur_bucket, cur_bucket + NUM_BUCKETS)`; slot `b % NUM_BUCKETS`,
    /// unsorted until a slot becomes the active bucket.
    ring: Vec<Vec<Entry<E>>>,
    /// Events in the ring (excluding `current`).
    ring_len: usize,
    /// Absolute bucket number of the active bucket.
    cur_bucket: u64,
    /// Far-future events (beyond the ring horizon), min-first.
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            current: Vec::new(),
            ring: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            ring_len: 0,
            cur_bucket: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let entry = Entry { time, seq, payload };
        let b = bucket_of(time);
        if b <= self.cur_bucket {
            // Active bucket (or a late event for an already-passed
            // instant, which must still pop before everything later):
            // keep `current` sorted descending so the tail stays the
            // minimum. The dominant push-at-`now` lands at or near the
            // tail — a binary search plus a short (usually empty) move.
            let key = entry.key();
            let idx = self
                .current
                .partition_point(|e| e.key() > key);
            self.current.insert(idx, entry);
        } else if b < self.cur_bucket + NUM_BUCKETS as u64 {
            self.ring[(b % NUM_BUCKETS as u64) as usize].push(entry);
            self.ring_len += 1;
        } else {
            self.overflow.push(entry);
        }
    }

    /// Moves every overflow event that now fits the ring window into its
    /// ring slot (or `current`, for events landing in the active bucket).
    fn drain_overflow(&mut self) {
        let horizon = self.cur_bucket + NUM_BUCKETS as u64;
        while let Some(top) = self.overflow.peek() {
            let b = bucket_of(top.time);
            if b >= horizon {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry exists");
            if b <= self.cur_bucket {
                let key = entry.key();
                let idx = self.current.partition_point(|e| e.key() > key);
                self.current.insert(idx, entry);
            } else {
                self.ring[(b % NUM_BUCKETS as u64) as usize].push(entry);
                self.ring_len += 1;
            }
        }
    }

    /// Advances the active bucket to the next non-empty one, refilling
    /// from the overflow heap as the horizon moves. Returns `false` when
    /// the queue is empty.
    fn advance(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        loop {
            if self.ring_len == 0 {
                let Some(top) = self.overflow.peek() else {
                    return false;
                };
                // Long idle gap: jump straight to the next scheduled
                // bucket instead of stepping the ring through it.
                self.cur_bucket = bucket_of(top.time);
            } else {
                // Nearest non-empty ring slot. Overflow events are at or
                // beyond the horizon, so none can precede it.
                let step = (1..=NUM_BUCKETS as u64)
                    .find(|s| {
                        !self.ring[((self.cur_bucket + s) % NUM_BUCKETS as u64) as usize]
                            .is_empty()
                    })
                    .expect("ring_len > 0 implies a non-empty slot");
                self.cur_bucket += step;
            }
            let slot = (self.cur_bucket % NUM_BUCKETS as u64) as usize;
            self.ring_len -= self.ring[slot].len();
            self.current.append(&mut self.ring[slot]);
            self.drain_overflow();
            if !self.current.is_empty() {
                // Descending, so the earliest (time, seq) sits at the tail.
                self.current
                    .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                return true;
            }
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        let e = self.current.pop().expect("advance left an event");
        self.popped += 1;
        Some((e.time, e.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.current.last() {
            return Some(e.time);
        }
        // Cold path (diagnostics/tests): scan the pending structures.
        let ring_min = self
            .ring
            .iter()
            .flatten()
            .map(Entry::key)
            .min();
        let over_min = self.overflow.peek().map(Entry::key);
        match (ring_min, over_min) {
            (Some(a), Some(b)) => Some(a.min(b).0),
            (Some(a), None) => Some(a.0),
            (None, Some(b)) => Some(b.0),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.current.len() + self.ring_len + self.overflow.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed (diagnostics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever popped (diagnostics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("pushed", &self.pushed)
            .field("popped", &self.popped)
            .finish()
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the executable
/// specification for [`EventQueue`]: same API, same observable ordering
/// contract, no calendar machinery. The differential property test and
/// the `queue` criterion benches are its only intended consumers.
#[derive(Default)]
pub struct BaselineHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> BaselineHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BaselineHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for BaselineHeapQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineHeapQueue")
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_sees_ring_and_overflow_events() {
        let mut q = EventQueue::new();
        // Far beyond the ring horizon: lives in the overflow heap.
        q.push(SimTime::from_secs(10), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        // A ring-resident event becomes the new minimum.
        q.push(SimTime::from_us(500), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_us(500)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 'a');
        q.push(SimTime::from_nanos(1), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        q.push(SimTime::from_nanos(2), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
    }

    #[test]
    fn late_push_for_a_passed_instant_pops_next() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(2), "z");
        assert_eq!(q.pop().unwrap().1, "z"); // active bucket is now ~2 ms
        q.push(SimTime::from_nanos(3), "late");
        q.push(SimTime::from_ms(3), "w");
        assert_eq!(q.pop().unwrap().1, "late");
        assert_eq!(q.pop().unwrap().1, "w");
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = EventQueue::new();
        // Spread events over many ring horizons, pushed out of order.
        let times = [7u64, 5_000_000, 900, 2_000_000_000, 40_000_000, 0];
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_nanos())).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn baseline_matches_basic_contract() {
        let mut q = BaselineHeapQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_nanos(9), 'b');
        q.push(SimTime::from_nanos(9), 'c');
        q.push(SimTime::from_nanos(1), 'a');
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        assert_eq!(q.len(), 3);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Popping always yields non-decreasing timestamps, and
            /// every pushed event comes back exactly once.
            #[test]
            fn pops_sorted_and_complete(times in prop::collection::vec(0u64..10_000, 1..500)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let mut last = SimTime::ZERO;
                let mut seen = vec![false; times.len()];
                while let Some((t, i)) = q.pop() {
                    prop_assert!(t >= last);
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                    last = t;
                }
                prop_assert!(seen.iter().all(|&s| s));
            }

            /// Differential test: over randomized push/pop interleavings
            /// — same-timestamp bursts, near-future offsets, and
            /// far-future scheduling beyond the ring horizon — the
            /// calendar queue pops exactly the same `(time, payload)`
            /// sequence as the baseline heap, event for event.
            #[test]
            fn matches_baseline_heap_differentially(
                ops in prop::collection::vec(
                    prop_oneof![
                        // Near-future push: delta within/around one bucket.
                        (0u64..4_096).prop_map(|d| (false, d)),
                        // Mid-range push: within the ring horizon.
                        (0u64..1_000_000).prop_map(|d| (false, d)),
                        // Far-future push: beyond the ~1 ms horizon.
                        (1_000_000u64..3_000_000_000).prop_map(|d| (false, d)),
                        // Same-timestamp burst marker (delta 0).
                        Just((false, 0u64)),
                        // Pop.
                        Just((true, 0u64)),
                    ],
                    1..400,
                )
            ) {
                let mut cal: EventQueue<usize> = EventQueue::new();
                let mut heap: BaselineHeapQueue<usize> = BaselineHeapQueue::new();
                // `now` tracks the pop frontier like a simulation loop,
                // so pushes are anchored where an engine would anchor
                // them; payload ids make ordering differences visible
                // even among equal timestamps.
                let mut now = 0u64;
                for (id, &(is_pop, delta)) in ops.iter().enumerate() {
                    if is_pop {
                        let a = cal.pop();
                        let b = heap.pop();
                        prop_assert_eq!(a, b, "pop #{} diverged", id);
                        if let Some((t, _)) = a {
                            now = t.as_nanos();
                        }
                    } else {
                        let t = SimTime::from_nanos(now + delta);
                        cal.push(t, id);
                        heap.push(t, id);
                    }
                    prop_assert_eq!(cal.len(), heap.len());
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                }
                // Drain both to the end: the full residual order must agree.
                loop {
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "drain diverged");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
