//! A stable, timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        // Sequence numbers break ties, giving FIFO order among simultaneous
        // events and therefore fully deterministic simulations.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of events ordered by [`SimTime`], with FIFO tie-breaking.
///
/// Events pushed at equal timestamps pop in insertion order, which makes the
/// simulation deterministic regardless of heap internals.
///
/// # Example
///
/// ```
/// use triplea_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(5), 'b');
/// q.push(SimTime::from_us(5), 'c');
/// q.push(SimTime::from_us(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (diagnostics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever popped (diagnostics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("pushed", &self.pushed)
            .field("popped", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Popping always yields non-decreasing timestamps, and
            /// every pushed event comes back exactly once.
            #[test]
            fn pops_sorted_and_complete(times in prop::collection::vec(0u64..10_000, 1..500)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let mut last = SimTime::ZERO;
                let mut seen = vec![false; times.len()];
                while let Some((t, i)) = q.pop() {
                    prop_assert!(t >= last);
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                    last = t;
                }
                prop_assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 'a');
        q.push(SimTime::from_nanos(1), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        q.push(SimTime::from_nanos(2), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
    }
}
