//! Measurement instruments: latency histograms, CDF extraction,
//! utilization meters, and time-series samplers.
//!
//! Everything the benchmark harness prints (Tables 1–2, Figures 1 and
//! 9–16 of the paper) is computed from these types.

use crate::time::{Nanos, SimTime};

const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS; // 32 linear sub-buckets per octave
const BUCKETS: usize = 1920;

/// A log-scaled histogram of nanosecond values (HDR-histogram style:
/// 32 linear sub-buckets per power-of-two octave, ~3% relative error).
///
/// Used for per-request latency distributions; supports percentile
/// queries and CDF extraction for the paper's Figures 1 and 11.
///
/// # Example
///
/// ```
/// use triplea_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5) >= 200);
/// // Percentiles are upper bounds on the true quantile, and the top
/// // quantile is exact:
/// assert_eq!(h.percentile(1.0), h.max());
/// ```
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB_COUNT {
            v as usize
        } else {
            let e = 63 - v.leading_zeros() as u64; // highest set bit, >= SUB_BITS
            let g = e - SUB_BITS as u64 + 1;
            (g * SUB_COUNT + ((v >> (e - SUB_BITS as u64)) & (SUB_COUNT - 1))) as usize
        }
    }

    fn bucket_low(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_COUNT {
            idx
        } else {
            let g = idx / SUB_COUNT;
            let r = idx % SUB_COUNT;
            (SUB_COUNT + r) << (g - 1)
        }
    }

    /// Largest value that lands in bucket `idx` — one below the next
    /// bucket's lower bound.
    fn bucket_high(idx: usize) -> u64 {
        Self::bucket_low(idx + 1) - 1
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `p` in `[0, 1]`: `>=` the true percentile, within
    /// the resolution of the bucketing (~3% relative error).
    ///
    /// The result is the *upper* bound of the bucket holding the target
    /// rank, clamped to the recorded maximum — so it never understates
    /// the quantile, and `percentile(1.0) == max()` holds exactly.
    ///
    /// Returns 0 when the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Cumulative-distribution points `(value_ns, fraction ≤ value)` over
    /// the non-empty buckets; the backbone of the paper's CDF figures.
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let mut pts = Vec::new();
        if self.count == 0 {
            return pts;
        }
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            acc += c;
            pts.push((Self::bucket_low(i), acc as f64 / self.count as f64));
        }
        pts
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("max", &self.max())
            .finish()
    }
}

/// Tracks the busy time of a resource, both cumulatively and within a
/// sliding window (the paper's Eq. 2 compares *recent* bus utilization
/// against a single-FIMM threshold).
///
/// Busy intervals may be registered slightly in the future (a busy-until
/// reservation); pending work counts as busy, which is exactly the signal
/// the cold-cluster test wants.
#[derive(Clone, Debug)]
pub struct UtilizationTracker {
    busy: Nanos,
    window: Nanos,
    cur_window: u64,
    busy_cur: Nanos,
    busy_prev: Nanos,
}

/// Default sliding-window width for [`UtilizationTracker`]: 100 µs.
pub const DEFAULT_UTIL_WINDOW: Nanos = 100_000;

impl UtilizationTracker {
    /// Creates a meter with the default 100 µs sliding window.
    pub fn new() -> Self {
        Self::with_window(DEFAULT_UTIL_WINDOW)
    }

    /// Creates a meter with a custom sliding-window width.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_window(window: Nanos) -> Self {
        assert!(window > 0, "window must be positive");
        UtilizationTracker {
            busy: 0,
            window,
            cur_window: 0,
            busy_cur: 0,
            busy_prev: 0,
        }
    }

    fn roll_to(&mut self, w: u64) {
        if w == self.cur_window {
            return;
        }
        if w == self.cur_window + 1 {
            self.busy_prev = self.busy_cur;
        } else {
            self.busy_prev = 0;
        }
        self.busy_cur = 0;
        self.cur_window = w;
    }

    /// Registers `dur` nanoseconds of busy time starting at `start`,
    /// splitting it across window boundaries.
    pub fn add_busy(&mut self, start: SimTime, dur: Nanos) {
        self.busy += dur;
        let mut t = start.as_nanos();
        let mut remaining = dur;
        while remaining > 0 {
            let w = t / self.window;
            if w >= self.cur_window {
                self.roll_to(w.max(self.cur_window));
                if w == self.cur_window {
                    let room = (w + 1) * self.window - t;
                    let chunk = remaining.min(room);
                    self.busy_cur += chunk;
                    remaining -= chunk;
                    t += chunk;
                    continue;
                }
            }
            // Interval starts in an already-closed window; fold what we can
            // into the previous-window counter and drop the rest.
            let room = (t / self.window + 1) * self.window - t;
            let chunk = remaining.min(room);
            if t / self.window + 1 == self.cur_window {
                self.busy_prev += chunk;
            }
            remaining -= chunk;
            t += chunk;
        }
    }

    /// Total busy nanoseconds since construction.
    pub fn busy_nanos(&self) -> Nanos {
        self.busy
    }

    /// The sliding-window width.
    pub fn window(&self) -> Nanos {
        self.window
    }

    /// Busy fraction over `[0, now]`; 0 when `now == 0`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let t = now.as_nanos();
        if t == 0 {
            0.0
        } else {
            (self.busy as f64 / t as f64).min(1.0)
        }
    }

    /// Busy fraction over (approximately) the most recent window.
    pub fn windowed_utilization(&self, now: SimTime) -> f64 {
        let t = now.as_nanos();
        let w = t / self.window;
        let offset = t % self.window;
        let (cur, prev) = if w == self.cur_window {
            (self.busy_cur, self.busy_prev)
        } else if w == self.cur_window + 1 {
            (0, self.busy_cur)
        } else {
            (0, 0)
        };
        let weight_prev = (self.window - offset) as f64 / self.window as f64;
        ((cur as f64 + prev as f64 * weight_prev) / self.window as f64).min(1.0)
    }
}

impl Default for UtilizationTracker {
    fn default() -> Self {
        UtilizationTracker::new()
    }
}

/// A time-series sampler: `(instant, value)` pairs, e.g. the per-request
/// latency series of Figure 16.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// The collected samples in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Downsamples to at most `n` evenly spaced points (for plotting).
    pub fn thin(&self, n: usize) -> Vec<(SimTime, f64)> {
        if n == 0 || self.points.is_empty() {
            return Vec::new();
        }
        if self.points.len() <= n {
            return self.points.clone();
        }
        let step = self.points.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * step) as usize])
            .collect()
    }
}

/// Mean and (population) standard deviation of a slice; `(0, 0)` if empty.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        // below SUB_COUNT every value has its own bucket
        assert_eq!(h.percentile(1.0), 31);
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 37);
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // relative error of the bucketing is ~3%
        assert!(
            (p50 as f64 - 185_000.0).abs() / 185_000.0 < 0.05,
            "p50={p50}"
        );
    }

    #[test]
    fn histogram_cdf_ends_at_one() {
        let mut h = Histogram::new();
        for v in [5u64, 50, 500, 5_000, 50_000] {
            h.record(v);
        }
        let cdf = h.cdf_points();
        assert_eq!(cdf.len(), 5);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000);
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn histogram_empty_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert!(h.cdf_points().is_empty());
    }

    #[test]
    fn bucket_roundtrip_low_error() {
        for v in [1u64, 31, 32, 100, 1_000, 123_456, 9_999_999] {
            let low = Histogram::bucket_low(Histogram::index(v));
            assert!(low <= v, "low {low} > v {v}");
            assert!((v - low) as f64 / v as f64 <= 1.0 / 32.0 + 1e-9);
        }
    }

    #[test]
    fn utilization_cumulative() {
        let mut m = UtilizationTracker::new();
        m.add_busy(SimTime::ZERO, 25_000);
        assert!((m.utilization(SimTime::from_nanos(100_000)) - 0.25).abs() < 1e-9);
        assert_eq!(m.busy_nanos(), 25_000);
    }

    #[test]
    fn windowed_utilization_decays() {
        let mut m = UtilizationTracker::with_window(1_000);
        m.add_busy(SimTime::ZERO, 1_000); // saturate window 0
        let early = m.windowed_utilization(SimTime::from_nanos(1_100));
        assert!(early > 0.8, "just after busy window: {early}");
        let late = m.windowed_utilization(SimTime::from_nanos(5_000));
        assert!(late < 0.05, "long after busy window: {late}");
    }

    #[test]
    fn busy_spanning_windows_splits() {
        let mut m = UtilizationTracker::with_window(1_000);
        // 2_000ns of busy across windows 0 and 1
        m.add_busy(SimTime::from_nanos(500), 2_000);
        let u = m.windowed_utilization(SimTime::from_nanos(2_400));
        assert!(u > 0.5, "recent window should look busy: {u}");
    }

    #[test]
    fn series_thin_preserves_bounds() {
        let mut s = TimeSeries::new();
        for i in 0..1_000 {
            s.push(SimTime::from_nanos(i), i as f64);
        }
        let t = s.thin(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t[0].1, 0.0);
        assert_eq!(s.len(), 1_000);
        assert!(!s.is_empty());
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
