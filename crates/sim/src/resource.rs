//! *Busy-until* resources: the contention primitive of the simulator.
//!
//! A serially shared piece of hardware (a PCI-E link, the cluster-local
//! ONFi bus, a NAND die) is modelled by the instant it next becomes free.
//! A reservation made at time `t` for duration `d` starts at
//! `max(t, free_at)`; the difference is exactly the *contention time*
//! attributed to the requester. Reservations are granted in call order,
//! which matches FIFO arbitration.

use crate::stats::UtilizationTracker;
use crate::time::{Nanos, SimTime};

/// Outcome of reserving a resource: when service starts/ends and how long
/// the requester had to wait for the resource (its contention time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Instant at which the resource begins serving this reservation.
    pub start: SimTime,
    /// Instant at which the resource is released again.
    pub end: SimTime,
    /// `start - now`: time spent waiting behind earlier reservations.
    pub wait: Nanos,
}

/// A single-server FIFO resource with utilization accounting.
///
/// # Example
///
/// ```
/// use triplea_sim::{FifoResource, SimTime};
///
/// let mut bus = FifoResource::new("onfi-bus");
/// let a = bus.reserve(SimTime::ZERO, 100);
/// let b = bus.reserve(SimTime::from_nanos(30), 50);
/// assert_eq!(a.wait, 0);
/// assert_eq!(b.wait, 70); // waited for `a` to finish
/// assert_eq!(b.end, SimTime::from_nanos(150));
/// ```
#[derive(Clone, Debug)]
pub struct FifoResource {
    name: &'static str,
    free_at: SimTime,
    util: UtilizationTracker,
}

impl FifoResource {
    /// Creates an idle resource. `name` appears in diagnostics only.
    pub fn new(name: &'static str) -> Self {
        FifoResource {
            name,
            free_at: SimTime::ZERO,
            util: UtilizationTracker::new(),
        }
    }

    /// Reserves the resource at `now` for `dur` nanoseconds, queueing
    /// behind all earlier reservations.
    pub fn reserve(&mut self, now: SimTime, dur: Nanos) -> Reservation {
        let start = now.max(self.free_at);
        let end = start + dur;
        self.free_at = end;
        self.util.add_busy(start, dur);
        Reservation {
            start,
            end,
            wait: start - now,
        }
    }

    /// Would a reservation at `now` start immediately?
    pub fn is_free_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// The instant the last reservation ends.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Fraction of time busy since the start of the simulation, evaluated
    /// at `now`. Returns 0 for `now == 0`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.util.utilization(now)
    }

    /// Fraction of time busy within the recent sliding window (used by the
    /// paper's Eq. 2 cold-cluster test).
    ///
    /// Busy-until reservations on a backlogged resource land in *future*
    /// windows, which would make a saturated resource look idle; the
    /// pending backlog therefore counts toward the estimate — a resource
    /// reserved past `now` is busy by definition.
    pub fn windowed_utilization(&self, now: SimTime) -> f64 {
        let history = self.util.windowed_utilization(now);
        let backlog = self.free_at.saturating_since(now) as f64 / self.util.window() as f64;
        history.max(backlog.min(1.0))
    }

    /// Diagnostic name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total busy nanoseconds accumulated so far.
    pub fn busy_nanos(&self) -> Nanos {
        self.util.busy_nanos()
    }
}

/// A pool of `n` identical FIFO servers (e.g. the dies of a flash package
/// when operating in die-interleaved mode). A reservation is placed on the
/// earliest-free server.
#[derive(Clone, Debug)]
pub struct MultiResource {
    servers: Vec<FifoResource>,
}

impl MultiResource {
    /// Creates `n` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(name: &'static str, n: usize) -> Self {
        assert!(n > 0, "MultiResource needs at least one server");
        MultiResource {
            servers: (0..n).map(|_| FifoResource::new(name)).collect(),
        }
    }

    /// Reserves the earliest-available server; returns the reservation and
    /// the index of the chosen server.
    pub fn reserve(&mut self, now: SimTime, dur: Nanos) -> (Reservation, usize) {
        let (idx, _) = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.free_at())
            .expect("non-empty by construction");
        (self.servers[idx].reserve(now, dur), idx)
    }

    /// Reserves a *specific* server (e.g. the die that physically holds the
    /// target page — reads cannot be steered to another die).
    pub fn reserve_server(&mut self, idx: usize, now: SimTime, dur: Nanos) -> Reservation {
        self.servers[idx].reserve(now, dur)
    }

    /// Number of servers in the pool.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` if the pool has no servers (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access to an individual server's state.
    pub fn server(&self, idx: usize) -> &FifoResource {
        &self.servers[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_reservations_queue() {
        let mut r = FifoResource::new("r");
        let a = r.reserve(SimTime::ZERO, 10);
        let b = r.reserve(SimTime::ZERO, 10);
        let c = r.reserve(SimTime::ZERO, 10);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::from_nanos(10));
        assert_eq!(c.start, SimTime::from_nanos(20));
        assert_eq!(c.wait, 20);
    }

    #[test]
    fn idle_gap_resets_wait() {
        let mut r = FifoResource::new("r");
        r.reserve(SimTime::ZERO, 10);
        let b = r.reserve(SimTime::from_nanos(100), 10);
        assert_eq!(b.wait, 0);
        assert_eq!(b.start, SimTime::from_nanos(100));
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let mut r = FifoResource::new("r");
        r.reserve(SimTime::ZERO, 50);
        // busy 50ns of the first 100ns
        let u = r.utilization(SimTime::from_nanos(100));
        assert!((u - 0.5).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn backlogged_resource_reports_saturated_window() {
        let mut r = FifoResource::new("r");
        // Queue 1ms of work at t=0: reservations land far in the future,
        // but at t=50us the resource is clearly saturated.
        for _ in 0..100 {
            r.reserve(SimTime::ZERO, 10_000);
        }
        let u = r.windowed_utilization(SimTime::from_us(50));
        assert!(u > 0.99, "saturated resource reported u = {u}");
    }

    #[test]
    fn is_free_at_tracks_reservations() {
        let mut r = FifoResource::new("r");
        assert!(r.is_free_at(SimTime::ZERO));
        r.reserve(SimTime::ZERO, 10);
        assert!(!r.is_free_at(SimTime::from_nanos(5)));
        assert!(r.is_free_at(SimTime::from_nanos(10)));
    }

    #[test]
    fn multi_resource_balances() {
        let mut m = MultiResource::new("dies", 2);
        let (a, ia) = m.reserve(SimTime::ZERO, 100);
        let (b, ib) = m.reserve(SimTime::ZERO, 100);
        assert_eq!(a.wait, 0);
        assert_eq!(b.wait, 0, "second die should absorb the second op");
        assert_ne!(ia, ib);
        let (c, _) = m.reserve(SimTime::ZERO, 100);
        assert_eq!(c.wait, 100, "third op must wait for a die");
    }

    #[test]
    fn multi_resource_pinned_server() {
        let mut m = MultiResource::new("dies", 2);
        m.reserve_server(0, SimTime::ZERO, 100);
        let r = m.reserve_server(0, SimTime::ZERO, 10);
        assert_eq!(r.wait, 100, "pinned to the busy die");
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_panics() {
        MultiResource::new("x", 0);
    }
}
