//! Discrete-event simulation kernel used by every other crate in the
//! Triple-A reproduction.
//!
//! The kernel is deliberately small and dependency-free so that every
//! simulation run is bit-for-bit deterministic:
//!
//! * [`SimTime`] — a nanosecond-resolution simulated clock value.
//! * [`EventQueue`] — a stable priority queue of timestamped events.
//! * [`SplitMix64`] — a tiny, seedable PRNG for tie-breaking decisions
//!   inside the simulator (workload generation uses `rand` instead).
//! * [`stats`] — latency histograms, CDF extraction, utilization
//!   trackers, and time-series samplers used to produce the paper's
//!   tables/figures.
//! * [`resource::FifoResource`] — the *busy-until* primitive that models
//!   serially shared hardware (PCI-E links, the cluster-local ONFi bus,
//!   NAND dies) and attributes waiting time to contention.
//! * [`shard`] — the conservative parallel executor: partitions one run
//!   into per-domain shards synchronised by lookahead windows, with
//!   deterministic cross-shard mailboxes, so results are bit-identical
//!   at any worker count.
//! * [`trace`] — the array-wide event-tracing subsystem: a
//!   zero-cost-when-disabled ring-buffer [`trace::Recorder`] of typed
//!   [`trace::TraceEvent`]s plus a [`trace::MetricRegistry`] of
//!   per-component instruments, exported as byte-stable JSON and Chrome
//!   `trace_event` format.
//!
//! # Example
//!
//! ```
//! use triplea_sim::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::from_us(3), "late");
//! q.push(SimTime::from_us(1), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_us(1), "early"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod rng;
mod time;

pub mod hash;
pub mod resource;
pub mod shard;
pub mod stats;
pub mod trace;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use queue::{BaselineHeapQueue, EventQueue};
pub use shard::{run_conservative, Envelope, Outbox, Shard, ShardRunStats};
pub use resource::{FifoResource, MultiResource, Reservation};
pub use rng::SplitMix64;
pub use time::{Nanos, SimTime};
pub use trace::{
    Metric, MetricId, MetricRegistry, Recorder, RunTrace, SharedRecorder, TraceConfig, TraceEvent,
    TraceEventKind, TracePort, TraceScope,
};
