//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in simulated nanoseconds.
///
/// Durations are plain integers rather than a newtype so that timing
/// formulas (e.g. the paper's Eq. 1) read naturally.
pub type Nanos = u64;

/// An absolute point in simulated time, in nanoseconds since the start of
/// the simulation.
///
/// `SimTime` is a newtype over `u64` ([C-NEWTYPE]) so that absolute times
/// and durations cannot be confused: adding two `SimTime`s is a compile
/// error, while `SimTime + Nanos` yields a `SimTime`.
///
/// # Example
///
/// ```
/// use triplea_sim::SimTime;
///
/// let t = SimTime::from_us(2) + 500;
/// assert_eq!(t.as_nanos(), 2_500);
/// assert_eq!(t - SimTime::ZERO, 2_500);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the simulation origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Nanoseconds elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Nanos {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add<Nanos> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: Nanos) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<Nanos> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Nanos;

    /// Elapsed nanoseconds between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> Nanos {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_us(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_ms(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_us(10);
        let u = t + 250;
        assert_eq!(u - t, 250);
        assert_eq!(u.saturating_since(t), 250);
        assert_eq!(t.saturating_since(u), 0);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimTime::from_us(2).to_string(), "2.000us");
        assert_eq!(SimTime::from_ms(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn float_views() {
        let t = SimTime::from_nanos(1_500);
        assert!((t.as_us_f64() - 1.5).abs() < 1e-12);
    }
}
