//! A deterministic, DoS-hardening-free hasher for simulator hot paths.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) burns ~1 ns/byte to
//! resist hash-flooding attacks — protection a closed, deterministic
//! simulator does not need. This module provides the multiply-xor
//! scheme popularised by rustc (`FxHasher`): a handful of cycles per
//! word, identical results on every platform and every run.
//!
//! Determinism note: swapping the hasher changes *iteration order* of
//! maps. Every hot map in the workspace was audited before adopting
//! these aliases — each is either never iterated, or its consumers
//! sort/tie-break before order can leak into simulated outcomes (see
//! `DESIGN.md`, "Hot-path architecture").
//!
//! # Example
//!
//! ```
//! use triplea_sim::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier: a large odd constant with well-mixed bits
/// (derived from the golden ratio, as in rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-xor hasher.
///
/// Not cryptographic and not flood-resistant — use only for keys an
/// adversary cannot choose, which in this workspace means simulator
/// state keyed by page numbers, block keys, and component ids.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, `Default`-constructible.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Drop-in for `std::HashMap` on
/// hot paths; see the module docs for the iteration-order caveat.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"page"), hash_of(&"page"));
        assert_eq!(
            hash_of(&(3u32, 7u32, 11u32)),
            hash_of(&(3u32, 7u32, 11u32))
        );
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test — just a guard against a degenerate
        // implementation that ignores its input.
        let hashes: std::collections::HashSet<u64> = (0u64..1_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1_000);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m[&(1, 2)], 3);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn partial_tail_bytes_hash() {
        let mut h = FxHasher::default();
        h.write(b"hello world"); // 11 bytes: one full word + 3-byte tail
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"hello worle");
        assert_ne!(a, h2.finish());
    }
}
