//! The `triplea-harness` layer: declarative experiment specs, a
//! rayon-backed parallel runner, structured JSON artifacts, and the
//! golden-snapshot machinery.
//!
//! An [`Experiment`] is a named list of independent [sweep
//! points](SweepPoint); each point is a pure function from a
//! [`PointCtx`] (which carries the centrally derived seeds) to a
//! [`serde_json::Value`] holding everything the experiment measured at
//! that point. The [`Runner`] executes points across worker threads and
//! collects results **in spec order**, so the same spec produces
//! byte-identical artifacts at any thread count — a property
//! `tests/golden.rs` pins down at 1, 2, and 8 threads.
//!
//! Each experiment renders twice from the same data:
//!
//! * `results/<name>.json` — the structured artifact, the thing the
//!   golden suite byte-compares;
//! * `results/<name>.txt` — the human-readable tables, derived *from
//!   the artifact* by the experiment's renderer, so text and JSON can
//!   never drift apart.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rayon::prelude::*;
use serde_json::Value;

/// How much traffic each experiment drives.
///
/// The full scale reproduces the paper's evaluation; the quick scale is
/// the golden-snapshot suite's working size (same sweep structure, ~50×
/// less traffic, seconds instead of minutes under `cargo test`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Baseline request count (the old `REQUESTS` constant); individual
    /// experiments multiply or divide this per sweep point.
    pub requests: usize,
}

impl Scale {
    /// Paper scale: 100 k requests per run.
    pub fn full() -> Self {
        Scale {
            requests: crate::REQUESTS,
        }
    }

    /// Golden-snapshot scale: 1 k requests per run.
    pub fn quick() -> Self {
        Scale { requests: 1_000 }
    }

    /// Parses `"full"` / `"quick"`.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "full" => Some(Scale::full()),
            "quick" => Some(Scale::quick()),
            _ => None,
        }
    }
}

/// Seed stream shared by every point of one experiment (FNV-1a over the
/// experiment name, finalized SplitMix-style).
///
/// Sweep experiments use this for trace generation so every row of a
/// sensitivity sweep sees the *same* workload and only the swept
/// parameter varies.
pub fn experiment_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix(h)
}

/// Per-point seed: the experiment stream advanced by the sweep index.
/// Appending a sweep point never reshuffles the seeds of existing
/// points.
pub fn point_seed(name: &str, index: usize) -> u64 {
    mix(experiment_seed(name) ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything a sweep point's closure receives from the harness.
#[derive(Clone, Copy, Debug)]
pub struct PointCtx {
    /// This point's private seed (`point_seed(name, index)`).
    pub seed: u64,
    /// The experiment-wide seed (`experiment_seed(name)`), for traces
    /// that must be identical across sweep points.
    pub base_seed: u64,
    /// Position of this point in the spec.
    pub index: usize,
}

type PointFn = Box<dyn Fn(&PointCtx) -> Value + Send + Sync>;
type RenderFn = Box<dyn Fn(&ExperimentResult) -> String + Send + Sync>;
type ArtifactFn = Box<dyn Fn(&ExperimentResult) -> String + Send + Sync>;

/// One independent simulation (or analysis) run within an experiment.
pub struct SweepPoint {
    /// Stable identifier of the point (also the key in rendered rows).
    pub label: String,
    run: PointFn,
}

/// A declarative experiment: name, sweep points, renderer.
pub struct Experiment {
    /// Artifact stem (`results/<name>.json` / `.txt`).
    pub name: &'static str,
    /// Human-readable experiment title.
    pub title: &'static str,
    points: Vec<SweepPoint>,
    renderer: RenderFn,
    extra: Vec<(String, ArtifactFn)>,
}

impl Experiment {
    /// Creates an empty experiment with a JSON-dump renderer.
    pub fn new(name: &'static str, title: &'static str) -> Self {
        Experiment {
            name,
            title,
            points: Vec::new(),
            renderer: Box::new(|res| format!("## {}\n\n(no renderer)\n", res.title)),
            extra: Vec::new(),
        }
    }

    /// Appends a sweep point. Points execute in parallel but report in
    /// this order.
    pub fn point(
        &mut self,
        label: impl Into<String>,
        run: impl Fn(&PointCtx) -> Value + Send + Sync + 'static,
    ) -> &mut Self {
        self.points.push(SweepPoint {
            label: label.into(),
            run: Box::new(run),
        });
        self
    }

    /// Sets the renderer deriving the human-readable text from the
    /// collected results.
    pub fn renderer(
        &mut self,
        render: impl Fn(&ExperimentResult) -> String + Send + Sync + 'static,
    ) -> &mut Self {
        self.renderer = Box::new(render);
        self
    }

    /// Registers an extra derived artifact `results/<name>.<suffix>`.
    ///
    /// Like the `.txt` report, it is a pure function of the collected
    /// results, so it inherits their byte-determinism — the `timeline`
    /// experiment uses this to emit its Chrome `trace_event` file.
    pub fn artifact(
        &mut self,
        suffix: impl Into<String>,
        derive: impl Fn(&ExperimentResult) -> String + Send + Sync + 'static,
    ) -> &mut Self {
        self.extra.push((suffix.into(), Box::new(derive)));
        self
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the experiment has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders the human-readable report from a result.
    pub fn render(&self, result: &ExperimentResult) -> String {
        (self.renderer)(result)
    }

    fn ctx(&self, index: usize) -> PointCtx {
        PointCtx {
            seed: point_seed(self.name, index),
            base_seed: experiment_seed(self.name),
            index,
        }
    }
}

/// The measured data of one sweep point.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PointResult {
    /// The point's label, copied from the spec.
    pub label: String,
    /// The seed the point ran with.
    pub seed: u64,
    /// Everything the point measured.
    pub data: Value,
}

/// All results of one experiment, in spec order.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentResult {
    /// Experiment name (artifact stem).
    pub name: String,
    /// Experiment title.
    pub title: String,
    /// Baseline request count the experiment ran at.
    pub requests: usize,
    /// Per-point results, in spec order regardless of completion order.
    pub points: Vec<PointResult>,
}

impl ExperimentResult {
    /// The structured artifact as deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment results are finite")
    }

    /// Data of the point labelled `label`.
    ///
    /// # Panics
    ///
    /// Panics when no point carries the label — a spec/renderer
    /// mismatch, which should fail loudly.
    pub fn data(&self, label: &str) -> &Value {
        &self
            .points
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("no sweep point labelled {label:?} in {}", self.name))
            .data
    }

    /// Iterates `(label, data)` pairs whose label starts with `prefix`,
    /// in spec order — how sectioned experiments (e.g. `faults`) slice
    /// their rows.
    pub fn section<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a Value)> + 'a {
        self.points
            .iter()
            .filter(move |p| p.label.starts_with(prefix))
            .map(|p| (p.label.as_str(), &p.data))
    }
}

/// In which order the runner *starts* sweep points. Results are always
/// collected in spec order; this knob exists so the determinism tests
/// can prove completion order does not matter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecOrder {
    /// Start points in spec order (the default).
    #[default]
    SpecOrder,
    /// Start points in a seed-derived pseudo-random order.
    Scrambled(u64),
}

/// Executes experiments across worker threads.
#[derive(Clone, Copy, Debug, Default)]
pub struct Runner {
    threads: usize,
    order: ExecOrder,
}

impl Runner {
    /// A runner using the environment's thread count
    /// (`RAYON_NUM_THREADS`, else all available cores).
    pub fn new() -> Self {
        Runner::default()
    }

    /// Pins the worker-thread count (`0` = environment-derived).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets the execution order (see [`ExecOrder`]).
    pub fn order(mut self, order: ExecOrder) -> Self {
        self.order = order;
        self
    }

    /// The worker-thread count this runner will use.
    pub fn thread_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            rayon::current_num_threads()
        }
    }

    /// Runs one experiment; results come back in spec order.
    pub fn run(&self, exp: &Experiment, scale: Scale) -> ExperimentResult {
        let mut results = self.run_suite(&[exp], scale);
        results.pop().expect("one experiment in, one result out")
    }

    /// Runs a whole suite, parallelizing across **all** points of all
    /// experiments (so a wide experiment cannot serialize a narrow one
    /// behind it). Results come back in suite order, each experiment's
    /// points in spec order.
    pub fn run_suite(&self, exps: &[&Experiment], scale: Scale) -> Vec<ExperimentResult> {
        // Flatten to (experiment, point) tasks.
        let tasks: Vec<(usize, usize)> = exps
            .iter()
            .enumerate()
            .flat_map(|(e, exp)| (0..exp.points.len()).map(move |p| (e, p)))
            .collect();
        let order = match self.order {
            ExecOrder::SpecOrder => (0..tasks.len()).collect::<Vec<_>>(),
            ExecOrder::Scrambled(seed) => permutation(tasks.len(), seed),
        };

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("thread pool");
        let mut done: Vec<(usize, PointResult)> = pool.install(|| {
            order
                .par_iter()
                .map(|&task_idx| {
                    let (e, p) = tasks[task_idx];
                    let exp = exps[e];
                    let ctx = exp.ctx(p);
                    let data = (exp.points[p].run)(&ctx);
                    (
                        task_idx,
                        PointResult {
                            label: exp.points[p].label.clone(),
                            seed: ctx.seed,
                            data,
                        },
                    )
                })
                .collect()
        });
        // Completion order is arbitrary; spec order is not.
        done.sort_by_key(|(task_idx, _)| *task_idx);

        let mut out: Vec<ExperimentResult> = exps
            .iter()
            .map(|exp| ExperimentResult {
                name: exp.name.to_string(),
                title: exp.title.to_string(),
                requests: scale.requests,
                points: Vec::with_capacity(exp.points.len()),
            })
            .collect();
        for (task_idx, point) in done {
            let (e, _) = tasks[task_idx];
            out[e].points.push(point);
        }
        out
    }
}

/// Fisher–Yates permutation of `0..n` from a SplitMix stream.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = mix(state);
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Writes `results/<name>.json`, the renderer-derived
/// `results/<name>.txt`, and any registered extra artifacts
/// (`results/<name>.<suffix>`); returns the paths in that order.
pub fn write_artifacts(
    exp: &Experiment,
    result: &ExperimentResult,
    out_dir: &Path,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let json_path = out_dir.join(format!("{}.json", exp.name));
    let txt_path = out_dir.join(format!("{}.txt", exp.name));
    std::fs::write(&json_path, result.to_json())?;
    std::fs::write(&txt_path, exp.render(result))?;
    let mut paths = vec![json_path, txt_path];
    for (suffix, derive) in &exp.extra {
        let path = out_dir.join(format!("{}.{suffix}", exp.name));
        std::fs::write(&path, derive(result))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Compares an artifact against its golden snapshot, reporting the
/// first divergence with surrounding context — the message the golden
/// suite surfaces on regression.
pub fn compare_snapshot(name: &str, expected: &str, actual: &str) -> Result<(), String> {
    if expected == actual {
        return Ok(());
    }
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    let first = exp_lines
        .iter()
        .zip(&act_lines)
        .position(|(e, a)| e != a)
        .unwrap_or(exp_lines.len().min(act_lines.len()));
    let mut msg = format!(
        "golden snapshot mismatch for {name:?}: first difference at line {}\n",
        first + 1
    );
    let start = first.saturating_sub(2);
    for i in start..(first + 3) {
        match (exp_lines.get(i), act_lines.get(i)) {
            (Some(e), Some(a)) if e == a => {
                let _ = writeln!(msg, "     {e}");
            }
            (e, a) => {
                if let Some(e) = e {
                    let _ = writeln!(msg, "   - {e}");
                }
                if let Some(a) = a {
                    let _ = writeln!(msg, "   + {a}");
                }
            }
        }
    }
    let _ = writeln!(
        msg,
        "  ({} golden lines, {} actual lines; set TRIPLEA_BLESS=1 to re-bless)",
        exp_lines.len(),
        act_lines.len()
    );
    Err(msg)
}

/// `true` when the test run should regenerate golden snapshots
/// (`TRIPLEA_BLESS=1`).
pub fn bless_requested() -> bool {
    std::env::var("TRIPLEA_BLESS").map(|v| v == "1").unwrap_or(false)
}

// ---------------------------------------------------------------------
// Value plumbing shared by the experiment specs and renderers.
// ---------------------------------------------------------------------

/// Builds an insertion-ordered JSON object.
pub fn obj<const N: usize>(pairs: [(&str, Value); N]) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Vec of values → JSON array.
pub fn arr(items: Vec<Value>) -> Value {
    Value::Array(items)
}

/// bool → JSON bool.
pub fn flag(b: bool) -> Value {
    Value::Bool(b)
}

/// f64 → JSON number.
pub fn num(x: f64) -> Value {
    Value::F64(x)
}

/// u64 → JSON number.
pub fn uint(x: u64) -> Value {
    Value::U64(x)
}

/// &str → JSON string.
pub fn text(s: &str) -> Value {
    Value::Str(s.to_string())
}

/// Dotted-path f64 accessor (`jf(&data, "aaa.iops")`); 0.0 when absent.
pub fn jf(v: &Value, path: &str) -> f64 {
    walk(v, path).as_f64().unwrap_or(0.0)
}

/// Dotted-path u64 accessor; 0 when absent.
pub fn ju(v: &Value, path: &str) -> u64 {
    walk(v, path).as_u64().unwrap_or(0)
}

/// Dotted-path string accessor; `""` when absent.
pub fn js(v: &Value, path: &str) -> String {
    walk(v, path).as_str().unwrap_or_default().to_string()
}

fn walk<'a>(v: &'a Value, path: &str) -> &'a Value {
    let mut cur = v;
    for seg in path.split('.') {
        cur = &cur[seg];
    }
    cur
}

/// The standard per-run summary every experiment embeds: the derived
/// metrics the paper's tables and figures are built from, plus the raw
/// activity counters. Deliberately *not* the full
/// [`RunReport`](triplea_core::RunReport) (whose
/// histograms would bloat artifacts); renderers read these values back
/// with [`jf`]/[`ju`].
pub fn report_json(r: &triplea_core::RunReport) -> Value {
    let mut v = obj([
        ("mode", text(&r.mode().to_string())),
        ("completed", uint(r.completed())),
        ("reads", uint(r.reads())),
        ("writes", uint(r.writes())),
        ("makespan_ns", uint(r.makespan().as_nanos())),
        ("iops", num(r.iops())),
        ("mean_latency_us", num(r.mean_latency_us())),
        ("p50_us", num(r.latency_percentile_us(0.5))),
        ("p99_us", num(r.latency_percentile_us(0.99))),
        ("link_contention_us", num(r.avg_link_contention_us())),
        ("storage_contention_us", num(r.avg_storage_contention_us())),
        ("queue_stall_us", num(r.avg_queue_stall_us())),
        ("rc_stall_us", num(r.avg_rc_stall_us())),
        ("switch_stall_us", num(r.avg_switch_stall_us())),
        ("direct_link_us", num(r.avg_direct_link_wait_us())),
        ("direct_storage_us", num(r.avg_direct_storage_wait_us())),
        ("fimm_service_us", num(r.avg_fimm_service_us())),
        ("network_us", num(r.avg_network_us())),
        ("dropped_writes", uint(r.dropped_writes())),
        ("migration_write_overhead", num(r.migration_write_overhead())),
        ("autonomic", serde_json::to_value(r.autonomic_stats())),
        ("ftl", serde_json::to_value(&r.ftl_stats())),
        ("wear", serde_json::to_value(&r.wear())),
        ("faults", serde_json::to_value(&r.fault_stats())),
        ("events", uint(r.events_processed())),
    ]);
    // Runs without power losses or rebuilds keep the pre-recovery
    // artifact shape, so quiet goldens stay byte-stable.
    let rec = r.recovery_stats();
    if rec.any() {
        if let Value::Object(fields) = &mut v {
            fields.push(("recovery".to_string(), serde_json::to_value(&rec)));
        }
    }
    // Untenanted runs likewise keep the pre-tenant artifact shape.
    let tenants = r.tenant_stats();
    if !tenants.is_empty() {
        if let Value::Object(fields) = &mut v {
            fields.push((
                "sla_violations".to_string(),
                uint(r.sla_violations()),
            ));
            fields.push(("tenants".to_string(), serde_json::to_value(&tenants.to_vec())));
        }
    }
    v
}

/// Formats a Markdown table (the string [`crate::print_table`] prints).
pub fn fmt_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = format!("\n## {title}\n\n");
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Formats `(x, y, ...)` series as CSV with a comment header (the
/// string [`crate::print_csv_series`] prints).
pub fn fmt_csv_series(name: &str, columns: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = format!("\n# {name}\n");
    let _ = writeln!(out, "{}", columns.join(","));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Wall-clock timing of one suite run, for the `bench all` summary.
pub struct SuiteTiming {
    /// Thread count the suite ran with.
    pub threads: usize,
    /// Total sweep points executed.
    pub points: usize,
    /// Elapsed wall-clock seconds.
    pub secs: f64,
}

/// Runs a suite and measures it.
pub fn run_suite_timed(
    runner: &Runner,
    exps: &[&Experiment],
    scale: Scale,
) -> (Vec<ExperimentResult>, SuiteTiming) {
    let start = Instant::now();
    let results = runner.run_suite(exps, scale);
    let secs = start.elapsed().as_secs_f64();
    (
        results,
        SuiteTiming {
            threads: runner.thread_count(),
            points: exps.iter().map(|e| e.len()).sum(),
            secs,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Experiment {
        let mut e = Experiment::new("toy", "Toy experiment");
        for i in 0..6u64 {
            e.point(format!("p{i}"), move |ctx| {
                obj([
                    ("i", uint(i)),
                    ("seed", uint(ctx.seed)),
                    ("base", uint(ctx.base_seed)),
                ])
            });
        }
        e.renderer(|res| {
            let rows: Vec<Vec<String>> = res
                .points
                .iter()
                .map(|p| vec![p.label.clone(), ju(&p.data, "i").to_string()])
                .collect();
            fmt_table(&res.title, &["point", "i"], &rows)
        });
        e
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(experiment_seed("fig09"), experiment_seed("fig09"));
        assert_ne!(experiment_seed("fig09"), experiment_seed("fig10"));
        assert_ne!(point_seed("fig09", 0), point_seed("fig09", 1));
        // Appending a point never changes earlier seeds: seeds depend
        // only on (name, index).
        let before: Vec<u64> = (0..4).map(|i| point_seed("x", i)).collect();
        let after: Vec<u64> = (0..5).map(|i| point_seed("x", i)).collect();
        assert_eq!(before, after[..4]);
    }

    #[test]
    fn runner_collects_in_spec_order_at_any_thread_count() {
        let e = toy();
        let scale = Scale::quick();
        let one = Runner::new().threads(1).run(&e, scale);
        for threads in [2, 8] {
            let multi = Runner::new().threads(threads).run(&e, scale);
            assert_eq!(multi, one, "threads={threads}");
            assert_eq!(multi.to_json(), one.to_json());
        }
        let labels: Vec<&str> = one.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["p0", "p1", "p2", "p3", "p4", "p5"]);
    }

    #[test]
    fn scrambled_start_order_changes_nothing() {
        let e = toy();
        let spec = Runner::new().threads(2).run(&e, Scale::quick());
        for seed in [1u64, 0xDEAD, 42] {
            let scrambled = Runner::new()
                .threads(2)
                .order(ExecOrder::Scrambled(seed))
                .run(&e, Scale::quick());
            assert_eq!(scrambled, spec, "scramble seed {seed}");
        }
    }

    #[test]
    fn suite_flattens_across_experiments() {
        let a = toy();
        let mut b = Experiment::new("toy2", "Second");
        b.point("only", |ctx| obj([("seed", uint(ctx.seed))]));
        let results = Runner::new().threads(4).run_suite(&[&a, &b], Scale::quick());
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].points.len(), 6);
        assert_eq!(results[1].points.len(), 1);
        assert_eq!(results[1].name, "toy2");
        // Per-experiment seeds differ even at equal indices.
        assert_ne!(results[0].points[0].seed, results[1].points[0].seed);
    }

    #[test]
    fn render_derives_from_artifact_data() {
        let e = toy();
        let res = Runner::new().threads(1).run(&e, Scale::quick());
        let txt = e.render(&res);
        assert!(txt.contains("## Toy experiment"));
        assert!(txt.contains("| p3 | 3 |"));
    }

    #[test]
    fn snapshot_compare_reports_first_divergence() {
        let good = "line1\nline2\nline3\n";
        assert!(compare_snapshot("x", good, good).is_ok());
        let bad = "line1\nlineX\nline3\n";
        let err = compare_snapshot("x", good, bad).unwrap_err();
        assert!(err.contains("first difference at line 2"), "{err}");
        assert!(err.contains("- line2"), "{err}");
        assert!(err.contains("+ lineX"), "{err}");
        assert!(err.contains("TRIPLEA_BLESS=1"), "{err}");
    }

    #[test]
    fn experiment_result_lookup_and_sections() {
        let mut e = Experiment::new("sec", "Sections");
        e.point("flash/none", |_| obj([("v", uint(1))]));
        e.point("flash/heavy", |_| obj([("v", uint(2))]));
        e.point("pcie/none", |_| obj([("v", uint(3))]));
        let res = Runner::new().threads(1).run(&e, Scale::quick());
        assert_eq!(ju(res.data("flash/heavy"), "v"), 2);
        let flash: Vec<&str> = res.section("flash/").map(|(l, _)| l).collect();
        assert_eq!(flash, ["flash/none", "flash/heavy"]);
    }

    #[test]
    fn dotted_path_accessors() {
        let v = obj([(
            "base",
            obj([("iops", num(1.5)), ("mode", text("triple-a"))]),
        )]);
        assert_eq!(jf(&v, "base.iops"), 1.5);
        assert_eq!(js(&v, "base.mode"), "triple-a");
        assert_eq!(jf(&v, "missing.path"), 0.0);
        assert_eq!(ju(&v, "missing"), 0);
    }
}
