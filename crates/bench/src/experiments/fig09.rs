//! Figure 9: latency and IOPS of Triple-A normalized to the
//! non-autonomic array, across the enterprise and HPC workloads.

use crate::experiments::{geo_mean, kiops, pair_json, ratio};
use crate::harness::{flag, jf, ju, obj, text, Experiment, Scale};
use crate::{bench_config, enterprise_trace_n, f2};
use triplea_workloads::WorkloadProfile;

/// Builds the Figure 9 experiment: one point per Table-1 workload.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new("fig09", "Figure 9: Triple-A normalized to non-autonomic baseline");
    for profile in WorkloadProfile::table1() {
        let profile = *profile;
        e.point(profile.name, move |ctx| {
            let cfg = bench_config();
            let trace = enterprise_trace_n(&profile, &cfg, ctx.seed, scale.requests);
            let (base, aaa) = pair_json(cfg, &trace);
            obj([
                ("workload", text(profile.name)),
                ("uniform", flag(profile.is_uniform())),
                ("base", base),
                ("aaa", aaa),
            ])
        });
    }
    e.renderer(|res| {
        let mut rows = Vec::new();
        let mut lat_ratios = Vec::new();
        let mut iops_ratios = Vec::new();
        for p in &res.points {
            let d = &p.data;
            let lat_ratio = ratio(jf(d, "aaa.mean_latency_us"), jf(d, "base.mean_latency_us"));
            let iops_ratio = ratio(jf(d, "aaa.iops"), jf(d, "base.iops"));
            if d["uniform"].as_bool() != Some(true) {
                lat_ratios.push(lat_ratio);
                iops_ratios.push(iops_ratio);
            }
            rows.push(vec![
                p.label.clone(),
                f2(lat_ratio),
                f2(iops_ratio),
                format!("{:.0}", jf(d, "base.mean_latency_us")),
                format!("{:.0}", jf(d, "aaa.mean_latency_us")),
                kiops(jf(d, "base.iops")),
                kiops(jf(d, "aaa.iops")),
                ju(d, "aaa.autonomic.migrations_started").to_string(),
            ]);
        }
        let mut out = crate::harness::fmt_table(
            &res.title,
            &[
                "Workload",
                "Norm. latency (lower=better)",
                "Norm. IOPS (higher=better)",
                "Base lat (us)",
                "AAA lat (us)",
                "Base IOPS",
                "AAA IOPS",
                "Migrations",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nhot-cluster workloads geometric mean: normalized latency {:.2} \
             (paper: ~0.2), normalized IOPS {:.2} (paper: ~2.0)\n",
            geo_mean(&lat_ratios),
            geo_mean(&iops_ratios),
        ));
        out
    });
    e
}
