//! §6.5 wear-out analysis: extra writes induced by autonomic data
//! migration and the resulting flash-lifetime reduction.

use crate::harness::{jf, ju, obj, report_json, text, Experiment, Scale};
use crate::{bench_config, enterprise_trace_n, f1};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::WorkloadProfile;

/// Builds the wear-out experiment: one point per workload with writes.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "wearout",
        "Wear-out: extra writes from autonomic migration (paper worst case: +34% writes, -23% lifetime)",
    );
    for profile in WorkloadProfile::table1() {
        if profile.read_ratio >= 1.0 {
            continue; // no host writes: overhead ratio undefined
        }
        let profile = *profile;
        e.point(profile.name, move |ctx| {
            let cfg = bench_config();
            let trace = enterprise_trace_n(&profile, &cfg, ctx.seed, scale.requests);
            let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
            obj([
                ("workload", text(profile.name)),
                ("aaa", report_json(&aaa)),
            ])
        });
    }
    e.renderer(|res| {
        let mut rows = Vec::new();
        let mut worst = 0.0f64;
        for p in &res.points {
            let d = &p.data;
            let overhead = jf(d, "aaa.migration_write_overhead");
            let lifetime_loss = overhead / (1.0 + overhead);
            worst = worst.max(overhead);
            rows.push(vec![
                p.label.clone(),
                ju(d, "aaa.ftl.host_writes").to_string(),
                ju(d, "aaa.ftl.migration_writes").to_string(),
                ju(d, "aaa.ftl.gc_writes").to_string(),
                f1(overhead * 100.0),
                f1(lifetime_loss * 100.0),
                format!("{:.4}", jf(d, "aaa.wear.mean_erase_count")),
            ]);
        }
        let mut out = crate::harness::fmt_table(
            &res.title,
            &[
                "Workload",
                "Host writes",
                "Migration writes",
                "GC writes",
                "Extra writes (%)",
                "Lifetime loss (%)",
                "Mean erase count",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nworst case measured: +{:.0}% writes => -{:.0}% lifetime \
             (offset by the ~50% cost reduction of unboxing, §6.5)\n",
            worst * 100.0,
            worst / (1.0 + worst) * 100.0
        ));
        out
    });
    e
}
