//! Figure 10: link-contention, storage-contention, and queue-stall
//! times of Triple-A normalized to the baseline, per workload.

use crate::experiments::pair_json;
use crate::harness::{flag, jf, obj, text, Experiment, Scale};
use crate::{bench_config, enterprise_trace_n, f2};
use triplea_workloads::WorkloadProfile;

/// Normalization that reads `1.0` when the baseline component is
/// already zero (nothing to improve), as the original figure did.
fn norm(a: f64, b: f64) -> f64 {
    if b <= 1e-9 {
        1.0
    } else {
        a / b
    }
}

/// Builds the Figure 10 experiment: one point per Table-1 workload.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "fig10",
        "Figure 10: contention & stall times normalized to baseline (lower = better)",
    );
    for profile in WorkloadProfile::table1() {
        let profile = *profile;
        e.point(profile.name, move |ctx| {
            let cfg = bench_config();
            let trace = enterprise_trace_n(&profile, &cfg, ctx.seed, scale.requests);
            let (base, aaa) = pair_json(cfg, &trace);
            obj([
                ("workload", text(profile.name)),
                ("uniform", flag(profile.is_uniform())),
                ("base", base),
                ("aaa", aaa),
            ])
        });
    }
    e.renderer(|res| {
        let mut rows = Vec::new();
        let mut sums = [0.0f64; 3];
        let mut n = 0usize;
        for p in &res.points {
            let d = &p.data;
            let link = norm(jf(d, "aaa.link_contention_us"), jf(d, "base.link_contention_us"));
            let storage = norm(
                jf(d, "aaa.storage_contention_us"),
                jf(d, "base.storage_contention_us"),
            );
            let stall = norm(jf(d, "aaa.queue_stall_us"), jf(d, "base.queue_stall_us"));
            if d["uniform"].as_bool() != Some(true) {
                sums[0] += link;
                sums[1] += storage;
                sums[2] += stall;
                n += 1;
            }
            rows.push(vec![p.label.clone(), f2(link), f2(storage), f2(stall)]);
        }
        let mut out = crate::harness::fmt_table(
            &res.title,
            &[
                "Workload",
                "Link contention",
                "Storage contention",
                "Queue stall",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nhot-workload means: link {:.2}, storage {:.2}, queue stall {:.2} \
             (paper: link ≈0.1, storage ≈0.85, stall ≈0.15)\n",
            sums[0] / n.max(1) as f64,
            sums[1] / n.max(1) as f64,
            sums[2] / n.max(1) as f64,
        ));
        out
    });
    e
}
