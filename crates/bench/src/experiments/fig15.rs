//! Figure 15: breakdown of average request time on both arrays under
//! varying network sizes.

use crate::experiments::netsize_pair;
use crate::harness::{jf, obj, text, Experiment, Scale};
use crate::f1;
use serde_json::Value;

fn breakdown_row(label: String, r: &Value) -> Vec<String> {
    vec![
        label,
        f1(jf(r, "rc_stall_us")),
        f1(jf(r, "switch_stall_us")),
        f1(jf(r, "direct_link_us")),
        f1(jf(r, "direct_storage_us")),
        f1(jf(r, "fimm_service_us")),
        f1(jf(r, "network_us")),
        f1(jf(r, "mean_latency_us")),
    ]
}

/// Builds the Figure 15 experiment: one point per network width.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "fig15",
        "Figure 15: execution-time breakdown (all in us per request)",
    );
    for cps in [8u32, 12, 16, 20] {
        e.point(format!("4x{cps}"), move |ctx| {
            let (base, aaa) = netsize_pair(cps, ctx.base_seed, scale.requests);
            obj([
                ("network", text(&format!("4x{cps}"))),
                ("base", base),
                ("aaa", aaa),
            ])
        });
    }
    e.renderer(|res| {
        let mut rows = Vec::new();
        for p in &res.points {
            rows.push(breakdown_row(format!("{} baseline", p.label), &p.data["base"]));
            rows.push(breakdown_row(format!("{} triple-a", p.label), &p.data["aaa"]));
        }
        crate::harness::fmt_table(
            &res.title,
            &[
                "Config",
                "RC stall",
                "Switch stall",
                "Link wait",
                "Storage wait",
                "FIMM service",
                "Network",
                "Total mean",
            ],
            &rows,
        )
    });
    e
}
