//! `federation`: the array-federation sweep — one volume namespace over
//! 1/2/4/8 member arrays, striped and replicated, plus a degraded-box
//! point where a fault storm slows one member and the inter-array
//! laggard policy migrates its hot chunks to healthy peers.
//!
//! Every point replays the *same* volume-level workload (seeded from the
//! experiment, not the point), so the sweep reads as a scaling story:
//! what one box does with the trace, what a 2/4/8-box federation does,
//! and what replication costs. Points run member arrays inside one
//! deterministic epoch loop, so artifacts are byte-identical at any
//! thread count and the golden suite pins them.

use crate::harness::{arr, jf, ju, num, obj, text, uint, Experiment, Scale};
use serde_json::Value;
use triplea_core::{
    FaultConfig, FederationStats, FimmFaultEvent, FimmFaultKind, IoOp, LaggardPolicy,
    ManagementMode, Simulation, Trace, TraceRequest, VolumeSpec,
};
use triplea_ftl::LogicalPage;
use triplea_sim::{SimTime, SplitMix64};

/// Pages per stripe chunk in every sweep point.
const CHUNK_PAGES: u64 = 64;

/// Volume capacity in pages — fixed across points so the same trace
/// replays on every geometry.
const VOLUME_PAGES: u64 = 1 << 20;

/// Hot region: the first 64 chunks, re-accessed ~80 % of the time so
/// the degraded point gives the laggard policy something worth moving.
const HOT_PAGES: u64 = 64 * CHUNK_PAGES;

/// Volume-level arrival gap, ns. One box sees the full stream; larger
/// federations split it `W` ways.
const GAP_NS: u64 = 400;

/// Arrival gap for the degraded point, ns. 4× lighter than the scaling
/// sweep so the slowed member builds a *bounded* backlog — the laggard
/// policy's clone reads then complete in epochs rather than queuing
/// behind the whole run, and the migration story stays attributable.
const DEGRADED_GAP_NS: u64 = 4 * GAP_NS;

/// The shared volume workload: 80/20 hot/uniform, 4:1 read:write, run
/// lengths 1–16 pages so requests regularly straddle chunk seams.
fn volume_trace(requests: usize, seed: u64, gap_ns: u64) -> Trace {
    let mut rng = SplitMix64::new(seed ^ 0xFED);
    (0..requests)
        .map(|i| {
            let op = if rng.next_below(5) == 0 {
                IoOp::Write
            } else {
                IoOp::Read
            };
            let pages = match rng.next_below(4) {
                0 => 1,
                1 => 4,
                2 => 8,
                _ => 16,
            };
            let span = if rng.next_below(10) < 8 {
                HOT_PAGES
            } else {
                VOLUME_PAGES
            };
            let lpn = rng.next_below(span - pages);
            TraceRequest::new(
                SimTime::from_nanos(i as u64 * gap_ns),
                op,
                LogicalPage(lpn),
                pages as u32,
            )
        })
        .collect()
}

/// The fault storm the degraded point aims at member array 0: every
/// FIMM of its first four clusters slowed 16× from t = 0.
fn degraded_faults() -> FaultConfig {
    let mut fc = FaultConfig::default();
    for cluster in 0..4 {
        for fimm in 0..2 {
            fc = fc
                .try_with_fimm_event(FimmFaultEvent {
                    cluster,
                    fimm,
                    at_ns: 1,
                    kind: FimmFaultKind::Slowdown(16),
                })
                .expect("eight events fit the fault schedule");
        }
    }
    fc
}

/// The federation policy the sweep runs: a 500 µs federation budget with
/// a tight epoch so the quick scale still samples enough epochs.
fn sweep_policy() -> LaggardPolicy {
    LaggardPolicy {
        sla_p99_ns: 500_000,
        imbalance_milli: 1_200,
        epoch_ns: 200_000,
        max_chunks_per_epoch: 4,
        migration_slots: 64,
        cooldown_epochs: 2,
    }
}

/// Runs one federation geometry over the shared trace and returns the
/// point summary. `degrade` aims [`degraded_faults`] at array 0.
fn fed_point(width: u32, replicas: u32, degrade: bool, trace: &Trace) -> Value {
    let arrays = width * replicas;
    let mut b = Simulation::builder()
        .configure(|c| c.collect_series(false))
        .mode(ManagementMode::Autonomic)
        .with_federation(arrays)
        .volume(
            VolumeSpec::replicated(width, replicas)
                .chunk_pages(CHUNK_PAGES)
                .volume_pages(VOLUME_PAGES),
        )
        .policy(sweep_policy());
    if degrade {
        b = b.array_faults(0, degraded_faults());
    }
    let fed = b.build().expect("federation sweep configuration validates");
    let run = fed.run_verified(trace);
    run.integrity
        .expect("member-array FTL integrity must survive the federation run");
    let s = &run.report.stats;
    assert_eq!(
        s.completed + s.lost_requests,
        trace.len() as u64,
        "every volume request must complete or be accounted lost"
    );
    obj([
        ("arrays", uint(arrays as u64)),
        ("stripe_width", uint(width as u64)),
        ("replicas", uint(replicas as u64)),
        ("chunk_pages", uint(CHUNK_PAGES)),
        ("degraded", crate::harness::flag(degrade)),
        ("iops", num(run.report.iops())),
        ("stats", stats_json(s)),
        (
            "per_array",
            arr((0..arrays as usize)
                .map(|i| {
                    arr(vec![
                        uint(i as u64),
                        uint(s.per_array_fragments[i]),
                        uint(s.per_array_reads[i]),
                        uint(s.per_array_p99_ns[i]),
                        uint(s.per_array_migrations_out[i]),
                        uint(run.report.arrays[i].completed()),
                    ])
                })
                .collect()),
        ),
    ])
}

/// Flattens [`FederationStats`] headlines into the artifact.
fn stats_json(s: &FederationStats) -> Value {
    obj([
        ("volume_requests", uint(s.volume_requests)),
        ("completed", uint(s.completed)),
        ("lost_requests", uint(s.lost_requests)),
        ("degraded_writes", uint(s.degraded_writes)),
        ("retried_reads", uint(s.retried_reads)),
        ("fragments", uint(s.fragments)),
        ("epochs", uint(s.epochs)),
        ("laggard_epochs", uint(s.laggard_epochs)),
        ("migrations_started", uint(s.migrations_started)),
        ("migrations_committed", uint(s.migrations_committed)),
        ("migrations_aborted", uint(s.migrations_aborted)),
        ("migrated_pages", uint(s.migrated_pages)),
        ("mean_ns", uint(s.mean_ns)),
        ("p50_ns", uint(s.p50_ns)),
        ("p99_ns", uint(s.p99_ns)),
        ("max_ns", uint(s.max_ns)),
        ("read_p99_ns", uint(s.read_p99_ns)),
        ("write_p99_ns", uint(s.write_p99_ns)),
    ])
}

/// Builds the `federation` experiment at `scale`.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "federation",
        "Array federation: one volume over 1/2/4/8 boxes, striped/replicated/degraded",
    );
    for width in [1u32, 2, 4, 8] {
        e.point(format!("striped/{width}"), move |ctx| {
            let trace = volume_trace(scale.requests, ctx.base_seed, GAP_NS);
            obj([
                ("label", text("striped")),
                ("point", fed_point(width, 1, false, &trace)),
            ])
        });
    }
    for (width, replicas) in [(2u32, 2u32), (4, 2)] {
        e.point(format!("replicated/{width}x{replicas}"), move |ctx| {
            let trace = volume_trace(scale.requests, ctx.base_seed, GAP_NS);
            obj([
                ("label", text("replicated")),
                ("point", fed_point(width, replicas, false, &trace)),
            ])
        });
    }
    e.point("degraded/2x2", move |ctx| {
        let trace = volume_trace(scale.requests, ctx.base_seed, DEGRADED_GAP_NS);
        obj([
            ("label", text("degraded")),
            ("point", fed_point(2, 2, true, &trace)),
        ])
    });
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    ju(d, "point.arrays").to_string(),
                    format!(
                        "{}x{}",
                        ju(d, "point.stripe_width"),
                        ju(d, "point.replicas")
                    ),
                    crate::f1(jf(d, "point.iops") / 1e3),
                    crate::f1(jf(d, "point.stats.p99_ns") / 1e3),
                    ju(d, "point.stats.retried_reads").to_string(),
                    format!(
                        "{}/{}",
                        ju(d, "point.stats.migrations_committed"),
                        ju(d, "point.stats.migrations_started")
                    ),
                    ju(d, "point.stats.lost_requests").to_string(),
                ]
            })
            .collect();
        let mut out = crate::harness::fmt_table(
            "Array federation: same volume workload, growing the box count",
            &[
                "Point",
                "Arrays",
                "WxR",
                "kIOPS",
                "p99 us",
                "Retried",
                "Migr c/s",
                "Lost",
            ],
            &rows,
        );
        out.push_str(
            "\nthe degraded point slows array 0 sixteen-fold; the inter-array\n\
             laggard policy shadow-clones its hot chunks to healthy peers.\n",
        );
        out
    });
    // Per-array routing census: one CSV row per (point, member array).
    e.artifact("arrays.csv", |res| {
        let mut out = String::from("# federation per-array census\n");
        out.push_str("point,array,fragments,reads_routed,p99_us,migrations_out,completed\n");
        for p in &res.points {
            for row in p.data["point"]["per_array"].as_array().unwrap_or(&[]) {
                let cell = |i: usize| row.as_array().unwrap()[i].as_f64().unwrap_or(0.0);
                out.push_str(&format!(
                    "{},{},{},{},{:.1},{},{}\n",
                    p.label,
                    cell(0) as u64,
                    cell(1) as u64,
                    cell(2) as u64,
                    cell(3) / 1e3,
                    cell(4) as u64,
                    cell(5) as u64,
                ));
            }
        }
        out
    });
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_trace_is_deterministic_and_in_bounds() {
        let a = volume_trace(2_000, 7, GAP_NS);
        let b = volume_trace(2_000, 7, GAP_NS);
        assert_eq!(a.requests(), b.requests());
        assert!(a
            .requests()
            .iter()
            .all(|r| r.lpn.0 + r.pages as u64 <= VOLUME_PAGES));
        assert!(a.requests().windows(2).all(|w| w[0].at <= w[1].at));
        let writes = a.requests().iter().filter(|r| r.op == IoOp::Write).count();
        assert!(writes > 200 && writes < 700, "~20% writes, got {writes}");
    }

    #[test]
    fn degraded_storm_fills_eight_slots() {
        let fc = degraded_faults();
        assert_eq!(fc.free_fimm_event_slots(), 0);
    }
}
