//! Figure 12: hot-cluster sensitivity — IOPS and latency of the `read`
//! micro-benchmark as the number of hot clusters grows, on both arrays.

use crate::experiments::{kiops, pair_json, ratio};
use crate::harness::{jf, ju, obj, uint, Experiment, Scale};
use crate::{bench_config, f1, f2, overload_gap_ns};
use triplea_workloads::Microbench;

/// Builds the Figure 12 experiment: one point per hot-cluster count.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "fig12",
        "Figure 12: hot-cluster sensitivity (read micro-benchmark)",
    );
    for hot in [1u32, 2, 4, 6, 8, 10, 12, 14] {
        e.point(format!("hot={hot}"), move |ctx| {
            let cfg = bench_config();
            // Constant per-hot-cluster pressure and constant run
            // duration: scale the request count with the hot count.
            let gap = overload_gap_ns(&cfg, hot);
            let n = scale.requests * hot as usize;
            let trace = Microbench::read()
                .hot_clusters(hot)
                .requests(n)
                .gap_ns(gap)
                .build(&cfg, ctx.base_seed);
            let (base, aaa) = pair_json(cfg, &trace);
            obj([("hot", uint(hot as u64)), ("base", base), ("aaa", aaa)])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    ju(d, "hot").to_string(),
                    kiops(jf(d, "base.iops")),
                    kiops(jf(d, "aaa.iops")),
                    f1(jf(d, "base.mean_latency_us")),
                    f1(jf(d, "aaa.mean_latency_us")),
                    f2(ratio(jf(d, "aaa.iops"), jf(d, "base.iops"))),
                ]
            })
            .collect();
        crate::harness::fmt_table(
            &res.title,
            &[
                "Hot clusters",
                "Base IOPS",
                "AAA IOPS",
                "Base latency (us)",
                "AAA latency (us)",
                "IOPS gain",
            ],
            &rows,
        )
    });
    e
}
