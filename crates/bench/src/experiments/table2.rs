//! Table 2: absolute performance metrics of the 4×16 **non-autonomic**
//! all-flash array under the eleven enterprise workloads.

use crate::experiments::kiops;
use crate::harness::{jf, obj, report_json, text, Experiment, Scale};
use crate::{bench_config, enterprise_trace_n, f1};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::WorkloadProfile;

/// Builds the Table 2 experiment: one point per enterprise workload.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "table2",
        "Table 2: non-autonomic 4x16 all-flash array, absolute metrics",
    );
    for profile in WorkloadProfile::enterprise() {
        let profile = *profile;
        e.point(profile.name, move |ctx| {
            let cfg = bench_config();
            let trace = enterprise_trace_n(&profile, &cfg, ctx.seed, scale.requests);
            let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
            obj([
                ("workload", text(profile.name)),
                ("base", report_json(&report)),
            ])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    f1(jf(d, "base.mean_latency_us")),
                    kiops(jf(d, "base.iops")),
                    f1(jf(d, "base.link_contention_us")),
                    f1(jf(d, "base.storage_contention_us")),
                    f1(jf(d, "base.queue_stall_us")),
                ]
            })
            .collect();
        let mut out = crate::harness::fmt_table(
            &res.title,
            &[
                "Workload",
                "Avg latency (us)",
                "IOPS",
                "Avg link-cont. (us)",
                "Avg storage-cont. (us)",
                "Avg queue stall (us)",
            ],
            &rows,
        );
        out.push_str(
            "\npaper shape: ms-scale latencies on hot-clustered workloads; \
             link contention dominating storage contention for read-heavy \
             workloads; cfs/web (no hot clusters) far below the rest.\n",
        );
        out
    });
    e
}
