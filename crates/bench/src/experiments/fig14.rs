//! Figure 14: link- and storage-contention times of Triple-A normalized
//! to the baseline under varying network sizes.

use crate::experiments::{netsize_pair, ratio};
use crate::harness::{jf, obj, text, Experiment, Scale};
use crate::{f1, f2};

/// Builds the Figure 14 experiment: one point per network width.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "fig14",
        "Figure 14: contention times normalized to baseline vs network size",
    );
    for cps in [8u32, 12, 16, 20] {
        e.point(format!("4x{cps}"), move |ctx| {
            let (base, aaa) = netsize_pair(cps, ctx.base_seed, scale.requests);
            obj([
                ("network", text(&format!("4x{cps}"))),
                ("base", base),
                ("aaa", aaa),
            ])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    f2(ratio(
                        jf(d, "aaa.link_contention_us"),
                        jf(d, "base.link_contention_us"),
                    )),
                    f2(ratio(
                        jf(d, "aaa.storage_contention_us"),
                        jf(d, "base.storage_contention_us"),
                    )),
                    f1(jf(d, "base.link_contention_us")),
                    f1(jf(d, "aaa.link_contention_us")),
                ]
            })
            .collect();
        crate::harness::fmt_table(
            &res.title,
            &[
                "Network",
                "Norm. link contention",
                "Norm. storage contention",
                "Base link (us)",
                "AAA link (us)",
            ],
            &rows,
        )
    });
    e
}
