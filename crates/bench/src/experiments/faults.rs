//! Fault-injection sweep: how gracefully the array (baseline vs
//! Triple-A) degrades as deterministic faults are injected at each
//! layer of the stack. Every run is seeded, deterministic, and FTL
//! metadata integrity is verified end-to-end.

use crate::experiments::kiops;
use crate::harness::{jf, ju, obj, report_json, text, Experiment, Scale};
use crate::{bench_builder, f1, f2, overload_gap_ns};
use serde_json::Value;
use triplea_core::{
    Array, ArrayConfig, FaultConfig, FimmFaultEvent, FimmFaultKind, FlashFaultProfile,
    ManagementMode, PcieFaultProfile, Trace,
};
use triplea_workloads::Microbench;

fn hot_trace(cfg: &ArrayConfig, seed: u64, requests: usize) -> Trace {
    Microbench::read()
        .hot_clusters(2)
        .requests(requests)
        .gap_ns(overload_gap_ns(cfg, 2))
        .build(cfg, seed)
}

/// Runs one mode and hard-fails the experiment if the FTL metadata lost
/// or duplicated a page along the way.
fn run_checked(cfg: ArrayConfig, mode: ManagementMode, trace: &Trace) -> Value {
    let run = Array::new(cfg, mode).run_verified(trace);
    run.integrity
        .expect("FTL integrity violated under fault injection");
    report_json(&run.report)
}

/// Builds the fault-injection experiment: NAND sweep, whole-module
/// events, and PCI-E corruption sections.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "faults",
        "Fault injection: NAND sweep, module events, PCI-E corruption",
    );
    for (label, transient, hard) in [
        ("none", 0.0, 0.0),
        ("light", 0.005, 0.0002),
        ("moderate", 0.02, 0.001),
        ("heavy", 0.05, 0.004),
    ] {
        e.point(format!("flash/{label}"), move |ctx| {
            let cfg = bench_builder()
                .faults(FaultConfig {
                    flash: FlashFaultProfile {
                        read_transient_prob: transient,
                        prog_fail_prob: hard,
                        erase_fail_prob: hard,
                    },
                    seed: ctx.base_seed,
                    ..FaultConfig::default()
                })
                .build()
                .expect("flash-fault configuration validates");
            let trace = hot_trace(&cfg, ctx.base_seed, scale.requests);
            obj([
                ("rate", text(label)),
                ("base", run_checked(cfg.clone(), ManagementMode::NonAutonomic, &trace)),
                ("aaa", run_checked(cfg, ManagementMode::Autonomic, &trace)),
            ])
        });
    }
    for (label, kind) in [
        ("healthy", None),
        ("slowdown-x4", Some(FimmFaultKind::Slowdown(4))),
        ("dead", Some(FimmFaultKind::Dead)),
    ] {
        e.point(format!("module/{label}"), move |ctx| {
            let mut b = bench_builder();
            if let Some(kind) = kind {
                // Fire mid-run, on a FIMM of hot cluster 0.
                let mid_ns =
                    overload_gap_ns(&crate::bench_config(), 2) * (scale.requests as u64 / 2);
                b = b.faults(FaultConfig::default().with_fimm_event(FimmFaultEvent {
                    cluster: 0,
                    fimm: 0,
                    at_ns: mid_ns,
                    kind,
                }));
            }
            let cfg = b.build().expect("module-fault configuration validates");
            let trace = hot_trace(&cfg, ctx.base_seed, scale.requests);
            obj([
                ("event", text(label)),
                ("base", run_checked(cfg.clone(), ManagementMode::NonAutonomic, &trace)),
                ("aaa", run_checked(cfg, ManagementMode::Autonomic, &trace)),
            ])
        });
    }
    for (label, prob) in [("none", 0.0), ("1e-3", 0.001), ("1e-2", 0.01)] {
        e.point(format!("pcie/{label}"), move |ctx| {
            let cfg = bench_builder()
                .tune(|c| {
                    c.faults.pcie = PcieFaultProfile {
                        corrupt_prob: prob,
                        replay_ns: 700,
                    };
                    c.faults.seed = ctx.base_seed;
                })
                .build()
                .expect("pcie-fault configuration validates");
            let trace = hot_trace(&cfg, ctx.base_seed, scale.requests);
            obj([
                ("corrupt_prob", text(label)),
                ("aaa", run_checked(cfg, ManagementMode::Autonomic, &trace)),
            ])
        });
    }
    e.renderer(|res| {
        let mut out = String::new();
        let mut rows = Vec::new();
        for (_, d) in res.section("flash/") {
            rows.push(vec![
                crate::harness::js(d, "rate"),
                kiops(jf(d, "base.iops")),
                kiops(jf(d, "aaa.iops")),
                f1(jf(d, "base.mean_latency_us")),
                f1(jf(d, "aaa.mean_latency_us")),
                ju(d, "aaa.faults.transient_read_faults").to_string(),
                ju(d, "aaa.faults.blocks_retired_by_fault").to_string(),
                ju(d, "aaa.faults.migration_rollbacks").to_string(),
            ]);
        }
        out.push_str(&crate::harness::fmt_table(
            "NAND fault sweep: ECC retries + grown bad blocks (read-heavy, 2 hot clusters)",
            &[
                "Fault rate",
                "Base IOPS",
                "AAA IOPS",
                "Base lat us",
                "AAA lat us",
                "ECC retries",
                "Bad blocks",
                "Mig rollbacks",
            ],
            &rows,
        ));
        let mut rows = Vec::new();
        for (_, d) in res.section("module/") {
            rows.push(vec![
                crate::harness::js(d, "event"),
                f1(jf(d, "base.mean_latency_us")),
                f1(jf(d, "aaa.mean_latency_us")),
                f2(jf(d, "aaa.mean_latency_us") / jf(d, "base.mean_latency_us").max(1e-9)),
                ju(d, "aaa.faults.degraded_reads").to_string(),
                ju(d, "aaa.autonomic.laggard_detections").to_string(),
                ju(d, "aaa.autonomic.pages_reshaped").to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&crate::harness::fmt_table(
            "Whole-module events at t=midpoint on the hot cluster",
            &[
                "Event",
                "Base lat us",
                "AAA lat us",
                "AAA/Base",
                "Degraded reads",
                "Laggards",
                "Pages reshaped",
            ],
            &rows,
        ));
        let mut rows = Vec::new();
        for (_, d) in res.section("pcie/") {
            rows.push(vec![
                crate::harness::js(d, "corrupt_prob"),
                kiops(jf(d, "aaa.iops")),
                f1(jf(d, "aaa.mean_latency_us")),
                f1(jf(d, "aaa.p99_us")),
                ju(d, "aaa.faults.tlp_replays").to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&crate::harness::fmt_table(
            "PCI-E TLP corruption sweep (replay = 700 ns per corrupted packet)",
            &[
                "Corrupt prob",
                "IOPS",
                "Mean lat us",
                "p99 lat us",
                "TLP replays",
            ],
            &rows,
        ));
        out.push_str(
            "\nall runs seeded from the experiment name and integrity-checked: the\n\
             same spec reproduces this output byte for byte at any thread count.\n",
        );
        out
    });
    e
}
