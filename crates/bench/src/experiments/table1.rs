//! Table 1: workload characteristics — the paper's reported values
//! versus what our synthetic traces actually exhibit.

use crate::harness::{jf, ju, num, obj, text, uint, Experiment, Scale};
use crate::{bench_config, enterprise_trace_n, f1, f3};
use triplea_workloads::{analyze, WorkloadProfile};

/// Builds the Table 1 experiment: one point per Table-1 workload.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "table1",
        "Table 1: workload characteristics (paper / measured on synthetic trace)",
    );
    for profile in WorkloadProfile::table1() {
        let profile = *profile;
        e.point(profile.name, move |ctx| {
            let cfg = bench_config();
            let trace = enterprise_trace_n(&profile, &cfg, ctx.seed, scale.requests);
            let stats = analyze(&trace, &cfg.shape);
            obj([
                ("workload", text(profile.name)),
                (
                    "paper",
                    obj([
                        ("read_ratio", num(profile.read_ratio)),
                        ("read_randomness", num(profile.read_randomness)),
                        ("write_randomness", num(profile.write_randomness)),
                        ("hot_clusters", uint(profile.hot_clusters as u64)),
                        ("hot_io_ratio", num(profile.hot_io_ratio)),
                    ]),
                ),
                (
                    "measured",
                    obj([
                        ("read_ratio", num(stats.read_ratio)),
                        ("read_randomness", num(stats.read_randomness)),
                        ("write_randomness", num(stats.write_randomness)),
                        ("hot_clusters", uint(stats.hot_clusters as u64)),
                        ("hot_io_ratio", num(stats.hot_io_ratio)),
                    ]),
                ),
            ])
        });
    }
    e.renderer(|res| {
        let pct = |d: &serde_json::Value, path: &str| f1(jf(d, path) * 100.0);
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    format!("{} / {}", pct(d, "paper.read_ratio"), pct(d, "measured.read_ratio")),
                    format!(
                        "{} / {}",
                        pct(d, "paper.read_randomness"),
                        pct(d, "measured.read_randomness")
                    ),
                    format!(
                        "{} / {}",
                        pct(d, "paper.write_randomness"),
                        pct(d, "measured.write_randomness")
                    ),
                    format!(
                        "{} / {}",
                        ju(d, "paper.hot_clusters"),
                        ju(d, "measured.hot_clusters")
                    ),
                    format!(
                        "{} / {}",
                        f3(jf(d, "paper.hot_io_ratio")),
                        f3(jf(d, "measured.hot_io_ratio"))
                    ),
                ]
            })
            .collect();
        crate::harness::fmt_table(
            &res.title,
            &[
                "Workload",
                "Read %",
                "Read rand %",
                "Write rand %",
                "# hot clusters",
                "I/O ratio on hot",
            ],
            &rows,
        )
    });
    e
}
