//! §6.6 — effectiveness of DRAM relocation: sweep the per-cluster
//! write-back buffer from queue-scale to DRAM-scale.

use crate::harness::{jf, ju, obj, report_json, text, uint, Experiment, Scale};
use crate::{bench_builder, f1};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::Microbench;

/// Builds the DRAM-relocation experiment: one point per buffer size.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "dram",
        "DRAM relocation (§6.6): write-burst ack latency vs buffer size",
    );
    for buffer_pages in [64usize, 256, 1_024, 2_048, 8_192] {
        e.point(format!("buffer={buffer_pages}"), move |ctx| {
            let cfg = bench_builder()
                .write_buffer_pages(buffer_pages)
                .build()
                .expect("dram configuration validates");
            // Bursty checkpoint-style writes into two clusters.
            let trace = Microbench::write()
                .hot_clusters(2)
                .bursty(2_000_000, 6_000_000)
                .gap_ns(1_200)
                .requests(scale.requests / 2)
                .build(&cfg, ctx.base_seed);
            let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
            obj([
                ("buffer_pages", uint(buffer_pages as u64)),
                ("label", text(&format!("{buffer_pages} pages ({} MB)", buffer_pages * 4 / 1024))),
                ("aaa", report_json(&report)),
            ])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    crate::harness::js(d, "label"),
                    f1(jf(d, "aaa.mean_latency_us")),
                    f1(jf(d, "aaa.p99_us")),
                    f1(jf(d, "aaa.storage_contention_us")),
                    ju(d, "aaa.autonomic.write_redirects").to_string(),
                ]
            })
            .collect();
        let mut out = crate::harness::fmt_table(
            &res.title,
            &[
                "Write buffer per cluster",
                "Ack mean (us)",
                "Ack p99 (us)",
                "Storage-cont. (us)",
                "Write redirects",
            ],
            &rows,
        );
        out.push_str(
            "\npaper shape: DRAM-scale buffering absorbs bursts (acks near-instant);\n\
             buffer size does not address link/storage contention itself — that\n\
             remains the autonomic manager's job.\n",
        );
        out
    });
    e
}
