//! Figure 1 (motivation): latency CDF of the **non-autonomic** array as
//! the number of hot regions grows.

use crate::experiments::{cdf_json, curve_rows};
use crate::harness::{
    jf, ju, obj, report_json, uint, Experiment, Scale,
};
use crate::{bench_config, f1, overload_gap_ns};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::Microbench;

/// Builds the Figure 1 experiment: one point per hot-region count.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "fig01",
        "Figure 1: latency vs number of hot regions (non-autonomic)",
    );
    for hot in [0u32, 2, 4, 8] {
        e.point(format!("hot={hot}"), move |ctx| {
            let cfg = bench_config();
            // Constant per-hot-cluster pressure AND constant run
            // duration: request count scales with the number of hot
            // regions.
            let gap = overload_gap_ns(&cfg, hot.max(1));
            let n = scale.requests / 2 * hot.max(2) as usize;
            let trace = Microbench::read()
                .hot_clusters(hot)
                .requests(n)
                .gap_ns(gap)
                .build(&cfg, ctx.base_seed);
            let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
            obj([
                ("hot", uint(hot as u64)),
                ("report", report_json(&report)),
                ("cdf", cdf_json(&report)),
            ])
        });
    }
    e.renderer(|res| {
        let mut rows = Vec::new();
        let mut curves = Vec::new();
        for p in &res.points {
            let r = &p.data["report"];
            rows.push(vec![
                ju(&p.data, "hot").to_string(),
                f1(jf(r, "mean_latency_us")),
                f1(jf(r, "p50_us")),
                f1(jf(r, "p99_us")),
                f1(jf(r, "link_contention_us")),
                f1(jf(r, "storage_contention_us")),
            ]);
            for pt in curve_rows(&p.data["cdf"]) {
                curves.push(vec![ju(&p.data, "hot") as f64, pt[0], pt[1]]);
            }
        }
        let mut out = crate::harness::fmt_table(
            &res.title,
            &[
                "Hot regions",
                "Mean (us)",
                "p50 (us)",
                "p99 (us)",
                "Link-cont. (us)",
                "Storage-cont. (us)",
            ],
            &rows,
        );
        out.push_str(&crate::harness::fmt_csv_series(
            "fig01 CDFs",
            &["hot_regions", "latency_us", "cdf"],
            &curves,
        ));
        out
    });
    e
}
