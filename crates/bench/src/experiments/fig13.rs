//! Figure 13: network-size sensitivity — IOPS and latency of Triple-A
//! normalized to the baseline as clusters-per-switch grows.

use crate::experiments::{kiops, netsize_pair, ratio};
use crate::harness::{jf, obj, text, Experiment, Scale};
use crate::f2;

/// Builds the Figure 13 experiment: one point per network width.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "fig13",
        "Figure 13: network-size sensitivity (normalized to baseline)",
    );
    for cps in [8u32, 12, 16, 20] {
        e.point(format!("4x{cps}"), move |ctx| {
            let (base, aaa) = netsize_pair(cps, ctx.base_seed, scale.requests);
            obj([
                ("network", text(&format!("4x{cps}"))),
                ("base", base),
                ("aaa", aaa),
            ])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    f2(ratio(jf(d, "aaa.iops"), jf(d, "base.iops"))),
                    f2(ratio(
                        jf(d, "aaa.mean_latency_us"),
                        jf(d, "base.mean_latency_us"),
                    )),
                    kiops(jf(d, "base.iops")),
                    kiops(jf(d, "aaa.iops")),
                ]
            })
            .collect();
        crate::harness::fmt_table(
            &res.title,
            &[
                "Network",
                "Norm. IOPS (higher=better)",
                "Norm. latency (lower=better)",
                "Base IOPS",
                "AAA IOPS",
            ],
            &rows,
        )
    });
    e
}
