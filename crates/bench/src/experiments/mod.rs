//! Declarative experiment specs, one per paper table/figure.
//!
//! Each submodule builds the [`Experiment`] behind one of the old
//! standalone binaries; the binaries are now thin wrappers that run
//! their spec through the [`Runner`] and print
//! the rendered report. `bench all` runs the whole suite in parallel
//! and writes `results/*.json` + `results/*.txt`.

mod ablation;
mod dram;
mod failure_storm;
mod faults;
pub mod federation;
mod fig01;
mod fig09;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig14;
mod fig15;
mod fig16;
mod ftl_compare;
pub mod perf;
pub mod scenario;
pub mod sla;
mod table1;
mod table2;
mod timeline;
mod wearout;

use crate::harness::{arr, num, report_json, Experiment, Runner, Scale};
use serde_json::Value;
use triplea_core::{Array, ArrayConfig, ManagementMode, RunReport, Trace};

/// Every experiment in the suite, in artifact order: the paper
/// reproductions first, then the scenario catalog (see
/// [`scenario::NAMES`]).
pub fn all(scale: Scale) -> Vec<Experiment> {
    let mut suite = vec![
        fig01::spec(scale),
        fig09::spec(scale),
        fig10::spec(scale),
        fig11::spec(scale),
        fig12::spec(scale),
        fig13::spec(scale),
        fig14::spec(scale),
        fig15::spec(scale),
        fig16::spec(scale),
        table1::spec(scale),
        table2::spec(scale),
        ablation::spec(scale),
        dram::spec(scale),
        wearout::spec(scale),
        ftl_compare::spec(scale),
        faults::spec(scale),
        failure_storm::spec(scale),
        timeline::spec(scale),
        sla::spec(scale),
        federation::spec(scale),
    ];
    suite.extend(scenario::catalog(scale));
    suite
}

/// Looks up one experiment by its artifact name.
pub fn by_name(name: &str, scale: Scale) -> Option<Experiment> {
    all(scale).into_iter().find(|e| e.name == name)
}

/// Entry point shared by the thin figure/table binaries: runs the named
/// experiment at full scale (threads from the environment) and prints
/// the rendered report, exactly like the pre-harness binaries did.
pub fn run_and_print(name: &str) {
    let exp = by_name(name, Scale::full()).expect("experiment registered in experiments::all");
    let result = Runner::new().run(&exp, Scale::full());
    print!("{}", exp.render(&result));
}

/// Runs one trace through both management modes and returns the two
/// summaries as `("base", "aaa")` JSON values, for point builders to
/// compose into their object.
pub(crate) fn pair_json(cfg: ArrayConfig, trace: &Trace) -> (Value, Value) {
    let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(trace);
    let aaa = Array::new(cfg, ManagementMode::Autonomic).run(trace);
    (report_json(&base), report_json(&aaa))
}

/// Thinned latency CDF as `[[latency_us, cdf], …]` (~24 samples), the
/// shape the figure renderers turn back into CSV curves.
pub(crate) fn cdf_json(report: &RunReport) -> Value {
    let cdf = report.latency_cdf_us();
    let step = (cdf.len() / 24).max(1);
    arr(cdf
        .into_iter()
        .step_by(step)
        .map(|(us, frac)| arr(vec![num(us), num(frac)]))
        .collect())
}

/// Reads `[[x, y], …]` rows back out of a value produced by
/// [`cdf_json`] (or any array-of-arrays of numbers).
pub(crate) fn curve_rows(v: &Value) -> Vec<Vec<f64>> {
    v.as_array()
        .unwrap_or(&[])
        .iter()
        .map(|pt| {
            pt.as_array()
                .unwrap_or(&[])
                .iter()
                .map(|x| x.as_f64().unwrap_or(0.0))
                .collect()
        })
        .collect()
}

/// The Figure 13/14/15 run: 4 hot clusters behind one switch at 1.6×
/// bus overload, on a `4×cps` array, both management modes.
pub(crate) fn netsize_pair(cps: u32, seed: u64, requests: usize) -> (Value, Value) {
    let cfg = crate::bench_builder()
        .clusters_per_switch(cps)
        .build()
        .expect("netsize configuration validates");
    let gap = crate::overload_gap_ns(&cfg, 4);
    let trace = triplea_workloads::Microbench::read()
        .hot_clusters(4)
        .same_switch()
        .requests(requests)
        .gap_ns(gap)
        .build(&cfg, seed);
    pair_json(cfg, &trace)
}

/// Geometric mean (0.0 for an empty slice).
pub(crate) fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// `a / max(b, 1e-9)` — the normalization all the figure tables use.
pub(crate) fn ratio(a: f64, b: f64) -> f64 {
    a / b.max(1e-9)
}

/// `"123K"`-style IOPS cell.
pub(crate) fn kiops(iops: f64) -> String {
    format!("{:.0}K", iops / 1e3)
}
