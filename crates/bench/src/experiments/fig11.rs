//! Figure 11: per-workload latency CDFs on the non-autonomic array and
//! Triple-A, for the six workloads the paper plots.

use crate::experiments::curve_rows;
use crate::harness::{jf, obj, report_json, text, Experiment, Scale};
use crate::{bench_config, enterprise_trace_n, f1};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::WorkloadProfile;

const WORKLOADS: [&str; 6] = ["mds", "msnfs", "proj", "prxy", "websql", "g-eigen"];

/// Builds the Figure 11 experiment: one point per plotted workload.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new("fig11", "Figure 11: latency percentiles, baseline vs Triple-A");
    for name in WORKLOADS {
        e.point(name, move |ctx| {
            let cfg = bench_config();
            let profile = WorkloadProfile::by_name(name).expect("known workload");
            let trace = enterprise_trace_n(&profile, &cfg, ctx.seed, scale.requests);
            let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
            let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
            obj([
                ("workload", text(name)),
                ("base", report_json(&base)),
                ("aaa", report_json(&aaa)),
                ("base_cdf", super::cdf_json(&base)),
                ("aaa_cdf", super::cdf_json(&aaa)),
            ])
        });
    }
    e.renderer(|res| {
        let mut rows = Vec::new();
        let mut curves = Vec::new();
        for (w, p) in res.points.iter().enumerate() {
            let d = &p.data;
            rows.push(vec![
                p.label.clone(),
                f1(jf(d, "base.p50_us")),
                f1(jf(d, "aaa.p50_us")),
                f1(jf(d, "base.p99_us")),
                f1(jf(d, "aaa.p99_us")),
            ]);
            for (mode, key) in [(0.0, "base_cdf"), (1.0, "aaa_cdf")] {
                for pt in curve_rows(&d[key]) {
                    curves.push(vec![w as f64, mode, pt[0], pt[1]]);
                }
            }
        }
        let mut out = crate::harness::fmt_table(
            &res.title,
            &[
                "Workload",
                "Base p50 (us)",
                "AAA p50 (us)",
                "Base p99 (us)",
                "AAA p99 (us)",
            ],
            &rows,
        );
        out.push_str(&crate::harness::fmt_csv_series(
            "fig11 CDFs (workload index per point order; mode 0=base, 1=triple-a)",
            &["workload", "mode", "latency_us", "cdf"],
            &curves,
        ));
        out
    });
    e
}
